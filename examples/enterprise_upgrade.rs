//! Diversifying a large scale-free enterprise network under policy
//! constraints — the "IT refresh" scenario the paper's introduction
//! motivates, at a scale where the TRW-S path matters.
//!
//! ```sh
//! cargo run --release -p examples --example enterprise_upgrade
//! ```

use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use netmodel::constraints::{Constraint, ConstraintSet, Scope};
use netmodel::strategies::{mono_assignment, random_assignment};
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
use netmodel::HostId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 500-host scale-free enterprise: a few heavily connected data-center
    // hubs, many leaf workstations; 4 services, 4 products each from 2
    // vendor families.
    let config = RandomNetworkConfig {
        hosts: 500,
        mean_degree: 8,
        services: 4,
        products_per_service: 4,
        vendors_per_service: 2,
        topology: TopologyKind::ScaleFree,
    };
    let g = generate(&config, 7);
    println!(
        "enterprise network: {} hosts, {} links, mean degree {:.1}",
        g.network.host_count(),
        g.network.link_count(),
        g.network.mean_degree()
    );

    // Company policy: host n0 (the ERP server) is pinned to vendor-0
    // products for services 0 and 1, and globally service 0's product
    // `s0_p0` must never be combined with service 1's `s1_p1`.
    let s0 = g.catalog.service_by_name("service0").unwrap();
    let s1 = g.catalog.service_by_name("service1").unwrap();
    let pin0 = g.catalog.product_by_name("s0_p0").unwrap();
    let pin1 = g.catalog.product_by_name("s1_p0").unwrap();
    let avoid = g.catalog.product_by_name("s1_p1").unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push(Constraint::fix(HostId(0), s0, pin0));
    constraints.push(Constraint::fix(HostId(0), s1, pin1));
    constraints.push(Constraint::forbid_combination(
        Scope::All,
        (s0, pin0),
        (s1, avoid),
    ));

    // Production posture: race TRW-S against ILS under a hard wall-clock
    // budget; anytime semantics guarantee a valid assignment either way.
    let optimizer = DiversityOptimizer::new()
        .with_solver(SolverKind::Portfolio(vec![
            SolverKind::Trws(Default::default()),
            SolverKind::Ils(Default::default()),
        ]))
        .with_time_budget(std::time::Duration::from_secs(5));
    let unconstrained = optimizer.optimize(&g.network, &g.similarity)?;
    let t_unconstrained = unconstrained.wall_time();
    let constrained = optimizer.optimize_constrained(&g.network, &g.similarity, &constraints)?;
    let t_constrained = constrained.wall_time();

    let sim_of =
        |a: &netmodel::assignment::Assignment| a.total_edge_similarity(&g.network, &g.similarity);
    let mono = mono_assignment(&g.network);
    let random = random_assignment(&g.network, 1);
    println!("\ntotal edge similarity (lower = more resilient):");
    println!(
        "  optimal        {:>10.2}   ({} MRF vars, {} edges, solved in {:.2?})",
        sim_of(unconstrained.assignment()),
        unconstrained.variables(),
        unconstrained.edges(),
        t_unconstrained
    );
    println!(
        "  constrained    {:>10.2}   (diversity cost of policy: {:+.2}, {:.2?})",
        sim_of(constrained.assignment()),
        sim_of(constrained.assignment()) - sim_of(unconstrained.assignment()),
        t_constrained
    );
    println!("  random         {:>10.2}", sim_of(&random));
    println!("  mono-culture   {:>10.2}", sim_of(&mono));
    println!(
        "\nmono-culture links (same product on both ends of a link):\n  optimal {} / random {} / mono {}",
        unconstrained.assignment().identical_product_links(&g.network),
        random.identical_product_links(&g.network),
        mono.identical_product_links(&g.network)
    );
    println!(
        "effective product diversity (exp of Shannon entropy): optimal {:.2} vs mono {:.2}",
        unconstrained.assignment().effective_diversity(),
        mono.effective_diversity()
    );
    // Certified quality of the large-scale solve.
    if let Some(gap) = unconstrained.gap() {
        println!(
            "certified optimality gap: {:.4} ({:.2}% of objective)",
            gap,
            100.0 * gap / unconstrained.objective().abs().max(1e-9)
        );
    }
    Ok(())
}
