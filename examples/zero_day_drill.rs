//! A zero-day incident drill: trace a worm through the ICS case study step
//! by step, then quantify how diversification changes attacker dwell time
//! for different attacker sophistication levels.
//!
//! ```sh
//! cargo run --release -p examples --example zero_day_drill
//! ```

use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use netmodel::casestudy::CaseStudy;
use netmodel::strategies::mono_assignment;
use sim::attacker::AttackerStrategy;
use sim::engine::Simulation;
use sim::mttc::{estimate_mttc, MttcOptions};
use sim::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cs = CaseStudy::build();
    let mono = mono_assignment(&cs.network);

    // --- 1. One traced run against the homogeneous deployment.
    let scenario = Scenario::new(cs.host("c4"), cs.target);
    let sim = Simulation::new(&cs.network, &mono, &cs.similarity, &scenario);
    let outcome = sim.run_traced(42);
    println!("worm trace (mono-culture, entry c4, target t5, seed 42):");
    for event in &outcome.events {
        let victim = cs.network.host(event.host)?;
        let from = cs.network.host(event.from)?.name();
        let service = victim.services()[event.service_slot].service();
        println!(
            "  tick {:>3}: {} → {} via {}",
            event.tick,
            from,
            victim.name(),
            cs.catalog.service(service)?.name()
        );
        if event.host == cs.target {
            break;
        }
    }
    match outcome.compromised_at {
        Some(t) => println!(
            "target compromised at tick {t}; {} hosts infected",
            outcome.infected_count
        ),
        None => println!("target survived the tick budget"),
    }

    // --- 2. Dwell time vs diversification and attacker sophistication.
    let optimizer = DiversityOptimizer::new().with_solver(SolverKind::Exact(Default::default()));
    let optimal = optimizer
        .optimize(&cs.network, &cs.similarity)?
        .into_assignment();
    let opts = MttcOptions {
        runs: 400,
        ..MttcOptions::default()
    };
    println!("\nmean time to compromise t5 from c4 (400 runs):");
    for (label, assignment) in [
        ("mono-culture", &mono),
        ("optimal diversification", &optimal),
    ] {
        for (attacker, aname) in [
            (AttackerStrategy::Sophisticated, "sophisticated"),
            (AttackerStrategy::Uniform, "uniform"),
        ] {
            let scenario = Scenario::new(cs.host("c4"), cs.target).with_attacker(attacker);
            let est = estimate_mttc(&cs.network, assignment, &cs.similarity, &scenario, &opts);
            match est.mean_ticks() {
                Some(m) => println!(
                    "  {label:<24} vs {aname:<13} attacker: {m:>8.2} ticks (min {} / max {})",
                    est.min_ticks().unwrap(),
                    est.max_ticks().unwrap()
                ),
                None => println!("  {label:<24} vs {aname:<13} attacker: never compromised"),
            }
        }
    }
    println!("\nreading: diversification multiplies attacker dwell time; reconnaissance");
    println!("(the sophisticated strategy) recovers part of it, which is exactly the");
    println!("paper's argument for optimizing against the strongest attacker.");
    Ok(())
}
