//! Example package; runnable binaries live under `[[example]]` targets.
