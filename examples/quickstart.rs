//! Quickstart: build the Fig. 2 example network and compute its optimal
//! diversification.
//!
//! Six hosts, two services (web browser and database), three products per
//! service with similarities from the paper's published tables. Run with:
//!
//! ```sh
//! cargo run -p examples --example quickstart
//! ```

use ics_diversity::optimizer::DiversityOptimizer;
use netmodel::catalog::{Catalog, ProductSimilarity};
use netmodel::network::NetworkBuilder;
use netmodel::strategies::mono_assignment;
use nvd::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Catalog: two services, three products each (Fig. 2's wb1..wb3,
    //        db1..db3), with real similarities from Tables III + synthetic DB.
    let mut catalog = Catalog::new();
    let wb = catalog.add_service("web_browser");
    let db = catalog.add_service("database");
    for name in ["IE10", "Chrome50", "Firefox"] {
        catalog.add_product(name, wb)?;
    }
    for name in ["MSSQL14", "MySQL5.5", "MariaDB10"] {
        catalog.add_product(name, db)?;
    }
    let table = datasets::project(&datasets::browser_table(), &["IE10", "Chrome50", "Firefox"])
        .disjoint_union(&datasets::project(
            &datasets::db_table(),
            &["MSSQL14", "MySQL5.5", "MariaDB10"],
        ));
    let similarity = ProductSimilarity::from_table(&catalog, &table)?;

    // --- 2. Network: the 6-host topology of Fig. 2. Each host runs a
    //        subset of the services with its own candidate range.
    let mut b = NetworkBuilder::new();
    let hosts: Vec<_> = (0..6).map(|i| b.add_host(&format!("h{i}"))).collect();
    let all_wb = catalog.products_of(wb).to_vec();
    let all_db = catalog.products_of(db).to_vec();
    for &h in &hosts {
        b.add_service(h, wb, all_wb.clone())?;
    }
    // h2 and h5 additionally run a database; h4 runs only a database... the
    // paper's figure mixes service sets, which the model supports directly.
    b.add_service(hosts[2], db, all_db.clone())?;
    b.add_service(hosts[5], db, all_db.clone())?;
    b.add_service(hosts[0], db, all_db.clone())?;
    for (x, y) in [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)] {
        b.add_link(hosts[x], hosts[y])?;
    }
    let network = b.build(&catalog)?;

    // --- 3. Optimize.
    let optimizer = DiversityOptimizer::new();
    let solved = optimizer.optimize(&network, &similarity)?;
    println!("Optimal product assignment (one product per service per host):\n");
    print!("{}", solved.assignment().render(&network, &catalog));
    println!(
        "\nobjective {:.4}  (certified lower bound {:.4}, {} vars, {} edges)",
        solved.objective(),
        solved.lower_bound().unwrap_or(f64::NAN),
        solved.variables(),
        solved.edges(),
    );

    // --- 4. Compare against the homogeneous deployment.
    let mono = mono_assignment(&network);
    println!(
        "\ntotal edge similarity: optimal {:.3} vs mono {:.3} (lower = harder for a worm)",
        solved
            .assignment()
            .total_edge_similarity(&network, &similarity),
        mono.total_edge_similarity(&network, &similarity),
    );
    Ok(())
}
