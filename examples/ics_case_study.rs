//! The full Section VII pipeline on the Stuxnet-inspired ICS: optimal and
//! constrained-optimal diversification, the BN diversity metric, and a
//! compact MTTC campaign.
//!
//! ```sh
//! cargo run --release -p examples --example ics_case_study
//! ```

use bayesnet::attack::AttackModelConfig;
use ics_diversity::evaluate::{diversity_report, mttc_report, EvaluationConfig};
use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use netmodel::casestudy::CaseStudy;
use netmodel::strategies::{mono_assignment, random_assignment};
use sim::mttc::MttcOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cs = CaseStudy::build();
    println!(
        "ICS case study: {} hosts, {} links, {} products over {} services",
        cs.network.host_count(),
        cs.network.link_count(),
        cs.catalog.product_count(),
        cs.catalog.service_count()
    );
    println!(
        "legacy (non-diversifiable) hosts: {}",
        cs.legacy_hosts().len()
    );

    // The case-study MRF is small and sparse: solve exactly. `Exact` falls
    // back to TRW-S on high-treewidth inputs and reports it via telemetry.
    let optimizer = DiversityOptimizer::new().with_solver(SolverKind::Exact(Default::default()));
    let optimal = optimizer.optimize(&cs.network, &cs.similarity)?;
    println!(
        "\nsolved by `{}` in {:.1?}{}",
        optimal.solver_name(),
        optimal.wall_time(),
        optimal
            .exact_fallback()
            .map(|cause| format!(" (fallback fired: {cause})"))
            .unwrap_or_default()
    );
    let c1 = optimizer.optimize_constrained(&cs.network, &cs.similarity, &cs.constraints_c1())?;
    let c2 = optimizer.optimize_constrained(&cs.network, &cs.similarity, &cs.constraints_c2())?;
    // Same pinned draw as `bench::RANDOM_BASELINE_SEED` (see its comment).
    let random = random_assignment(&cs.network, 24);
    let mono = mono_assignment(&cs.network);

    println!("\nobjective values (sum of edge similarities + preference costs):");
    println!("  α̂    {:.3}", optimal.objective());
    println!(
        "  α̂C1  {:.3}   (+{:.3} paid for host constraints)",
        c1.objective(),
        c1.objective() - optimal.objective()
    );
    println!(
        "  α̂C2  {:.3}   (+{:.3} paid for product constraints)",
        c2.objective(),
        c2.objective() - optimal.objective()
    );

    // Diversity metric (Table V).
    println!("\nBN diversity metric dbn (entry c4 → target t5):");
    let rows = diversity_report(
        &cs.network,
        &cs.similarity,
        &[
            ("α̂", optimal.assignment()),
            ("α̂C1", c1.assignment()),
            ("α̂C2", c2.assignment()),
            ("α_r", &random),
            ("α_m", &mono),
        ],
        cs.bn_entry,
        cs.target,
        AttackModelConfig::default(),
    )?;
    for row in &rows {
        println!("  {:4}  dbn = {:.5}", row.label, row.metric.dbn);
    }

    // Compact MTTC campaign (Table VI shape).
    println!("\nMTTC (mean ticks to compromise t5, 200 runs per cell):");
    let config = EvaluationConfig {
        mttc: MttcOptions {
            runs: 200,
            ..MttcOptions::default()
        },
        ..EvaluationConfig::default()
    };
    let cells = mttc_report(
        &cs.network,
        &cs.similarity,
        &[("α̂", optimal.assignment()), ("α_m", &mono)],
        &cs.entry_points,
        cs.target,
        &config,
    );
    for cell in &cells {
        let entry = cs.network.host(cell.entry)?.name();
        match cell.estimate.mean_ticks() {
            Some(m) => println!(
                "  {:4} from {:3}: {:7.2} ticks  (±{:.1} std, {:.0}% runs succeeded)",
                cell.label,
                entry,
                m,
                cell.estimate.std_dev_ticks(),
                100.0 * cell.estimate.success_rate()
            ),
            None => println!("  {:4} from {:3}: never compromised", cell.label, entry),
        }
    }
    Ok(())
}
