//! Integration tests for the concurrent serving front-end
//! (`ics_diversity::serve`): snapshots published under write bursts must
//! equal the engine state at the snapshot's revision, revisions must be
//! monotone from every reader's point of view, queued bursts must coalesce
//! into a single `apply_batch`, and readers must keep making progress
//! while the writer absorbs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ics_diversity::serve::{Enqueue, ServingConfig, ServingEngine};
use ics_diversity::{DiversityEngine, ShardedEngine};
use netmodel::delta::{random_delta, NetworkDelta};
use netmodel::topology::{
    generate, generate_zoned, RandomNetworkConfig, TopologyKind, ZonedNetworkConfig,
};
use netmodel::HostId;

/// Generous per-wait ceiling: the waits below complete in milliseconds;
/// the ceiling only bounds a hung writer into a test failure.
const LONG: Duration = Duration::from_secs(120);

fn arb_config() -> impl Strategy<Value = RandomNetworkConfig> {
    (4usize..14, 1usize..4, 1usize..3, 2usize..4).prop_map(|(hosts, degree, services, products)| {
        RandomNetworkConfig {
            hosts,
            mean_degree: degree,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random write-burst sequences, submitted while readers may observe
    /// any interleaving: every published snapshot is *exactly* the state
    /// (assignment, revision, topology revision, objective) a reference
    /// engine reaches by absorbing the same batches — and the epochs and
    /// revisions a single reader observes never go backwards.
    #[test]
    fn snapshots_equal_engine_state_at_their_revision(
        config in arb_config(),
        net_seed in 0u64..100,
        delta_seed in 0u64..100,
        bursts in 1usize..5,
        burst_len in 1usize..4,
    ) {
        let g = generate(&config, net_seed);
        let mut reference = DiversityEngine::new(
            g.network.clone(),
            g.catalog.clone(),
            g.similarity.clone(),
        );
        reference.solve().expect("cold solve succeeds");
        let serving = ServingEngine::start(DiversityEngine::new(g.network, g.catalog, g.similarity))
            .expect("cold solve succeeds");

        let initial = serving.snapshot();
        prop_assert_eq!(initial.epoch(), 1);
        prop_assert_eq!(initial.revision(), reference.revision());
        prop_assert_eq!(initial.assignment(), reference.assignment().unwrap());

        let mut rng = StdRng::seed_from_u64(delta_seed);
        let mut reader = serving.reader();
        let mut observed = (0u64, 0u64);
        let mut expected_revision = 0u64;
        for _ in 0..bursts {
            // Build the burst against the reference network so every delta
            // is valid at its application point; both engines then absorb
            // the identical batch.
            let mut burst = Vec::new();
            let mut shadow = reference.network().clone();
            for _ in 0..burst_len {
                let delta = random_delta(&shadow, reference.catalog(), &mut rng, &[HostId(0)]);
                shadow
                    .apply_delta(&delta, reference.catalog())
                    .expect("generated deltas are valid");
                burst.push(delta);
            }
            let report = reference
                .apply_batch(&burst)
                .expect("unconstrained bursts absorb");
            expected_revision += burst.len() as u64;

            let enq = serving.submit(burst);
            prop_assert!(!matches!(enq, Enqueue::Rejected { .. }), "{:?}", enq);
            prop_assert!(serving.wait_for_revision(expected_revision, LONG));

            // Snapshot ≡ engine state at the snapshot's revision.
            let snapshot = serving.snapshot();
            prop_assert_eq!(snapshot.revision(), reference.revision());
            prop_assert_eq!(
                snapshot.topology_revision(),
                reference.network().topology_revision()
            );
            prop_assert_eq!(snapshot.assignment(), reference.assignment().unwrap());
            let objective = report.objective_after;
            prop_assert!(
                (snapshot.objective() - objective).abs() <= 1e-9 * objective.abs().max(1.0),
                "objective mismatch: {} vs {}",
                snapshot.objective(),
                objective
            );

            // Reader-side monotonicity across the interleaving.
            let seen = reader.current();
            let now = (seen.epoch(), seen.revision());
            prop_assert!(now >= observed, "went backwards: {:?} -> {:?}", observed, now);
            observed = now;
        }
        let (core, drain) = serving.shutdown();
        prop_assert_eq!(drain.last_revision, expected_revision);
        prop_assert_eq!(core.revision(), expected_revision);
        prop_assert_eq!(core.assignment().unwrap(), reference.assignment().unwrap());
    }
}

/// A write burst queued behind a busy (here: gated) writer coalesces into
/// ONE `apply_batch` — over a sharded core, where a merged batch also
/// exercises multi-shard routing.
#[test]
fn queued_burst_coalesces_into_a_single_apply_batch() {
    let g = generate_zoned(
        &ZonedNetworkConfig {
            zones: 2,
            hosts_per_zone: 8,
            gateway_links: 1,
            mean_degree: 2,
            services: 1,
            products_per_service: 3,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        },
        19,
    );
    let serving = ServingEngine::start_with(
        ShardedEngine::new(g.network, g.catalog, g.similarity),
        ServingConfig {
            paused: true,
            ..ServingConfig::default()
        },
    )
    .expect("cold solve succeeds");

    // Four submissions from both zones pile up behind the gate.
    for (i, host) in [15u32, 14, 7, 6].into_iter().enumerate() {
        let enq = serving.submit(vec![NetworkDelta::remove_host(HostId(host))]);
        if i == 0 {
            assert!(matches!(enq, Enqueue::Accepted { depth: 1 }), "{enq:?}");
        } else {
            assert!(matches!(enq, Enqueue::Coalesced { .. }), "{enq:?}");
        }
    }
    assert_eq!(serving.queue_depth(), 4);
    serving.resume();
    assert!(serving.wait_for_revision(4, Duration::from_secs(120)));

    let snapshot = serving.snapshot();
    assert_eq!(snapshot.epoch(), 2, "one publication for the whole burst");
    assert_eq!(
        snapshot.deltas_in_batch(),
        4,
        "all four deltas in one batch"
    );
    let (_core, drain) = serving.shutdown();
    assert_eq!(drain.stats.submissions, 4);
    assert_eq!(drain.stats.coalesced_submissions, 3);
    assert_eq!(
        drain.stats.batches_absorbed, 1,
        "four submissions, ONE apply_batch"
    );
    assert_eq!(drain.stats.deltas_absorbed, 4);
    assert_eq!(drain.last_revision, 4);
}

/// Eight reader threads keep completing reads while the writer churns
/// through delta bursts; every reader observes monotone (epoch, revision)
/// pairs and internally consistent snapshots.
#[test]
fn readers_progress_while_the_writer_absorbs() {
    let g = generate(
        &RandomNetworkConfig {
            hosts: 48,
            mean_degree: 3,
            services: 2,
            products_per_service: 3,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        },
        17,
    );
    let catalog = g.catalog.clone();
    let mut shadow = g.network.clone();
    let serving = ServingEngine::start(DiversityEngine::new(g.network, g.catalog, g.similarity))
        .expect("cold solve succeeds");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let mut reader = serving.reader();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut reads = 0u64;
                let mut observed = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = reader.current();
                    let now = (snapshot.epoch(), snapshot.revision());
                    assert!(now >= observed, "went backwards: {observed:?} -> {now:?}");
                    // Host 0 is protected from removal below, so every
                    // consistent snapshot serves products for it.
                    assert!(!snapshot.products_at(HostId(0)).is_empty());
                    observed = now;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(23);
    let mut submitted = 0u64;
    for _ in 0..12 {
        let mut burst = Vec::new();
        for _ in 0..rng.gen_range(1..4usize) {
            let delta = random_delta(&shadow, &catalog, &mut rng, &[HostId(0)]);
            shadow
                .apply_delta(&delta, &catalog)
                .expect("generated deltas are valid");
            burst.push(delta);
        }
        submitted += burst.len() as u64;
        assert!(!matches!(serving.submit(burst), Enqueue::Rejected { .. }));
    }
    assert!(serving.wait_for_revision(submitted, Duration::from_secs(240)));
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let reads = reader.join().expect("reader thread panicked");
        assert!(reads > 0, "a reader made no progress");
    }
    let (_core, drain) = serving.shutdown();
    assert_eq!(drain.last_revision, submitted);
    assert!(drain.stats.publications >= 2);
    assert!(
        drain.stats.batches_absorbed <= 12,
        "absorbs never exceed submissions"
    );
}
