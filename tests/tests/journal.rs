//! Durability properties: a journaled engine must be exactly recoverable,
//! damaged journals must recover to the last checksum-valid prefix (never
//! panic, never silently accept corruption), the record codec must
//! round-trip every [`NetworkDelta`] variant, and the on-disk format is
//! pinned byte-for-byte by a golden file.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ics_diversity::engine::DiversityEngine;
use ics_diversity::journal::{read_records, recover, recover_with};
use netmodel::assignment::Assignment;
use netmodel::catalog::{Catalog, ProductSimilarity};
use netmodel::constraints::{Constraint, ConstraintSet, Scope};
use netmodel::delta::{random_delta, NetworkDelta};
use netmodel::journal::{
    parse_record_line, read_strict, read_tolerant, BatchRecord, MarkRecord, Preamble, Record,
    SnapshotRecord, FORMAT_VERSION,
};
use netmodel::network::NetworkBuilder;
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
use netmodel::{HostId, ProductId, ServiceId};

fn tmp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ics-journal-it-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

fn fail<T>(what: &str) -> impl FnOnce(T) -> TestCaseError + '_
where
    T: std::fmt::Display,
{
    move |e| TestCaseError::Fail(format!("{what}: {e}"))
}

fn arb_config() -> impl Strategy<Value = RandomNetworkConfig> {
    (2usize..14, 1usize..5, 1usize..4, 2usize..5).prop_map(|(hosts, degree, services, products)| {
        RandomNetworkConfig {
            hosts,
            mean_degree: degree,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        }
    })
}

/// A burst of deltas that is valid *as a sequence*: each delta is drawn
/// against a scratch network that already absorbed its predecessors (the
/// same staging `apply_batch` validates against). Mirrors the churn
/// harness's batched mode.
fn valid_burst(engine: &DiversityEngine, rng: &mut StdRng, len: usize) -> Vec<NetworkDelta> {
    let mut scratch = engine.network().clone();
    let mut deltas = Vec::with_capacity(len);
    for _ in 0..len {
        let delta = random_delta(&scratch, engine.catalog(), rng, &[HostId(0)]);
        scratch
            .apply_delta(&delta, engine.catalog())
            .expect("staged delta applies to scratch");
        deltas.push(delta);
    }
    deltas
}

fn objective(engine: &DiversityEngine) -> f64 {
    engine
        .assignment()
        .expect("engine has solved")
        .total_edge_similarity(engine.network(), engine.similarity())
}

// ---------------------------------------------------------------------------
// Recovery ≡ live engine.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Journal + snapshot + recover reproduces the live engine exactly:
    /// same network (revision counters included), same revision, same
    /// topology revision, objective within 1e-9 — across arbitrary delta
    /// streams, burst sizes and snapshot cadences (including compaction).
    #[test]
    fn recovery_matches_live_engine(
        config in arb_config(),
        seed in 0u64..200,
        steps in 1usize..8,
        cadence in prop_oneof![Just(None), Just(Some(2usize)), Just(Some(64usize))],
    ) {
        let path = tmp_path("prop");
        let g = generate(&config, seed);
        let mut live = DiversityEngine::new(g.network, g.catalog, g.similarity)
            .with_journal_cadence(&path, cadence)
            .map_err(fail("attach journal"))?;
        live.solve().map_err(fail("cold solve"))?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        for step in 0..steps {
            let burst = valid_burst(&live, &mut rng, 1 + step % 3);
            live.apply_batch(&burst).map_err(fail("apply_batch"))?;
        }

        let recovered = recover(&path).map_err(fail("recover"))?;
        prop_assert_eq!(recovered.network(), live.network());
        prop_assert_eq!(recovered.revision(), live.revision());
        prop_assert_eq!(
            recovered.network().topology_revision(),
            live.network().topology_revision()
        );
        let (live_obj, back_obj) = (objective(&live), objective(&recovered));
        prop_assert!(
            (live_obj - back_obj).abs() <= 1e-9,
            "objective drifted: live {} vs recovered {}",
            live_obj,
            back_obj
        );
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------------
// Fault injection: torn writes and bit flips.
// ---------------------------------------------------------------------------

/// A deterministic full-history journal (cadence `None`): preamble, genesis
/// snapshot, post-solve snapshot, then one batch record per step. Returns
/// the engine and the revision after each commit point (index 0 = after the
/// cold solve).
fn recorded_journal(path: &PathBuf, steps: usize) -> (DiversityEngine, Vec<u64>) {
    let g = generate(
        &RandomNetworkConfig {
            hosts: 8,
            mean_degree: 3,
            services: 2,
            products_per_service: 3,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        },
        11,
    );
    let mut engine = DiversityEngine::new(g.network, g.catalog, g.similarity)
        .with_journal_cadence(path, None)
        .expect("journal attaches");
    engine.solve().expect("cold solve");
    let mut revisions = vec![engine.revision()];
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..steps {
        let burst = valid_burst(&engine, &mut rng, 1);
        engine.apply_batch(&burst).expect("batch applies");
        revisions.push(engine.revision());
    }
    (engine, revisions)
}

/// Truncating the file at *every* byte boundary of the final record always
/// recovers: the torn record is dropped and recovery lands on the previous
/// commit point, except at the two complete cuts (full record with or
/// without its trailing newline), which recover the full state.
#[test]
fn truncation_at_every_byte_of_the_final_record_recovers_a_prefix() {
    let path = tmp_path("trunc");
    let (engine, revisions) = recorded_journal(&path, 3);
    let data = std::fs::read(&path).unwrap();
    assert_eq!(data.last(), Some(&b'\n'), "journal lines are terminated");
    let full_revision = engine.revision();
    let previous_revision = revisions[revisions.len() - 2];
    let last_start = data[..data.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("journal has more than one record");

    let cut_path = tmp_path("trunc-cut");
    for cut in last_start..=data.len() {
        std::fs::write(&cut_path, &data[..cut]).unwrap();
        let recovered = recover(&cut_path)
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{} failed: {e}", data.len()));
        // A record torn mid-line is lost; missing only the newline is not.
        let expected = if cut >= data.len() - 1 {
            full_revision
        } else {
            previous_revision
        };
        assert_eq!(recovered.revision(), expected, "cut at byte {cut}");
        // The damage is reported, never silently swallowed.
        let read = read_records(&cut_path).unwrap();
        if cut > last_start && cut < data.len() - 1 {
            assert!(read.corruption.is_some(), "cut at byte {cut} unreported");
            assert_eq!(read.valid_len, last_start, "cut at byte {cut}");
        } else {
            assert!(read.corruption.is_none(), "clean cut at byte {cut}");
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut_path).ok();
}

/// Flipping a single byte in *any* record is detected by its checksum: the
/// tolerant reader stops exactly at the damaged record, recovery rebuilds
/// the prefix before it (or fails loudly when the preamble/genesis snapshot
/// itself is hit), and corruption is always reported.
#[test]
fn single_byte_flips_are_always_detected_never_absorbed() {
    let path = tmp_path("flip");
    let (engine, _revisions) = recorded_journal(&path, 3);
    let data = std::fs::read(&path).unwrap();
    let full_revision = engine.revision();
    let mut starts = vec![0usize];
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' && i + 1 < data.len() {
            starts.push(i + 1);
        }
    }
    // Layout with cadence None: preamble, genesis snapshot, post-solve
    // snapshot, then one batch per step.
    assert_eq!(starts.len(), 3 + 3, "unexpected journal layout");

    let flip_path = tmp_path("flip-cut");
    for (idx, &start) in starts.iter().enumerate() {
        let end = start + data[start..].iter().position(|&b| b == b'\n').unwrap();
        let mut damaged = data.clone();
        damaged[start + (end - start) / 2] ^= 0x01;

        let read = read_tolerant(&damaged);
        assert!(read.corruption.is_some(), "flip in record {idx} undetected");
        assert_eq!(read.records.len(), idx, "prefix wrong for record {idx}");
        assert_eq!(read.valid_len, start, "valid_len wrong for record {idx}");

        std::fs::write(&flip_path, &damaged).unwrap();
        match recover_with(&flip_path, |e| e) {
            // No preamble (idx 0) or no snapshot (idx 1) left: loud failure.
            Err(_) => assert!(idx < 2, "record {idx} flip should recover"),
            Ok(recovered) => {
                assert!(idx >= 2, "record {idx} flip recovered from nothing");
                assert!(
                    recovered.report.corruption.is_some(),
                    "record {idx} flip silently accepted"
                );
                let expected = if idx <= 3 { 0 } else { (idx - 3) as u64 };
                assert_eq!(recovered.engine.revision(), expected, "record {idx}");
                assert!(recovered.engine.revision() < full_revision);
            }
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&flip_path).ok();
}

// ---------------------------------------------------------------------------
// Codec round-trip over every NetworkDelta variant.
// ---------------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9_.]{0,8}",
        Just(String::new()),
        Just("zoné \"q\"\nλ中🦀\t\\".to_owned()),
    ]
}

fn arb_host() -> impl Strategy<Value = HostId> {
    // Includes ids far past any real network — tombstoned or dangling ids
    // must survive the codec untouched.
    prop_oneof![(0u32..64).prop_map(HostId), Just(HostId(u32::MAX))]
}

fn arb_service() -> impl Strategy<Value = ServiceId> {
    prop_oneof![(0u16..8).prop_map(ServiceId), Just(ServiceId(u16::MAX))]
}

fn arb_product() -> impl Strategy<Value = ProductId> {
    prop_oneof![(0u16..16).prop_map(ProductId), Just(ProductId(u16::MAX))]
}

fn arb_products() -> impl Strategy<Value = Vec<ProductId>> {
    proptest::collection::vec(arb_product(), 0..4)
}

fn arb_delta() -> impl Strategy<Value = NetworkDelta> {
    prop_oneof![
        (
            arb_name(),
            proptest::option::of(arb_name()),
            proptest::collection::vec((arb_service(), arb_products()), 0..3),
            proptest::collection::vec(arb_host(), 0..4),
        )
            .prop_map(|(name, zone, services, links)| NetworkDelta::AddHost {
                name,
                zone,
                services,
                links,
            }),
        arb_host().prop_map(|host| NetworkDelta::RemoveHost { host }),
        (arb_host(), arb_host()).prop_map(|(a, b)| NetworkDelta::AddLink { a, b }),
        (arb_host(), arb_host()).prop_map(|(a, b)| NetworkDelta::RemoveLink { a, b }),
        (arb_host(), arb_service(), arb_product()).prop_map(|(host, service, product)| {
            NetworkDelta::FixSlot {
                host,
                service,
                product,
            }
        }),
        (arb_host(), arb_service(), arb_products()).prop_map(|(host, service, candidates)| {
            NetworkDelta::UnfixSlot {
                host,
                service,
                candidates,
            }
        }),
        (arb_host(), arb_service(), arb_products()).prop_map(|(host, service, products)| {
            NetworkDelta::ExtendCandidates {
                host,
                service,
                products,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every delta variant — empty and unicode names, escape-needing
    /// characters, maximal ids — survives encode → checksum frame → parse
    /// exactly, along with the committed assignment riding the batch.
    #[test]
    fn delta_codec_round_trips(
        seq in 0u64..1000,
        revision in 0u64..1000,
        deltas in proptest::collection::vec(arb_delta(), 0..6),
        assignment in proptest::option::of(
            proptest::collection::vec(arb_products(), 0..4).prop_map(Assignment::from_slots)
        ),
    ) {
        let record = Record::Batch(BatchRecord { seq, revision, deltas, assignment });
        let line = record.to_line();
        let parsed = parse_record_line(line.trim_end_matches('\n').as_bytes())
            .map_err(fail("parse"))?;
        prop_assert_eq!(&parsed, &record);
        // And through the file-level reader.
        let strict = read_strict(line.as_bytes()).map_err(fail("read_strict"))?;
        prop_assert_eq!(strict, vec![record]);
    }
}

// ---------------------------------------------------------------------------
// Golden file: the on-disk format is pinned byte-for-byte.
// ---------------------------------------------------------------------------

/// A small fixed journal exercising every record kind, every delta variant,
/// zones, fixed slots, escape-needing strings and extreme ids.
fn golden_records() -> Vec<Record> {
    let mut catalog = Catalog::new();
    let web = catalog.add_service("web");
    let scada = catalog.add_service("scada");
    let ie = catalog.add_product("IE 10", web).unwrap();
    let ff = catalog.add_product("Firefox", web).unwrap();
    let wincc = catalog.add_product("WinCC", scada).unwrap();
    let similarity =
        ProductSimilarity::from_dense(3, vec![1.0, 0.4, 0.0, 0.4, 1.0, 0.25, 0.0, 0.25, 1.0]);
    let mut constraints = ConstraintSet::new();
    constraints.push(Constraint::fix(HostId(0), web, ie));
    constraints.push(Constraint::forbid_combination(
        Scope::All,
        (web, ie),
        (scada, wincc),
    ));
    constraints.push(Constraint::require_combination(
        Scope::Host(HostId(1)),
        (scada, wincc),
        (web, ff),
    ));

    let mut b = NetworkBuilder::new();
    let h0 = b.add_host_in_zone("hist0", "Control");
    let h1 = b.add_host("wkst \"α\"\t1");
    b.add_service(h0, web, vec![ie, ff]).unwrap();
    b.add_service(h0, scada, vec![wincc]).unwrap();
    b.add_service(h1, web, vec![ie, ff]).unwrap();
    b.add_link(h0, h1).unwrap();
    let network = b.build(&catalog).unwrap();
    let assignment = Assignment::from_slots(vec![vec![ie, wincc], vec![ff]]);

    vec![
        Record::Preamble(Preamble {
            format: FORMAT_VERSION,
            catalog,
            similarity,
            constraints,
        }),
        Record::Snapshot(SnapshotRecord {
            revision: 3,
            network,
            assignment: Some(assignment),
        }),
        Record::Batch(BatchRecord {
            seq: 7,
            revision: 9,
            assignment: Some(Assignment::from_slots(vec![
                vec![ie, wincc],
                vec![],
                vec![ff],
            ])),
            deltas: vec![
                NetworkDelta::AddHost {
                    name: "plc-λ中🦀\n2".to_owned(),
                    zone: Some(String::new()),
                    services: vec![(scada, vec![wincc])],
                    links: vec![HostId(0), HostId(u32::MAX)],
                },
                NetworkDelta::RemoveHost { host: HostId(1) },
                NetworkDelta::AddLink {
                    a: HostId(0),
                    b: HostId(2),
                },
                NetworkDelta::RemoveLink {
                    a: HostId(0),
                    b: HostId(1),
                },
                NetworkDelta::FixSlot {
                    host: HostId(0),
                    service: web,
                    product: ie,
                },
                NetworkDelta::UnfixSlot {
                    host: HostId(0),
                    service: web,
                    candidates: vec![ie, ff],
                },
                NetworkDelta::ExtendCandidates {
                    host: HostId(2),
                    service: ServiceId(u16::MAX),
                    products: vec![ProductId(u16::MAX)],
                },
            ],
        }),
        Record::Mark(MarkRecord::new(
            "golden",
            &[("mttc_resolve", 12.5), ("step", 3.0)],
        )),
    ]
}

/// The checked-in fixture must match what today's encoder writes, byte for
/// byte, and decode back to the same records: any format change is a
/// deliberate, reviewed act (bump [`FORMAT_VERSION`], regenerate with
/// `cargo test -p integration-tests --test journal -- --ignored`).
#[test]
fn golden_file_pins_the_on_disk_format() {
    let encoded: String = golden_records().iter().map(Record::to_line).collect();
    let checked_in = include_str!("data/journal_golden.log");
    assert_eq!(
        encoded, checked_in,
        "on-disk journal format changed; see this test's doc comment"
    );
    let decoded = read_strict(checked_in.as_bytes()).expect("golden file is valid");
    assert_eq!(decoded, golden_records());
}

/// Regenerates the golden fixture after a deliberate format change.
#[test]
#[ignore = "writes the golden fixture; run explicitly after a format change"]
fn regenerate_golden_fixture() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/journal_golden.log");
    let encoded: String = golden_records().iter().map(Record::to_line).collect();
    std::fs::write(path, encoded).unwrap();
}
