//! End-to-end integration: the full Section VII pipeline on the case study.

use bayesnet::attack::AttackModelConfig;
use ics_diversity::evaluate::{diversity_report, mttc_report, EvaluationConfig};
use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use netmodel::casestudy::CaseStudy;
use netmodel::strategies::{mono_assignment, random_assignment};
use sim::mttc::MttcOptions;

fn exact_optimizer() -> DiversityOptimizer {
    DiversityOptimizer::new().with_solver(SolverKind::Exact(Default::default()))
}

#[test]
fn table5_pipeline_preserves_the_paper_ordering() {
    let cs = CaseStudy::build();
    let optimizer = exact_optimizer();
    let optimal = optimizer.optimize(&cs.network, &cs.similarity).unwrap();
    let c1 = optimizer
        .optimize_constrained(&cs.network, &cs.similarity, &cs.constraints_c1())
        .unwrap();
    let c2 = optimizer
        .optimize_constrained(&cs.network, &cs.similarity, &cs.constraints_c2())
        .unwrap();
    // The pinned draw (see the constant's comment): the table illustrates
    // the paper's ordering, and an unluckily diverse random draw can
    // legitimately beat the *constrained* optima on dbn.
    let random = random_assignment(&cs.network, bench::RANDOM_BASELINE_SEED);
    let mono = mono_assignment(&cs.network);
    let rows = diversity_report(
        &cs.network,
        &cs.similarity,
        &[
            ("opt", optimal.assignment()),
            ("c1", c1.assignment()),
            ("c2", c2.assignment()),
            ("rand", &random),
            ("mono", &mono),
        ],
        cs.bn_entry,
        cs.target,
        AttackModelConfig::default(),
    )
    .unwrap();
    let dbn: Vec<f64> = rows.iter().map(|r| r.metric.dbn).collect();
    // Paper Table V's qualitative ordering.
    assert!(dbn[0] > dbn[1]);
    assert!(
        (dbn[1] - dbn[2]).abs() < 0.25 * dbn[1],
        "C1 and C2 are nearly equal in the paper"
    );
    assert!(dbn[1] > dbn[3] || dbn[2] > dbn[3]);
    assert!(dbn[3] > dbn[4]);
    // dbn is a proper (0, 1] metric for all assignments.
    for d in &dbn {
        assert!(*d > 0.0 && *d <= 1.0 + 1e-9);
    }
    // The constrained objectives pay for their constraints.
    assert!(optimal.objective() <= c1.objective() + 1e-9);
    assert!(c1.objective() <= c2.objective() + 1e-9);
}

#[test]
fn diversification_multiplies_mttc_against_mono() {
    let cs = CaseStudy::build();
    let optimal = exact_optimizer()
        .optimize(&cs.network, &cs.similarity)
        .unwrap()
        .into_assignment();
    let mono = mono_assignment(&cs.network);
    let config = EvaluationConfig {
        mttc: MttcOptions {
            runs: 200,
            ..MttcOptions::default()
        },
        ..EvaluationConfig::default()
    };
    let cells = mttc_report(
        &cs.network,
        &cs.similarity,
        &[("opt", &optimal), ("mono", &mono)],
        &cs.entry_points,
        cs.target,
        &config,
    );
    let total = |label: &str| -> f64 {
        cells
            .iter()
            .filter(|c| c.label == label)
            .map(|c| c.estimate.mean_ticks().unwrap_or(f64::INFINITY))
            .sum()
    };
    assert!(
        total("opt") > 3.0 * total("mono"),
        "aggregate MTTC: optimal {} should be a multiple of mono {}",
        total("opt"),
        total("mono")
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let cs = CaseStudy::build();
        let optimal = exact_optimizer()
            .optimize(&cs.network, &cs.similarity)
            .unwrap()
            .into_assignment();
        let metric = bayesnet::attack::diversity_metric(
            &cs.network,
            &optimal,
            &cs.similarity,
            cs.bn_entry,
            cs.target,
            AttackModelConfig::default(),
        )
        .unwrap();
        (optimal, metric.dbn)
    };
    let (a1, d1) = run();
    let (a2, d2) = run();
    assert_eq!(a1, a2, "optimization must be deterministic");
    assert_eq!(d1, d2, "inference must be deterministic");
}

#[test]
fn constrained_solutions_honor_their_constraint_sets() {
    let cs = CaseStudy::build();
    let optimizer = exact_optimizer();
    let c1 = cs.constraints_c1();
    let c2 = cs.constraints_c2();
    let s1 = optimizer
        .optimize_constrained(&cs.network, &cs.similarity, &c1)
        .unwrap();
    let s2 = optimizer
        .optimize_constrained(&cs.network, &cs.similarity, &c2)
        .unwrap();
    assert!(c1.is_satisfied(&cs.network, s1.assignment()));
    assert!(c2.is_satisfied(&cs.network, s2.assignment()));
    // And the fixed host really got its pinned products.
    let z4 = cs.host("z4");
    assert_eq!(
        s1.assignment().product_for(&cs.network, z4, cs.services.os),
        Some(cs.product("Win7"))
    );
    // C2's global rule: no IE10 on a Linux host anywhere.
    for (id, _) in cs.network.iter_hosts() {
        let os = s2.assignment().product_for(&cs.network, id, cs.services.os);
        let wb = s2.assignment().product_for(&cs.network, id, cs.services.wb);
        if os == Some(cs.product("Ubuntu14.04")) || os == Some(cs.product("Debian8.0")) {
            assert_ne!(wb, Some(cs.product("IE10")));
        }
    }
}

#[test]
fn legacy_hosts_never_change_products() {
    let cs = CaseStudy::build();
    let optimal = exact_optimizer()
        .optimize(&cs.network, &cs.similarity)
        .unwrap()
        .into_assignment();
    for h in cs.legacy_hosts() {
        let host = cs.network.host(h).unwrap();
        for inst in host.services() {
            assert_eq!(
                optimal.product_for(&cs.network, h, inst.service()),
                Some(inst.candidates()[0]),
                "legacy host {} must keep its only candidate",
                host.name()
            );
        }
    }
}

#[test]
fn exact_solver_beats_or_matches_every_other_solver_on_the_case_study() {
    use mrf::bp::BpOptions;
    use mrf::icm::IcmOptions;
    use mrf::trws::TrwsOptions;
    let cs = CaseStudy::build();
    let exact = exact_optimizer()
        .optimize(&cs.network, &cs.similarity)
        .unwrap();
    for solver in [
        SolverKind::Trws(TrwsOptions::default()),
        SolverKind::Bp(BpOptions::default()),
        SolverKind::Icm(IcmOptions::default()),
    ] {
        let other = DiversityOptimizer::new()
            .with_solver(solver.clone())
            .optimize(&cs.network, &cs.similarity)
            .unwrap();
        assert!(
            exact.objective() <= other.objective() + 1e-9,
            "exact {} must not exceed {:?} at {}",
            exact.objective(),
            solver,
            other.objective()
        );
    }
    // The exact optimum is certified: bound equals energy.
    assert!(exact.gap().unwrap().abs() < 1e-6);
}
