//! Property tests for batched delta absorption: for any valid delta
//! sequence, `apply_batch(all)` must be indistinguishable — in final
//! network state, feasibility verdict, and (up to refinement tolerance)
//! objective — from applying the deltas one by one, and from rebuilding a
//! `DiversityOptimizer` from scratch on the final network. Including
//! batches that fail mid-validation: those must be all-or-nothing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ics_diversity::engine::DiversityEngine;
use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use ics_diversity::Error;
use mrf::elimination::EliminationOptions;
use mrf::solver::ExactFallback;
use netmodel::delta::{random_delta, NetworkDelta};
use netmodel::network::Network;
use netmodel::topology::{generate, GeneratedNetwork, RandomNetworkConfig, TopologyKind};
use netmodel::HostId;

fn arb_config() -> impl Strategy<Value = RandomNetworkConfig> {
    // Sparse enough that exact elimination always fits its table cap: the
    // MRF decomposes per service, so each component has at most
    // `hosts + steps` variables at `products` labels with mean degree ≤ 3.
    (3usize..12, 1usize..4, 1usize..4, 2usize..5).prop_map(|(hosts, degree, services, products)| {
        RandomNetworkConfig {
            hosts,
            mean_degree: degree,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        }
    })
}

/// A delta stream that is valid when applied in order from `g.network`
/// (each delta generated against the state after its predecessors).
fn valid_stream(g: &GeneratedNetwork, seed: u64, steps: usize) -> Vec<NetworkDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = g.network.clone();
    let mut deltas = Vec::with_capacity(steps);
    for _ in 0..steps {
        let delta = random_delta(&scratch, &g.catalog, &mut rng, &[HostId(0)]);
        scratch
            .apply_delta(&delta, &g.catalog)
            .expect("generated deltas are valid");
        deltas.push(delta);
    }
    deltas
}

fn final_network(g: &GeneratedNetwork, deltas: &[NetworkDelta]) -> Network {
    let mut net = g.network.clone();
    for delta in deltas {
        net.apply_delta(delta, &g.catalog).expect("valid stream");
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With an *exact* full-model refiner (elimination, locality disabled),
    /// `apply_batch(all)`, sequential `apply`s, and a scratch
    /// `DiversityOptimizer` build on the final network agree exactly on the
    /// final network state and on the objective. The solver must be exact
    /// for the objective comparison: the engines optimize the in-place
    /// *edited* model, whose recycled variable ordering approximate sweeps
    /// are sensitive to, while the scratch optimizer sees a densely
    /// assembled one — the energy functions are identical, so exact optima
    /// coincide where approximate decodes may not.
    #[test]
    fn batch_equals_sequential_equals_scratch(
        config in arb_config(),
        net_seed in 0u64..150,
        delta_seed in 0u64..150,
        steps in 1usize..10,
    ) {
        let g = generate(&config, net_seed);
        let deltas = valid_stream(&g, delta_seed, steps);

        let make_engine = || {
            DiversityEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone())
                .with_solver(SolverKind::Exact(EliminationOptions::default()))
                .with_refiner(Box::new(ExactFallback::default()))
                .with_locality(None)
        };
        let mut batched = make_engine();
        batched.solve().expect("cold solve");
        let batch_report = batched.apply_batch(&deltas).expect("valid batch applies");
        prop_assert_eq!(batch_report.deltas_applied, steps);
        prop_assert!(batch_report.warm_started);
        prop_assert!(batch_report.improvement().expect("warm step") >= -1e-9);

        let mut sequential = make_engine();
        sequential.solve().expect("cold solve");
        let mut seq_report = None;
        for delta in &deltas {
            seq_report = Some(sequential.apply(delta).expect("valid delta applies"));
        }
        let seq_report = seq_report.expect("at least one step");

        // Identical final network state (hosts, links, revisions).
        prop_assert_eq!(batched.network(), sequential.network());
        prop_assert_eq!(batched.revision(), steps as u64);
        prop_assert_eq!(sequential.revision(), steps as u64);

        // Identical feasibility verdict vs. scratch, and objectives within
        // refinement tolerance of the scratch cold solve.
        let net = final_network(&g, &deltas);
        prop_assert_eq!(batched.network(), &net);
        let scratch = DiversityOptimizer::new()
            .with_solver(SolverKind::Exact(EliminationOptions::default()))
            .with_refinement(None)
            .optimize(&net, &g.similarity)
            .expect("unconstrained instances are feasible");
        prop_assert!(
            (batch_report.objective_after - scratch.objective()).abs() <= 1e-6,
            "batch {} vs scratch {}",
            batch_report.objective_after,
            scratch.objective()
        );
        prop_assert!(
            (seq_report.objective_after - scratch.objective()).abs() <= 1e-6,
            "sequential {} vs scratch {}",
            seq_report.objective_after,
            scratch.objective()
        );
        batched
            .assignment()
            .expect("solved")
            .validate(batched.network())
            .expect("batch assignment is valid");
        sequential
            .assignment()
            .expect("solved")
            .validate(sequential.network())
            .expect("sequential assignment is valid");
    }

    /// The default engine (ICM refiner, localized re-solve) absorbing the
    /// stream as one batch stays sound: same final network as sequential,
    /// never worse than carrying forward, valid assignments, coherent
    /// locality telemetry.
    #[test]
    fn localized_batch_path_is_sound(
        config in arb_config(),
        net_seed in 0u64..150,
        delta_seed in 0u64..150,
        steps in 1usize..10,
    ) {
        let g = generate(&config, net_seed);
        let deltas = valid_stream(&g, delta_seed, steps);

        let mut batched =
            DiversityEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        batched.solve().expect("cold solve");
        let report = batched.apply_batch(&deltas).expect("valid batch applies");
        prop_assert!(report.improvement().expect("warm step") >= -1e-9);
        prop_assert_eq!(report.revision, steps as u64);
        prop_assert!(report.swept_vars <= report.rebuild.variables);
        prop_assert!(report.frontier_hosts <= batched.network().active_host_count());
        batched
            .assignment()
            .expect("solved")
            .validate(batched.network())
            .expect("assignment is valid");
        prop_assert_eq!(batched.network(), &final_network(&g, &deltas));
    }

    /// A batch with an invalid delta anywhere in it is all-or-nothing: the
    /// engine is left exactly as it was, and the reported index and cause
    /// match what a sequential replay observes at its failing step.
    #[test]
    fn failing_batch_is_all_or_nothing_and_verdicts_agree(
        config in arb_config(),
        net_seed in 0u64..150,
        delta_seed in 0u64..150,
        prefix in 0usize..8,
    ) {
        let g = generate(&config, net_seed);
        let mut deltas = valid_stream(&g, delta_seed, prefix);
        // Host 0 is protected from removal, so a self-loop on it is a
        // guaranteed-invalid delta whatever the prefix did.
        deltas.push(NetworkDelta::add_link(HostId(0), HostId(0)));

        let mut batched =
            DiversityEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        batched.solve().expect("cold solve");
        let assignment_before = batched.assignment().expect("solved").clone();
        let err = batched.apply_batch(&deltas).expect_err("batch must fail");
        let Error::Model(netmodel::Error::BatchRejected { index, cause }) = err else {
            return Err(TestCaseError::Fail("unexpected error shape".to_owned()));
        };
        prop_assert_eq!(index, prefix, "the injected delta is the one rejected");
        prop_assert_eq!(*cause, netmodel::Error::SelfLoop(HostId(0)));
        prop_assert_eq!(batched.revision(), 0, "all-or-nothing: nothing committed");
        prop_assert_eq!(batched.network(), &g.network);
        prop_assert_eq!(batched.assignment(), Some(&assignment_before));

        // The sequential replay fails at the same index with the same cause
        // — but has committed the prefix (the semantics the batch fixes).
        let mut sequential =
            DiversityEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        sequential.solve().expect("cold solve");
        let mut seq_err = None;
        for (i, delta) in deltas.iter().enumerate() {
            match sequential.apply(delta) {
                Ok(_) => prop_assert!(i < prefix, "only the prefix may apply"),
                Err(e) => {
                    prop_assert_eq!(i, prefix);
                    seq_err = Some(e);
                    break;
                }
            }
        }
        match seq_err.expect("sequential replay must fail too") {
            Error::Model(m) => prop_assert_eq!(m, netmodel::Error::SelfLoop(HostId(0))),
            other => return Err(TestCaseError::Fail(format!("unexpected error {other}"))),
        }
        prop_assert_eq!(sequential.revision(), prefix as u64, "prefix committed");

        // The batched engine remains serviceable: the valid prefix alone
        // still applies.
        if prefix > 0 {
            let report = batched.apply_batch(&deltas[..prefix]).expect("valid prefix");
            prop_assert_eq!(report.deltas_applied, prefix);
            prop_assert_eq!(batched.network(), sequential.network());
        }
    }
}
