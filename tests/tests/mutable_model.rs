//! Property tests for the mutable MRF and the in-place energy-cache edit:
//! any random sequence of model edits must be indistinguishable from a
//! scratch-assembled model — same energy function (≤1e-9 divergence on
//! random labelings), same exact MAP — and edits addressed at tombstoned
//! handles must error without corrupting the model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ics_diversity::cache::EnergyCache;
use ics_diversity::energy::{build_energy, EnergyModel, EnergyParams, SlotBinding};
use mrf::model::MrfModel;
use mrf::solver::{ExactFallback, MapSolver, SolveControl};
use mrf::VarId;
use netmodel::constraints::ConstraintSet;
use netmodel::delta::random_delta;
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
use netmodel::HostId;

/// Semantic equivalence of an edited energy model and a scratch-assembled
/// one. The two may disagree on variable *ids* (edits recycle tombstoned
/// slots; scratch assembly is dense), so the comparison goes through the
/// slot bindings: identical binding structure and candidate lists, equal
/// live counts and base energy, and — for random per-slot product picks
/// encoded through each model's own variables — objectives within 1e-9.
fn assert_equivalent(
    edited: &EnergyModel,
    scratch: &EnergyModel,
    rng: &mut StdRng,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(edited.slots().len(), scratch.slots().len());
    for (host, (ra, rb)) in edited
        .slots()
        .iter()
        .zip(scratch.slots().iter())
        .enumerate()
    {
        prop_assert_eq!(ra.len(), rb.len(), "slot count at host {}", host);
        for (slot, (ba, bb)) in ra.iter().zip(rb.iter()).enumerate() {
            match (ba, bb) {
                (SlotBinding::Fixed(pa), SlotBinding::Fixed(pb)) => {
                    prop_assert_eq!(pa, pb, "fixed product at ({}, {})", host, slot)
                }
                (
                    SlotBinding::Variable { candidates: ca, .. },
                    SlotBinding::Variable { candidates: cb, .. },
                ) => prop_assert_eq!(ca, cb, "candidates at ({}, {})", host, slot),
                _ => {
                    return Err(TestCaseError::Fail(format!(
                        "binding kind mismatch at ({host}, {slot})"
                    )))
                }
            }
        }
    }
    prop_assert_eq!(
        edited.model().live_var_count(),
        scratch.model().live_var_count()
    );
    prop_assert_eq!(edited.model().edge_count(), scratch.model().edge_count());
    prop_assert!((edited.base_energy() - scratch.base_energy()).abs() < 1e-9);
    for _ in 0..8 {
        let mut labels_e = vec![0usize; edited.model().var_count()];
        let mut labels_s = vec![0usize; scratch.model().var_count()];
        for (host, (ra, rb)) in edited
            .slots()
            .iter()
            .zip(scratch.slots().iter())
            .enumerate()
        {
            let _ = host;
            for (ba, bb) in ra.iter().zip(rb.iter()) {
                if let (
                    SlotBinding::Variable {
                        var: va,
                        candidates,
                    },
                    SlotBinding::Variable { var: vb, .. },
                ) = (ba, bb)
                {
                    let pick = rng.gen_range(0..candidates.len());
                    labels_e[va.0] = pick;
                    labels_s[vb.0] = pick;
                }
            }
        }
        let oe = edited.model().energy(&labels_e) + edited.base_energy();
        let os = scratch.model().energy(&labels_s) + scratch.base_energy();
        prop_assert!(
            (oe - os).abs() < 1e-9,
            "objective mismatch: edited {} vs scratch {}",
            oe,
            os
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: a cache absorbing an arbitrary delta
    /// stream through hinted (in-place edit) refreshes is indistinguishable
    /// from a scratch `build_energy` on the final network — same objective
    /// for any assignment, and the same MAP under a fixed exact solver.
    #[test]
    fn edit_stream_equals_scratch_assembly(
        hosts in 3usize..10,
        degree in 1usize..4,
        services in 1usize..3,
        products in 2usize..4,
        net_seed in 0u64..100,
        delta_seed in 0u64..100,
        steps in 1usize..12,
    ) {
        let g = generate(
            &RandomNetworkConfig {
                hosts,
                mean_degree: degree,
                services,
                products_per_service: products,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            net_seed,
        );
        let mut rng = StdRng::seed_from_u64(delta_seed);
        let mut check_rng = StdRng::seed_from_u64(delta_seed ^ 0x5EED);
        let mut net = g.network.clone();
        let mut cache = EnergyCache::new(
            &net,
            &g.similarity,
            &ConstraintSet::new(),
            EnergyParams::default(),
        )
        .expect("unconstrained instances are feasible");
        let mut edited_any = false;
        for _ in 0..steps {
            let delta = random_delta(&net, &g.catalog, &mut rng, &[HostId(0)]);
            let effect = net.apply_delta(&delta, &g.catalog).expect("valid delta");
            let stats = cache
                .refresh_hinted(&net, &g.similarity, Some(&effect.touched))
                .expect("feasible refresh");
            prop_assert!(stats.rebuilt);
            edited_any |= stats.edited;
            let scratch = build_energy(
                &net,
                &g.similarity,
                &ConstraintSet::new(),
                EnergyParams::default(),
            )
            .expect("scratch build");
            assert_equivalent(cache.model(), &scratch, &mut check_rng)?;
            // Same MAP under a fixed exact solver: the energy functions are
            // identical up to variable ids, so the exact optima coincide.
            let ctl = SolveControl::new();
            let solver = ExactFallback::default();
            let map_edited = solver.solve(cache.model().model(), &ctl).energy()
                + cache.model().base_energy();
            let map_scratch =
                solver.solve(scratch.model(), &ctl).energy() + scratch.base_energy();
            prop_assert!(
                (map_edited - map_scratch).abs() < 1e-9,
                "MAP mismatch: edited {} vs scratch {}",
                map_edited,
                map_scratch
            );
        }
        prop_assert!(edited_any, "the stream must exercise the edit path");
    }

    /// Raw model-level churn: random interleavings of add/remove variable
    /// and edge mutations agree with a freshly assembled model of the same
    /// final structure, and mutations addressed at tombstoned handles error
    /// without corrupting anything.
    #[test]
    fn random_model_edits_match_fresh_assembly(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = MrfModel::new();
        // Logical state: live vars (handle, labels, unary) and live edges
        // (handle, endpoints, dense costs).
        let mut vars: Vec<(VarId, usize, Vec<f64>)> = Vec::new();
        let mut edges: Vec<(mrf::EdgeId, VarId, VarId, Vec<f64>)> = Vec::new();
        for _ in 0..40 {
            match rng.gen_range(0u32..10) {
                // Add a variable with random arity and unary costs.
                0..=3 => {
                    let labels = rng.gen_range(1usize..4);
                    let unary: Vec<f64> =
                        (0..labels).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    let v = model.add_var(labels).expect("non-empty domain");
                    model.set_unary(v, unary.clone()).expect("fresh var");
                    vars.push((v, labels, unary));
                }
                // Remove a random live variable; its edges go with it.
                4..=5 if !vars.is_empty() => {
                    let idx = rng.gen_range(0..vars.len());
                    let (v, ..) = vars.remove(idx);
                    model.remove_var(v).expect("live var");
                    edges.retain(|(_, a, b, _)| *a != v && *b != v);
                    // A second removal must error and change nothing.
                    let snapshot = model.clone();
                    prop_assert!(model.remove_var(v).is_err());
                    prop_assert!(model.set_unary(v, vec![0.0]).is_err());
                    prop_assert!(model.add_unary(v, 0, 1.0).is_err());
                    if let Some((other, ..)) = vars.first() {
                        prop_assert!(model.add_pairwise_dense(v, *other, vec![0.0]).is_err());
                    }
                    prop_assert_eq!(&model, &snapshot, "failed edits must not corrupt");
                }
                // Add an edge between two random live variables.
                6..=8 if vars.len() >= 2 => {
                    let i = rng.gen_range(0..vars.len());
                    let mut j = rng.gen_range(0..vars.len());
                    if i == j {
                        j = (j + 1) % vars.len();
                    }
                    let (a, la, _) = vars[i].clone();
                    let (b, lb, _) = vars[j].clone();
                    let costs: Vec<f64> =
                        (0..la * lb).map(|_| rng.gen_range(0.0..2.0)).collect();
                    let e = model.add_pairwise_dense(a, b, costs.clone()).expect("live endpoints");
                    edges.push((e, a, b, costs));
                }
                // Remove a random live edge.
                _ if !edges.is_empty() => {
                    let idx = rng.gen_range(0..edges.len());
                    let (e, ..) = edges.remove(idx);
                    model.remove_pairwise(e).expect("live edge");
                    prop_assert!(model.remove_pairwise(e).is_err(), "double removal errors");
                }
                _ => {}
            }
        }
        prop_assert_eq!(model.live_var_count(), vars.len());
        prop_assert_eq!(model.edge_count(), edges.len());

        // Assemble the same final structure from scratch.
        let mut fresh = MrfModel::new();
        let mut remap = std::collections::HashMap::new();
        for (v, labels, unary) in &vars {
            let nv = fresh.add_var(*labels).expect("non-empty");
            fresh.set_unary(nv, unary.clone()).expect("fresh var");
            remap.insert(*v, nv);
        }
        for (_, a, b, costs) in &edges {
            fresh
                .add_pairwise_dense(remap[a], remap[b], costs.clone())
                .expect("live endpoints");
        }

        // Identical energies over random labelings...
        for _ in 0..10 {
            let mut labels_m = vec![0usize; model.var_count()];
            let mut labels_f = vec![0usize; fresh.var_count()];
            for (v, arity, _) in &vars {
                let pick = rng.gen_range(0..*arity);
                labels_m[v.0] = pick;
                labels_f[remap[v].0] = pick;
            }
            let em = model.energy(&labels_m);
            let ef = fresh.energy(&labels_f);
            prop_assert!((em - ef).abs() < 1e-9, "energy {} vs {}", em, ef);
        }
        // ...and the same exact MAP.
        let ctl = SolveControl::new();
        let solver = ExactFallback::default();
        let map_m = solver.solve(&model, &ctl).energy();
        let map_f = solver.solve(&fresh, &ctl).energy();
        prop_assert!((map_m - map_f).abs() < 1e-9, "MAP {} vs {}", map_m, map_f);
    }
}
