//! Property tests for the incremental pipeline: a cache that absorbed an
//! arbitrary delta stream must be indistinguishable from a scratch build.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ics_diversity::cache::EnergyCache;
use ics_diversity::energy::{build_energy, EnergyModel, EnergyParams};
use ics_diversity::engine::DiversityEngine;
use netmodel::constraints::{Constraint, ConstraintSet, Scope};
use netmodel::delta::random_delta;
use netmodel::topology::{generate, GeneratedNetwork, RandomNetworkConfig, TopologyKind};
use netmodel::{HostId, ServiceId};

/// Structural + energetic equivalence of two models. The incremental model
/// edits in place and recycles variable ids, so the comparison is semantic:
/// same binding structure and candidates per slot, same live counts, and
/// matching energies for random slot assignments encoded through each
/// model's own variable ids.
fn assert_models_match(
    incremental: &EnergyModel,
    scratch: &EnergyModel,
    rng: &mut StdRng,
) -> Result<(), TestCaseError> {
    use ics_diversity::energy::SlotBinding;
    prop_assert_eq!(incremental.slots().len(), scratch.slots().len());
    for (ra, rb) in incremental.slots().iter().zip(scratch.slots().iter()) {
        prop_assert_eq!(ra.len(), rb.len());
        for (ba, bb) in ra.iter().zip(rb.iter()) {
            match (ba, bb) {
                (SlotBinding::Fixed(pa), SlotBinding::Fixed(pb)) => prop_assert_eq!(pa, pb),
                (
                    SlotBinding::Variable { candidates: ca, .. },
                    SlotBinding::Variable { candidates: cb, .. },
                ) => prop_assert_eq!(ca, cb),
                _ => {
                    return Err(TestCaseError::Fail(format!(
                        "binding kind mismatch: {ba:?} vs {bb:?}"
                    )))
                }
            }
        }
    }
    prop_assert_eq!(
        incremental.model().live_var_count(),
        scratch.model().live_var_count()
    );
    prop_assert_eq!(
        incremental.model().edge_count(),
        scratch.model().edge_count()
    );
    prop_assert!((incremental.base_energy() - scratch.base_energy()).abs() < 1e-12);
    // Random slot assignments, encoded per model through its own slots so
    // differing variable ids cannot skew the comparison.
    let encode = |m: &EnergyModel, picks: &[Vec<usize>]| {
        let mut labels = vec![0usize; m.model().var_count()];
        for (host, row) in m.slots().iter().enumerate() {
            for (slot, binding) in row.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    labels[var.0] = picks[host][slot] % candidates.len();
                }
            }
        }
        labels
    };
    for _ in 0..8 {
        let picks: Vec<Vec<usize>> = incremental
            .slots()
            .iter()
            .map(|row| row.iter().map(|_| rng.gen_range(0..64usize)).collect())
            .collect();
        let a =
            incremental.model().energy(&encode(incremental, &picks)) + incremental.base_energy();
        let b = scratch.model().energy(&encode(scratch, &picks)) + scratch.base_energy();
        // Relative tolerance: the two models sum identical terms in
        // different orders, and constraint penalties push totals to ~1e7.
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "energy mismatch: {} vs {}",
            a,
            b
        );
    }
    Ok(())
}

/// A small random constraint set over the generated catalog: one Fix plus a
/// forbid and a require combination (needs ≥ 2 services to be non-vacuous).
fn random_constraints(g: &GeneratedNetwork, rng: &mut StdRng) -> ConstraintSet {
    let pick = |s: ServiceId, rng: &mut StdRng| {
        let ps = g.catalog.products_of(s);
        ps[rng.gen_range(0..ps.len())]
    };
    let s0 = ServiceId(0);
    let mut set = ConstraintSet::new();
    let host = HostId(rng.gen_range(0..g.network.host_count() as u32));
    set.push(Constraint::fix(host, s0, pick(s0, rng)));
    if g.catalog.service_count() >= 2 {
        let s1 = ServiceId(1);
        set.push(Constraint::forbid_combination(
            Scope::All,
            (s0, pick(s0, rng)),
            (s1, pick(s1, rng)),
        ));
        let h = HostId(rng.gen_range(0..g.network.host_count() as u32));
        set.push(Constraint::require_combination(
            Scope::Host(h),
            (s1, pick(s1, rng)),
            (s0, pick(s0, rng)),
        ));
    }
    set
}

fn arb_config() -> impl Strategy<Value = RandomNetworkConfig> {
    (2usize..16, 1usize..5, 1usize..4, 2usize..5).prop_map(|(hosts, degree, services, products)| {
        RandomNetworkConfig {
            hosts,
            mean_degree: degree,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random delta sequence pushed through `EnergyCache::refresh`
    /// yields a model whose structure and energies match a from-scratch
    /// `build_energy` on the resulting network.
    #[test]
    fn cache_matches_scratch_after_any_delta_sequence(
        config in arb_config(),
        net_seed in 0u64..200,
        delta_seed in 0u64..200,
        steps in 1usize..12,
    ) {
        let g = generate(&config, net_seed);
        let mut network = g.network;
        let params = EnergyParams::default();
        let constraints = ConstraintSet::new();
        let mut cache = EnergyCache::new(&network, &g.similarity, &constraints, params)
            .expect("generated instances are feasible");
        let mut rng = StdRng::seed_from_u64(delta_seed);
        for _ in 0..steps {
            let delta = random_delta(&network, &g.catalog, &mut rng, &[]);
            network.apply_delta(&delta, &g.catalog).expect("generated deltas are valid");
            cache.refresh(&network, &g.similarity).expect("unconstrained refresh succeeds");
        }
        let scratch = build_energy(&network, &g.similarity, &constraints, params)
            .expect("scratch build succeeds");
        assert_models_match(cache.model(), &scratch, &mut rng)?;
    }

    /// The same equivalence under a non-trivial constraint set — covering
    /// the per-host rewrite of the old global constraint-filtering
    /// fixpoint. Constraints can make a revision (or the initial build)
    /// infeasible; cache and scratch must then *agree* on infeasibility.
    #[test]
    fn cache_matches_scratch_under_constraints(
        config in arb_config(),
        net_seed in 0u64..120,
        delta_seed in 0u64..120,
        steps in 1usize..10,
    ) {
        let g = generate(&config, net_seed);
        let mut rng = StdRng::seed_from_u64(delta_seed ^ 0xC0FFEE);
        let constraints = random_constraints(&g, &mut rng);
        let params = EnergyParams::default();
        let mut network = g.network.clone();
        let cache = EnergyCache::new(&network, &g.similarity, &constraints, params);
        let mut cache = match (cache, build_energy(&network, &g.similarity, &constraints, params)) {
            (Ok(cache), Ok(scratch)) => {
                assert_models_match(cache.model(), &scratch, &mut rng)?;
                cache
            }
            (Err(_), Err(_)) => return Ok(()), // agree: infeasible instance
            (c, s) => {
                return Err(TestCaseError::Fail(format!(
                    "feasibility disagreement at build: cache {:?} vs scratch {:?}",
                    c.map(|_| ()), s.map(|_| ())
                )));
            }
        };
        for _ in 0..steps {
            let delta = random_delta(&network, &g.catalog, &mut rng, &[]);
            network.apply_delta(&delta, &g.catalog).expect("generated deltas are valid");
            let refreshed = cache.refresh(&network, &g.similarity);
            let scratch = build_energy(&network, &g.similarity, &constraints, params);
            match (refreshed, scratch) {
                (Ok(_), Ok(scratch)) => assert_models_match(cache.model(), &scratch, &mut rng)?,
                // Both sides reject the revision: the (kept) cached model
                // stays at the previous revision; stop the sequence here.
                (Err(_), Err(_)) => return Ok(()),
                (c, s) => {
                    return Err(TestCaseError::Fail(format!(
                        "feasibility disagreement after {delta}: cache {:?} vs scratch {:?}",
                        c.map(|_| ()), s.map(|_| ())
                    )));
                }
            }
        }
    }

    /// The engine's warm re-solve never does worse than carrying the old
    /// assignment forward, and its assignments always validate.
    #[test]
    fn engine_resolve_dominates_carrying_forward(
        config in arb_config(),
        net_seed in 0u64..100,
        delta_seed in 0u64..100,
        steps in 1usize..8,
    ) {
        let g = generate(&config, net_seed);
        let mut engine = DiversityEngine::new(g.network, g.catalog, g.similarity);
        engine.solve().expect("cold solve succeeds");
        let mut rng = StdRng::seed_from_u64(delta_seed);
        for _ in 0..steps {
            let delta = random_delta(engine.network(), engine.catalog(), &mut rng, &[HostId(0)]);
            let report = engine.apply(&delta).expect("unconstrained deltas apply");
            prop_assert!(report.warm_started);
            prop_assert!(report.improvement().expect("warm step") >= -1e-9);
            engine
                .assignment()
                .expect("solved")
                .validate(engine.network())
                .expect("assignment is valid");
        }
    }
}
