//! Integration tests for the `MapSolver` redesign: portfolio dominance,
//! deadline-limited anytime solves, cancellation, and progress reporting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use mrf::icm::IcmOptions;
use mrf::portfolio::SolverPortfolio;
use mrf::solver::{MapSolver, SolveControl};
use mrf::trws::TrwsOptions;
use netmodel::casestudy::CaseStudy;
use netmodel::constraints::{Constraint, ConstraintSet};
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};

fn config(hosts: usize, degree: usize) -> RandomNetworkConfig {
    RandomNetworkConfig {
        hosts,
        mean_degree: degree,
        services: 2,
        products_per_service: 3,
        vendors_per_service: 2,
        topology: TopologyKind::Random,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The portfolio's energy never exceeds the minimum of its members'
    /// energies on seeded random networks (it returns the best member).
    #[test]
    fn portfolio_energy_at_most_min_of_members(
        hosts in 6usize..30,
        degree in 2usize..6,
        seed in 0u64..500,
    ) {
        let g = generate(&config(hosts, degree), seed);
        let energy = ics_diversity::energy::build_energy(
            &g.network,
            &g.similarity,
            &netmodel::constraints::ConstraintSet::new(),
            ics_diversity::energy::EnergyParams::default(),
        )
        .unwrap();
        let model = energy.model();
        let outcome = SolverPortfolio::standard()
            .solve_detailed(model, &SolveControl::new());
        let min_member = outcome
            .reports
            .iter()
            .map(|r| r.energy)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            outcome.solution.energy() <= min_member + 1e-9,
            "portfolio {} worse than best member {}",
            outcome.solution.energy(),
            min_member
        );
        // The reported winner is consistent with the returned solution.
        let winner = outcome.reports.iter().find(|r| r.winner).unwrap();
        prop_assert!((winner.energy - outcome.solution.energy()).abs() < 1e-12);
        // Any certified bound brackets the returned energy.
        if let Some(lb) = outcome.solution.lower_bound() {
            prop_assert!(lb <= outcome.solution.energy() + 1e-7);
        }
    }
}

/// A 10 ms budget on a 500-host instance still yields a complete, valid,
/// constraint-respecting assignment (anytime semantics end to end).
#[test]
fn deadline_limited_solve_returns_valid_assignment() {
    let g = generate(&config(500, 8), 42);
    // Pin one slot so the constraint machinery is genuinely exercised
    // under time pressure (fix constraints restrict domains up front, so
    // they hold for any labeling the solver returns).
    let host = netmodel::HostId(0);
    let inst = &g.network.host(host).unwrap().services()[0];
    let pinned = inst.candidates()[0];
    let mut constraints = ConstraintSet::new();
    constraints.push(Constraint::fix(host, inst.service(), pinned));

    let optimizer = DiversityOptimizer::new()
        .with_solver(SolverKind::Portfolio(vec![
            SolverKind::Trws(TrwsOptions::default()),
            SolverKind::Icm(IcmOptions::default()),
        ]))
        .with_time_budget(Duration::from_millis(10));
    let solved = optimizer
        .optimize_constrained(&g.network, &g.similarity, &constraints)
        .expect("deadline-limited solve still produces an assignment");
    solved.assignment().validate(&g.network).unwrap();
    assert!(constraints.is_satisfied(&g.network, solved.assignment()));
    assert_eq!(
        solved
            .assignment()
            .product_for(&g.network, host, inst.service()),
        Some(pinned)
    );
}

/// Acceptance: a deadline-limited portfolio solve on the ICS case study
/// returns a valid assignment with energy ≤ the best single member's.
#[test]
fn case_study_portfolio_beats_single_members_under_deadline() {
    let cs = CaseStudy::build();
    let ctl = SolveControl::new().with_budget(Duration::from_millis(500));
    let energy = ics_diversity::energy::build_energy(
        &cs.network,
        &cs.similarity,
        &ConstraintSet::new(),
        ics_diversity::energy::EnergyParams::default(),
    )
    .unwrap();
    let outcome = SolverPortfolio::standard().solve_detailed(energy.model(), &ctl);
    let assignment = energy.decode(outcome.solution.labels());
    assignment.validate(&cs.network).unwrap();
    for report in &outcome.reports {
        assert!(
            outcome.solution.energy() <= report.energy + 1e-9,
            "portfolio {} worse than member {} ({})",
            outcome.solution.energy(),
            report.name,
            report.energy
        );
    }
}

/// Cancellation stops a long solve promptly and still yields a labeling.
#[test]
fn cancellation_is_honored() {
    let g = generate(&config(300, 8), 3);
    let energy = ics_diversity::energy::build_energy(
        &g.network,
        &g.similarity,
        &ConstraintSet::new(),
        ics_diversity::energy::EnergyParams::default(),
    )
    .unwrap();
    let ctl = SolveControl::new();
    ctl.cancel(); // cancelled before it starts: must stop at first check
    let solution = mrf::trws::Trws::default().solve(energy.model(), &ctl);
    assert_eq!(solution.labels().len(), energy.model().var_count());
    assert!(!solution.converged());
    assert_eq!(solution.iterations(), 0);
}

/// Progress callbacks stream (iteration, energy, bound) and energies are
/// monotonically non-increasing for TRW-S (best-so-far semantics).
#[test]
fn progress_reports_stream_and_never_worsen() {
    let g = generate(&config(60, 5), 11);
    let energy = ics_diversity::energy::build_energy(
        &g.network,
        &g.similarity,
        &ConstraintSet::new(),
        ics_diversity::energy::EnergyParams::default(),
    )
    .unwrap();
    let events = Arc::new(AtomicUsize::new(0));
    let last_energy = Arc::new(std::sync::Mutex::new(f64::INFINITY));
    let seen = Arc::clone(&events);
    let last = Arc::clone(&last_energy);
    let ctl = SolveControl::new().with_progress(move |event| {
        seen.fetch_add(1, Ordering::Relaxed);
        let mut prev = last.lock().unwrap();
        assert!(
            event.energy <= *prev + 1e-9,
            "best-so-far energy worsened: {} after {}",
            event.energy,
            *prev
        );
        *prev = event.energy;
    });
    let solution = mrf::trws::Trws::default().solve(energy.model(), &ctl);
    assert!(events.load(Ordering::Relaxed) > 0, "no progress events");
    assert!(solution.energy().is_finite());
}
