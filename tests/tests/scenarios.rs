//! Cross-crate property tests for the adversarial scenario suite: the
//! adaptive attacker loop is deterministic under a fixed seed (identical
//! MTTC trajectory and defender-lag across two runs), `CveFeed` bursts are
//! always valid on the topology they were generated for (`apply_batch`
//! never rejects one), and all three structured topology families solve
//! end-to-end through both `DiversityEngine` and `ShardedEngine`.

use proptest::prelude::*;

use ics_diversity::churn::{
    run_churn_adaptive, AdaptiveChurnConfig, ChurnConfig, ChurnMode, CveFeed, CveFeedConfig,
};
use ics_diversity::engine::DiversityEngine;
use ics_diversity::shard::ShardedEngine;
use netmodel::topology::{
    generate, generate_fat_tree, generate_scale_free, generate_tiered_enterprise, FatTreeConfig,
    GeneratedNetwork, RandomNetworkConfig, ScaleFreeConfig, TieredEnterpriseConfig, TopologyKind,
};
use netmodel::HostId;
use sim::mttc::MttcOptions;

/// A small instance of each topology family, dialed by a proptest-drawn
/// size knob — the shapes `CveFeed` must stay valid on.
fn family_instance(family: usize, size: usize, seed: u64) -> GeneratedNetwork {
    match family % 4 {
        0 => generate(
            &RandomNetworkConfig {
                hosts: 6 + size,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            seed,
        ),
        1 => generate_fat_tree(
            &FatTreeConfig {
                pods: 2,
                core_hosts: 2,
                agg_per_pod: 1,
                edge_per_pod: 2,
                hosts_per_edge: 1 + size / 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
            },
            seed,
        ),
        2 => generate_scale_free(
            &ScaleFreeConfig {
                hosts: 6 + size,
                edges_per_host: 2,
                attachment_exponent: 1.0,
                zones: 3,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
            },
            seed,
        ),
        _ => generate_tiered_enterprise(
            &TieredEnterpriseConfig {
                dmz_hosts: 2,
                internal_zones: 2,
                hosts_per_internal: 2 + size / 4,
                server_hosts: 2,
                spoke_links: 2,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
            },
            seed,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The adversary-in-the-loop replay is fully deterministic for a fixed
    /// seed: two fresh engines on the same instance produce the identical
    /// attack trajectory — entry/target picks, cluster census, MTTC means
    /// and the defender-lag column — and every defender-lag is finite.
    #[test]
    fn adaptive_loop_is_deterministic(
        hosts in 10usize..24,
        seed in 0u64..200,
        steps in 2usize..5,
    ) {
        let make = || {
            let g = generate(
                &RandomNetworkConfig {
                    hosts,
                    mean_degree: 4,
                    services: 2,
                    products_per_service: 3,
                    vendors_per_service: 2,
                    topology: TopologyKind::Random,
                },
                seed,
            );
            DiversityEngine::new(g.network, g.catalog, g.similarity)
        };
        let config = AdaptiveChurnConfig {
            churn: ChurnConfig {
                steps,
                seed,
                mode: ChurnMode::Batched { mean_burst: 2.0 },
                mttc: MttcOptions { runs: 20, ..MttcOptions::default() },
                ..ChurnConfig::default()
            },
            ..AdaptiveChurnConfig::default()
        };
        let first = run_churn_adaptive(&mut make(), &config).expect("replay runs");
        let second = run_churn_adaptive(&mut make(), &config).expect("replay runs");
        prop_assert_eq!(first.len(), steps);
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.entry, b.entry, "step {} entry", a.step);
            prop_assert_eq!(a.target, b.target, "step {} target", a.step);
            prop_assert_eq!(a.cluster_size, b.cluster_size);
            prop_assert_eq!(a.cluster_count, b.cluster_count);
            prop_assert_eq!(&a.deltas, &b.deltas, "step {} burst", a.step);
            prop_assert_eq!(a.mttc_before.mean_ticks(), b.mttc_before.mean_ticks());
            prop_assert_eq!(a.mttc_after.mean_ticks(), b.mttc_after.mean_ticks());
            prop_assert_eq!(a.lag_ticks, b.lag_ticks, "SweptWork lag is deterministic");
            prop_assert_eq!(a.defender_lag, b.defender_lag);
            prop_assert!(a.defender_lag.is_finite(), "defender-lag must be finite");
            prop_assert!(a.defender_lag >= 0.0, "defender-lag is a forfeited gain");
        }
    }

    /// `CveFeed` bursts are valid on the network they were generated for —
    /// `apply_batch` (all-or-nothing, staged) never rejects one — across
    /// all four topology shapes and as the network evolves burst over
    /// burst.
    #[test]
    fn cve_feed_bursts_never_reject(
        family in 0usize..4,
        size in 0usize..16,
        seed in 0u64..200,
        bursts in 1usize..10,
    ) {
        let g = family_instance(family, size, seed);
        let mut network = g.network;
        let mut feed = CveFeed::new(CveFeedConfig::default(), seed ^ 0xC5E);
        let protect = [HostId(0)];
        for round in 0..bursts {
            let burst = feed.next_burst(&network, &g.catalog, &g.similarity, &protect);
            prop_assert!(!burst.deltas.is_empty(), "a burst carries at least one delta");
            prop_assert!(burst.family.contains(&burst.advisory));
            let effect = network.apply_batch(&burst.deltas, &g.catalog);
            prop_assert!(
                effect.is_ok(),
                "burst {} rejected on family {}: {:?}",
                round,
                family,
                effect.err()
            );
        }
    }
}

/// Every structured family solves end-to-end through the single-network
/// engine *and* the zone-sharded engine on its default configuration, and
/// both committed assignments validate against the generated network.
#[test]
fn families_solve_through_both_engines() {
    let families: [(&str, GeneratedNetwork); 3] = [
        ("fat-tree", generate_fat_tree(&FatTreeConfig::default(), 7)),
        (
            "scale-free",
            generate_scale_free(
                &ScaleFreeConfig {
                    hosts: 48,
                    ..ScaleFreeConfig::default()
                },
                7,
            ),
        ),
        (
            "enterprise",
            generate_tiered_enterprise(
                &TieredEnterpriseConfig {
                    hosts_per_internal: 5,
                    ..TieredEnterpriseConfig::default()
                },
                7,
            ),
        ),
    ];
    for (name, g) in families {
        let mut single =
            DiversityEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        single
            .solve()
            .unwrap_or_else(|e| panic!("{name} solves through DiversityEngine: {e}"));
        single
            .assignment()
            .expect("solved")
            .validate(single.network())
            .unwrap_or_else(|e| panic!("{name} single assignment validates: {e}"));

        let mut sharded = ShardedEngine::new(g.network.clone(), g.catalog, g.similarity);
        assert!(
            sharded.partition().shards().len() > 1,
            "{name} zone labels give the sharded engine real shards"
        );
        sharded
            .solve()
            .unwrap_or_else(|e| panic!("{name} solves through ShardedEngine: {e}"));
        sharded
            .assignment()
            .expect("solved")
            .validate(sharded.network())
            .unwrap_or_else(|e| panic!("{name} sharded assignment validates: {e}"));
    }
}
