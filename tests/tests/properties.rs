//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;

use bayesnet::attack::{diversity_metric, AttackModelConfig};
use ics_diversity::optimizer::DiversityOptimizer;
use netmodel::strategies::{mono_assignment, random_assignment};
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
use netmodel::HostId;
use sim::mttc::{estimate_mttc, MttcOptions};
use sim::scenario::Scenario;

fn small_config() -> impl Strategy<Value = RandomNetworkConfig> {
    (4usize..20, 2usize..5, 1usize..4, 2usize..4).prop_map(|(hosts, degree, services, products)| {
        RandomNetworkConfig {
            hosts,
            mean_degree: degree,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer always produces a valid assignment whose edge
    /// similarity does not exceed the baselines'.
    #[test]
    fn optimizer_output_is_valid_and_no_worse_than_baselines(
        config in small_config(),
        seed in 0u64..1000,
    ) {
        let g = generate(&config, seed);
        let solved = DiversityOptimizer::new().optimize(&g.network, &g.similarity).unwrap();
        prop_assert!(solved.assignment().validate(&g.network).is_ok());
        let opt = solved.assignment().total_edge_similarity(&g.network, &g.similarity);
        let mono = mono_assignment(&g.network).total_edge_similarity(&g.network, &g.similarity);
        let rand = random_assignment(&g.network, seed)
            .total_edge_similarity(&g.network, &g.similarity);
        prop_assert!(opt <= mono + 1e-9, "optimal {opt} worse than mono {mono}");
        prop_assert!(opt <= rand + 1e-9, "optimal {opt} worse than random {rand}");
        // The certified bound brackets the objective.
        if let Some(lb) = solved.lower_bound() {
            prop_assert!(lb <= solved.objective() + 1e-9);
        }
    }

    /// dbn is a proper metric: in (0, 1], with P' independent of the
    /// assignment, and the optimal assignment scores at least the mono one.
    #[test]
    fn dbn_metric_properties(config in small_config(), seed in 0u64..1000) {
        let g = generate(&config, seed);
        let entry = HostId(0);
        let target = HostId((g.network.host_count() - 1) as u32);
        let cfg = AttackModelConfig::default();
        let solved = DiversityOptimizer::new()
            .optimize(&g.network, &g.similarity)
            .unwrap()
            .into_assignment();
        let mono = mono_assignment(&g.network);
        let m_opt = diversity_metric(&g.network, &solved, &g.similarity, entry, target, cfg)
            .unwrap();
        let m_mono = diversity_metric(&g.network, &mono, &g.similarity, entry, target, cfg)
            .unwrap();
        prop_assert!(m_opt.dbn > 0.0 && m_opt.dbn <= 1.0 + 1e-9);
        prop_assert!(m_mono.dbn > 0.0 && m_mono.dbn <= 1.0 + 1e-9);
        prop_assert!((m_opt.p_without_similarity - m_mono.p_without_similarity).abs() < 1e-12);
        prop_assert!(m_opt.dbn >= m_mono.dbn - 1e-9,
            "optimal dbn {} must be at least mono dbn {}", m_opt.dbn, m_mono.dbn);
    }

    /// The simulator respects structure: entry==target compromises at tick
    /// 0, and MTTC estimates are deterministic per seed.
    #[test]
    fn simulator_determinism_and_degeneracy(config in small_config(), seed in 0u64..1000) {
        let g = generate(&config, seed);
        let mono = mono_assignment(&g.network);
        let trivial = Scenario::new(HostId(0), HostId(0));
        let opts = MttcOptions { runs: 20, threads: 2, ..MttcOptions::default() };
        let est = estimate_mttc(&g.network, &mono, &g.similarity, &trivial, &opts);
        prop_assert_eq!(est.mean_ticks(), Some(0.0));
        let scenario = Scenario::new(HostId(0), HostId((g.network.host_count() - 1) as u32));
        let a = estimate_mttc(&g.network, &mono, &g.similarity, &scenario, &opts);
        let b = estimate_mttc(&g.network, &mono, &g.similarity, &scenario, &opts);
        prop_assert_eq!(a, b);
    }

    /// Generated instances are internally consistent: every candidate's
    /// service matches its slot, and similarity is symmetric in [0, 1].
    #[test]
    fn generated_instances_are_consistent(config in small_config(), seed in 0u64..1000) {
        let g = generate(&config, seed);
        for (_, host) in g.network.iter_hosts() {
            for inst in host.services() {
                prop_assert!(!inst.candidates().is_empty());
                for &p in inst.candidates() {
                    prop_assert_eq!(g.catalog.product(p).unwrap().service(), inst.service());
                }
            }
        }
        let n = g.catalog.product_count();
        for i in 0..n {
            for j in 0..n {
                let s = g.similarity.get(netmodel::ProductId(i as u16), netmodel::ProductId(j as u16));
                let t = g.similarity.get(netmodel::ProductId(j as u16), netmodel::ProductId(i as u16));
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - t).abs() < 1e-15);
            }
        }
    }
}
