//! Property tests for the sharded engine: for any zoned instance and any
//! valid delta stream, the sharded fixpoint must (a) keep the exact
//! objective-decomposition identity — the reported objective equals the
//! full single-network model's energy on the composed assignment — (b)
//! never lose to carrying the old assignment forward, (c) keep shard
//! sub-networks consistent with the master, and (d) never let a burst
//! confined to one zone mutate another shard's network. A deterministic
//! §VIII-size check pins the sharded-vs-single objective gap under 1%.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ics_diversity::energy::{build_energy, EnergyParams, SlotBinding};
use ics_diversity::engine::DiversityEngine;
use ics_diversity::shard::ShardedEngine;
use netmodel::assignment::Assignment;
use netmodel::constraints::ConstraintSet;
use netmodel::delta::{random_delta, NetworkDelta};
use netmodel::partition::partition_by_zone;
use netmodel::topology::{generate_zoned, GeneratedNetwork, TopologyKind, ZonedNetworkConfig};
use netmodel::HostId;

fn arb_config() -> impl Strategy<Value = ZonedNetworkConfig> {
    (2usize..4, 3usize..9, 1usize..3, 1usize..3, 2usize..4).prop_map(
        |(zones, hosts_per_zone, gateways, services, products)| ZonedNetworkConfig {
            zones,
            hosts_per_zone,
            gateway_links: gateways,
            mean_degree: 3,
            services,
            products_per_service: products,
            vendors_per_service: 2,
            topology: TopologyKind::Random,
        },
    )
}

/// A delta stream valid in order from `g.network`. `AddHost` deltas roam
/// freely over the zone lifecycle — an existing zone, a freshly named one
/// (the router creates its shard on the spot), or no zone at all: shards
/// are dynamic, so the stream needs no owner-pinning workaround.
fn valid_zoned_stream(g: &GeneratedNetwork, seed: u64, steps: usize) -> Vec<NetworkDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = g.network.clone();
    let zones: Vec<String> = {
        let p = partition_by_zone(&g.network);
        p.shards()
            .iter()
            .map(|s| s.zone.clone().expect("generated networks label every host"))
            .collect()
    };
    let mut deltas = Vec::with_capacity(steps);
    let mut fresh = 0usize;
    for _ in 0..steps {
        let mut delta = random_delta(&scratch, &g.catalog, &mut rng, &[HostId(0)]);
        if let NetworkDelta::AddHost { zone, .. } = &mut delta {
            *zone = match rng.gen_range(0..4u32) {
                0 => {
                    fresh += 1;
                    Some(format!("zone-fresh{fresh}"))
                }
                1 => None,
                _ => Some(zones[rng.gen_range(0..zones.len())].clone()),
            };
        }
        scratch
            .apply_delta(&delta, &g.catalog)
            .expect("generated deltas are valid");
        deltas.push(delta);
    }
    deltas
}

/// The full single-network model's objective of `assignment` — the
/// reference the sharded decomposition must reproduce exactly.
fn full_model_objective(g_like: &ShardedEngine, assignment: &Assignment) -> f64 {
    let energy = build_energy(
        g_like.network(),
        g_like.similarity(),
        &ConstraintSet::new(),
        EnergyParams::default(),
    )
    .expect("unconstrained instances are feasible");
    let mut labels = vec![0usize; energy.model().var_count()];
    for (host, host_slots) in energy.slots().iter().enumerate() {
        let row = assignment.products_at(HostId(host as u32));
        for (slot, binding) in host_slots.iter().enumerate() {
            if let SlotBinding::Variable { var, candidates } = binding {
                labels[var.0] = candidates
                    .iter()
                    .position(|p| Some(p) == row.get(slot))
                    .expect("assignment products are candidates");
            }
        }
    }
    energy.model().energy(&labels) + energy.base_energy()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid zoned delta stream: the sharded engine stays consistent
    /// with a reference network, its reported objective satisfies the
    /// decomposition identity at every step, and every step improves on
    /// carrying the previous assignment forward.
    #[test]
    fn sharded_stream_keeps_the_objective_identity(
        config in arb_config(),
        net_seed in 0u64..100,
        delta_seed in 0u64..100,
        steps in 1usize..8,
    ) {
        let g = generate_zoned(&config, net_seed);
        let deltas = valid_zoned_stream(&g, delta_seed, steps);
        let mut engine =
            ShardedEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        engine.solve().expect("cold solve");

        let mut reference = g.network.clone();
        for (i, delta) in deltas.iter().enumerate() {
            reference.apply_delta(delta, &g.catalog).expect("valid stream");
            let report = engine.apply(delta)
                .unwrap_or_else(|e| panic!("step {i} ({delta}): {e}"));
            prop_assert!(report.improvement().expect("warm step") >= -1e-9,
                "step {} regressed on carrying forward", i);
            // The master mirrors a plain sequential application.
            prop_assert_eq!(engine.network(), &reference);
            // Decomposition identity: reported objective == full model.
            let assignment = engine.assignment().expect("solved").clone();
            assignment.validate(engine.network()).expect("valid assignment");
            let full = full_model_objective(&engine, &assignment);
            prop_assert!((full - report.objective).abs() < 1e-9,
                "step {}: decomposition broke: full {} vs reported {}",
                i, full, report.objective);
            // Shard sub-networks stay consistent with the master: hosts
            // and links are conserved across the decomposition.
            let active_sum: usize = (0..engine.shard_count())
                .map(|s| engine.shard_network(s).active_host_count())
                .sum();
            prop_assert_eq!(active_sum, engine.network().active_host_count());
            let link_sum: usize = (0..engine.shard_count())
                .map(|s| engine.shard_network(s).link_count())
                .sum();
            prop_assert_eq!(
                link_sum + engine.partition().cross_links().len(),
                engine.network().link_count()
            );
        }
    }

    /// A burst routed to one zone never mutates any other shard's
    /// sub-network: not its revision, not its hosts, not its links.
    #[test]
    fn zone_confined_burst_never_mutates_other_shards(
        config in arb_config(),
        net_seed in 0u64..100,
        delta_seed in 0u64..100,
        burst in 1usize..6,
    ) {
        let g = generate_zoned(&config, net_seed);
        let mut engine =
            ShardedEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        engine.solve().expect("cold solve");

        // Slot deltas confined to zone 0's hosts, each generated against
        // the state after its predecessors so the burst is always valid.
        let mut rng = StdRng::seed_from_u64(delta_seed);
        let zone0: Vec<HostId> = (0..config.hosts_per_zone as u32).map(HostId).collect();
        let mut scratch = engine.network().clone();
        let mut deltas = Vec::new();
        for _ in 0..burst {
            let host = zone0[rng.gen_range(0..zone0.len())];
            let h = scratch.host(host).expect("zone-0 host");
            let slot = rng.gen_range(0..h.services().len());
            let inst = &h.services()[slot];
            let service = inst.service();
            let delta = if inst.candidates().len() > 1 && rng.gen_bool(0.5) {
                let p = inst.candidates()[rng.gen_range(0..inst.candidates().len())];
                NetworkDelta::fix_slot(host, service, p)
            } else {
                NetworkDelta::unfix_slot(host, service, g.catalog.products_of(service).to_vec())
            };
            scratch
                .apply_delta(&delta, &g.catalog)
                .expect("slot delta valid against its staging state");
            deltas.push(delta);
        }

        let others: Vec<_> = (1..engine.shard_count())
            .map(|s| engine.shard_network(s).clone())
            .collect();
        let report = engine.apply_batch(&deltas).expect("confined burst applies");
        prop_assert!(report.shards_touched.iter().all(|&s| s == 0),
            "burst leaked outside shard 0: {:?}", report.shards_touched);
        for (i, before) in others.iter().enumerate() {
            let s = i + 1;
            prop_assert_eq!(engine.shard_network(s), before,
                "shard {} interior was mutated by a zone-0 burst", s);
            prop_assert!(report.shard_reports[s].is_none());
        }
        engine
            .assignment()
            .expect("solved")
            .validate(engine.network())
            .expect("valid assignment");
    }
}

/// The §VIII-size acceptance check: on a 240-host, 2-zone instance the
/// sharded fixpoint objective is within 1% of the single-engine solve
/// (it is usually *equal or better*, since both end in local optima of the
/// same model).
#[test]
fn sharded_objective_within_one_percent_of_single_engine_at_scale() {
    for (zones, seed) in [(2usize, 7u64), (2, 21), (4, 7)] {
        let g = generate_zoned(
            &ZonedNetworkConfig {
                zones,
                hosts_per_zone: 240 / zones,
                gateway_links: 2,
                mean_degree: 8,
                services: 4,
                products_per_service: 4,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            seed,
        );
        let mut sharded =
            ShardedEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        let mut single = DiversityEngine::new(g.network, g.catalog, g.similarity);
        let sharded_report = sharded.solve().expect("sharded solve");
        let single_report = single.solve().expect("single solve");
        let gap = (sharded_report.objective - single_report.objective_after)
            / single_report.objective_after.abs().max(1e-9);
        assert!(
            gap < 0.01,
            "{zones} zones seed {seed}: sharded {:.4} vs single {:.4} (gap {:.2}%)",
            sharded_report.objective,
            single_report.objective_after,
            100.0 * gap
        );
        // And the identity holds at scale too.
        let full = full_model_objective(&sharded, sharded.assignment().expect("solved"));
        assert!((full - sharded_report.objective).abs() < 1e-9);
    }
}
