//! Cross-solver validation on generated instances: the exact eliminator is
//! the oracle; TRW-S must certify or land close; baselines must be ordered.

use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
use mrf::elimination::EliminationOptions;
use mrf::trws::TrwsOptions;
use netmodel::strategies::{mono_assignment, random_assignment};
use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};

fn config(hosts: usize, degree: usize, topology: TopologyKind) -> RandomNetworkConfig {
    RandomNetworkConfig {
        hosts,
        mean_degree: degree,
        services: 2,
        products_per_service: 3,
        vendors_per_service: 2,
        topology,
    }
}

#[test]
fn trws_matches_exact_on_trees() {
    for seed in 0..6 {
        let g = generate(&config(40, 0, TopologyKind::Tree), seed);
        let trws = DiversityOptimizer::new()
            .optimize(&g.network, &g.similarity)
            .unwrap();
        let exact = DiversityOptimizer::new()
            .with_solver(SolverKind::Exact(EliminationOptions::default()))
            .optimize(&g.network, &g.similarity)
            .unwrap();
        assert!(
            (trws.objective() - exact.objective()).abs() < 1e-6,
            "seed {seed}: trws {} vs exact {}",
            trws.objective(),
            exact.objective()
        );
        // TRW-S is provably exact on trees: the gap must close.
        assert!(
            trws.gap().unwrap() < 1e-6,
            "seed {seed}: gap {:?}",
            trws.gap()
        );
    }
}

#[test]
fn trws_is_near_exact_on_sparse_loopy_networks() {
    let mut total_excess = 0.0;
    for seed in 0..5 {
        let g = generate(&config(30, 4, TopologyKind::Random), seed);
        let trws = DiversityOptimizer::new()
            .optimize(&g.network, &g.similarity)
            .unwrap();
        let exact = DiversityOptimizer::new()
            .with_solver(SolverKind::Exact(EliminationOptions::default()))
            .optimize(&g.network, &g.similarity)
            .unwrap();
        assert!(trws.objective() >= exact.objective() - 1e-9);
        // Exact lower bound must also bound the TRW-S bound's claim.
        assert!(trws.lower_bound().unwrap() <= exact.objective() + 1e-6);
        total_excess += (trws.objective() - exact.objective()) / exact.objective().abs().max(1.0);
    }
    let mean_excess = total_excess / 5.0;
    // Qualitative near-exactness; the margin absorbs instance-generator
    // drift across rand implementations (measured ≈ 0.11 on this stream).
    assert!(
        mean_excess < 0.15,
        "TRW-S mean relative excess {mean_excess} too large over 5 seeds"
    );
}

#[test]
fn optimal_dominates_baselines_across_topologies() {
    for topology in [
        TopologyKind::Random,
        TopologyKind::ScaleFree,
        TopologyKind::Ring,
    ] {
        let g = generate(&config(60, 6, topology), 3);
        let optimal = DiversityOptimizer::new()
            .optimize(&g.network, &g.similarity)
            .unwrap();
        let opt_sim = optimal
            .assignment()
            .total_edge_similarity(&g.network, &g.similarity);
        let rand_sim =
            random_assignment(&g.network, 9).total_edge_similarity(&g.network, &g.similarity);
        let mono_sim = mono_assignment(&g.network).total_edge_similarity(&g.network, &g.similarity);
        assert!(
            opt_sim < rand_sim && rand_sim < mono_sim,
            "{topology:?}: {opt_sim} < {rand_sim} < {mono_sim} violated"
        );
    }
}

#[test]
fn iteration_budget_trades_quality_monotonically() {
    let g = generate(&config(80, 8, TopologyKind::Random), 11);
    let run = |iters: usize| {
        DiversityOptimizer::new()
            .with_solver(SolverKind::Trws(TrwsOptions {
                max_iterations: iters,
                patience: usize::MAX,
                ..TrwsOptions::default()
            }))
            .with_refinement(None)
            .optimize(&g.network, &g.similarity)
            .unwrap()
    };
    let short = run(1);
    let long = run(40);
    // More iterations: bound can only be as good or better.
    assert!(long.lower_bound().unwrap() >= short.lower_bound().unwrap() - 1e-9);
    assert!(long.objective() <= short.objective() + 1e-9);
}

#[test]
fn refinement_never_hurts() {
    for seed in 0..4 {
        let g = generate(&config(50, 6, TopologyKind::Random), seed);
        let with = DiversityOptimizer::new()
            .optimize(&g.network, &g.similarity)
            .unwrap();
        let without = DiversityOptimizer::new()
            .with_refinement(None)
            .optimize(&g.network, &g.similarity)
            .unwrap();
        assert!(with.objective() <= without.objective() + 1e-9);
    }
}
