//! Integration test package; see `tests/` for the tests.
