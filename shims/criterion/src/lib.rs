//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Statistics are
//! simple — median of per-sample mean iteration times — but deterministic
//! in shape and cheap, which is what an offline CI wants. Set
//! `CRITERION_SHIM_SAMPLES` to override the default sample count (10).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-implements `criterion::black_box` on top of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id rendering as `name/parameter`.
    pub fn new<N: Into<String>, P: fmt::Display>(name: N, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run once to size the sample batches.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~10ms per sample, capped to keep totals bounded.
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let mut means: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            means.push(start.elapsed() / per_sample as u32);
        }
        means.sort_unstable();
        self.result = Some(means[means.len() / 2]);
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn report(name: &str, result: Option<Duration>) {
    match result {
        Some(t) => println!("bench: {name:<50} {t:>12.3?}/iter"),
        None => println!("bench: {name:<50} (no measurement)"),
    }
}

/// The benchmark manager.
pub struct Criterion {
    samples: usize,
    measurements: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            samples: default_samples(),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        report(name, b.result);
        self.record(name, b.result);
        self
    }

    /// Every `(name, median per-iteration time)` measured through this
    /// manager so far, in run order — lets benches export machine-readable
    /// results (`BENCH_*.json`) on top of the printed report. Real criterion
    /// persists measurements itself; the shim exposes them instead.
    pub fn measurements(&self) -> &[(String, Duration)] {
        &self.measurements
    }

    fn record(&mut self, name: &str, result: Option<Duration>) {
        if let Some(t) = result {
            self.measurements.push((name.to_string(), t));
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id);
        report(&name, b.result);
        self.criterion.record(&name, b.result);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        let name = format!("{}/{name}", self.name);
        report(&name, b.result);
        self.criterion.record(&name, b.result);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            samples: 3,
            measurements: Vec::new(),
        };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        assert!(ran > 3, "routine should run at least once per sample");
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion {
            samples: 2,
            measurements: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(42), &7usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
        assert_eq!(BenchmarkId::new("x", 3).to_string(), "x/3");
    }
}
