//! Offline shim for `serde`.
//!
//! Re-exports the inert derive macros and declares the two marker traits so
//! that `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! machinery is provided; the one module that genuinely persists data
//! (`nvd::json`) uses a hand-rolled JSON codec instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
