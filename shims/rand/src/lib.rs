//! Offline shim for `rand` (0.8-flavoured API subset).
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`]'s `shuffle`/`choose` — on top of a deterministic
//! xoshiro256** generator seeded through SplitMix64 (the same construction
//! the real `rand` uses for `seed_from_u64`). Streams differ from upstream
//! `StdRng` (which is ChaCha12), but every consumer in this workspace only
//! relies on determinism per seed, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

/// Marker for types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Converts a `u64` to a float in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u16, u32, u64, usize, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability_grossly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(original.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
