//! Offline shim for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be vendored. The workspace only *annotates* types with
//! `#[derive(Serialize, Deserialize)]` (persistence is hand-rolled where it
//! is actually needed, see `nvd::json`), so inert derives that accept the
//! `#[serde(...)]` helper attribute and expand to nothing are sufficient.

use proc_macro::TokenStream;

/// Inert stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
