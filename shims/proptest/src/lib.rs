//! Offline shim for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use — the [`proptest!`] macro, [`Strategy`] with `prop_map`, range /
//! tuple / collection / option / regex-string strategies, `prop_oneof!`,
//! `Just`, `any::<bool>()` and the `prop_assert*` family — backed by plain
//! seeded random generation. **No shrinking**: a failing case reports its
//! inputs' debug representation and the deterministic attempt number so it
//! can be replayed by re-running the test.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run-time configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with fresh
    /// ones and does not count as a failure.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A generator of test values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed_dyn<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// The [`Strategy::prop_map`] adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    members: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!members.is_empty(), "prop_oneof! needs at least one member");
        Union { members }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.members.len());
        self.members[pick].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

numeric_range_strategy!(u16, u32, u64, usize, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Fair coin strategy backing `any::<bool>()`.
#[derive(Debug, Clone, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategies generating from a regex-like pattern string.
///
/// Supports the subset used in this workspace: literal characters,
/// character classes (`[a-z0-9_.]` with ranges and literals) and the
/// quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (unbounded repeats cap at 8).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let reps = rng.gen_range(*lo..=*hi);
            for _ in 0..reps {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "bad range {a}-{b} in pattern {pattern:?}");
                        set.extend((a as u32..=b as u32).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        atoms.push((set, lo, hi));
    }
    atoms
}

/// Collection sizes: an exact count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// `Vec` strategy with a size (exact or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` strategy; duplicates may make the set smaller than the
    /// drawn size (as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (subset of `proptest::option`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Yields `None` roughly a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Deterministic per-(test, attempt) RNG used by the [`proptest!`] macro.
#[doc(hidden)]
pub fn __rng_for(test_name: &str, attempt: usize) -> TestRng {
    // FNV-1a over the fully qualified test name, mixed with the attempt.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block is
/// run for the configured number of cases with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.cases as usize;
            let mut __passed = 0usize;
            let mut __attempt = 0usize;
            while __passed < __cases {
                __attempt += 1;
                assert!(
                    __attempt <= __cases * 20 + 100,
                    "proptest: too many rejected cases ({} passed of {} wanted)",
                    __passed,
                    __cases
                );
                let mut __rng = $crate::__rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at attempt {}: {}",
                            stringify!($name),
                            __attempt,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_dyn($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn regex_lite_generates_matching_strings() {
        let mut rng = super::__rng_for("regex", 1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_.]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple + map + range strategies compose.
        #[test]
        fn composed_strategies(v in super::collection::vec(0usize..10, 1..8),
                               flag in any::<bool>(),
                               x in (0u32..5, 1u32..3).prop_map(|(a, b)| a + b)) {
            prop_assert!(v.len() < 8 && !v.is_empty());
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!((1..7).contains(&x), "x = {x}");
            let _ = flag;
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        /// oneof picks only listed values.
        #[test]
        fn oneof_picks_members(v in prop_oneof![Just(1u8), Just(3u8), Just(5u8)]) {
            prop_assert!([1u8, 3, 5].contains(&v));
        }

        /// option::of produces both variants over enough cases.
        #[test]
        fn option_of_generates(o in super::option::of(0u32..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }
}
