//! Exact inference by variable elimination.
//!
//! Computes `P(query | evidence)` by reducing all CPT factors with the
//! evidence, then summing out the remaining non-query variables in a
//! **min-fill** order (the variable whose elimination creates the fewest new
//! interactions goes first), multiplying only the factors that mention the
//! eliminated variable.

use std::collections::{BTreeMap, BTreeSet};

use crate::factor::Factor;
use crate::graph::{BayesNet, NodeId};
use crate::{Error, Result};

/// An exact inference engine bound to a network.
#[derive(Debug, Clone)]
pub struct VariableElimination<'a> {
    bn: &'a BayesNet,
}

impl<'a> VariableElimination<'a> {
    /// Creates an engine for `bn`.
    pub fn new(bn: &'a BayesNet) -> VariableElimination<'a> {
        VariableElimination { bn }
    }

    /// The posterior distribution `P(query | evidence)`.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] — query or evidence node out of range.
    /// * [`Error::BadValue`] — evidence value out of range.
    /// * [`Error::DuplicateEvidence`] — a node appears twice in evidence.
    ///
    /// Returns an all-zero vector when the evidence has probability zero.
    pub fn query(&self, query: NodeId, evidence: &[(NodeId, usize)]) -> Result<Vec<f64>> {
        self.bn.node(query)?;
        let mut seen = BTreeSet::new();
        for &(node, value) in evidence {
            let n = self.bn.node(node)?;
            if value >= n.cardinality() {
                return Err(Error::BadValue { node, value });
            }
            if !seen.insert(node) {
                return Err(Error::DuplicateEvidence(node));
            }
        }
        // If the query is itself evidence, the posterior is degenerate.
        if let Some(&(_, v)) = evidence.iter().find(|&&(n, _)| n == query) {
            let card = self.bn.node(query)?.cardinality();
            let mut out = vec![0.0; card];
            out[v] = 1.0;
            return Ok(out);
        }

        // Reduce every CPT factor with the evidence.
        let mut factors: Vec<Factor> = self
            .bn
            .iter()
            .map(|(id, _)| {
                let mut f = Factor::from_cpt(self.bn, id);
                for &(node, value) in evidence {
                    f = f.reduce(node, value);
                }
                f
            })
            .collect();

        // Eliminate everything but the query, min-fill first.
        let mut to_eliminate: BTreeSet<NodeId> = self
            .bn
            .iter()
            .map(|(id, _)| id)
            .filter(|id| *id != query && !seen.contains(id))
            .collect();
        while !to_eliminate.is_empty() {
            let var = self.pick_min_fill(&factors, &to_eliminate);
            to_eliminate.remove(&var);
            let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars().contains(&var));
            let mut merged = Factor::unit();
            for f in &mentioning {
                merged = merged.product(f);
            }
            factors = rest;
            factors.push(merged.sum_out(var));
        }

        let mut joint = Factor::unit();
        for f in &factors {
            joint = joint.product(f);
        }
        // joint is now over {query} (or scalar if query is disconnected).
        let card = self.bn.node(query)?.cardinality();
        let mut out = vec![0.0; card];
        if joint.is_scalar() {
            return Ok(out);
        }
        let normalized = joint.normalized();
        for (v, slot) in out.iter_mut().enumerate() {
            *slot = normalized.value_at(&[v]);
        }
        Ok(out)
    }

    /// `P(query = value | evidence)`.
    ///
    /// # Errors
    ///
    /// See [`VariableElimination::query`]; additionally [`Error::BadValue`]
    /// if `value` is out of range for `query`.
    pub fn probability(
        &self,
        query: NodeId,
        value: usize,
        evidence: &[(NodeId, usize)],
    ) -> Result<f64> {
        let dist = self.query(query, evidence)?;
        dist.get(value)
            .copied()
            .ok_or(Error::BadValue { node: query, value })
    }

    /// Min-fill heuristic: pick the eliminable variable whose neighborhood
    /// (union of co-occurring variables across factors) is smallest.
    fn pick_min_fill(&self, factors: &[Factor], candidates: &BTreeSet<NodeId>) -> NodeId {
        let mut neighbors: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for f in factors {
            for &v in f.vars() {
                if candidates.contains(&v) {
                    let entry = neighbors.entry(v).or_default();
                    for &w in f.vars() {
                        if w != v {
                            entry.insert(w);
                        }
                    }
                }
            }
        }
        candidates
            .iter()
            .copied()
            .min_by_key(|v| neighbors.get(v).map(BTreeSet::len).unwrap_or(0))
            .expect("candidates is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cpt;

    /// Brute-force joint enumeration oracle.
    fn enumerate(bn: &BayesNet, query: NodeId, evidence: &[(NodeId, usize)]) -> Vec<f64> {
        let cards = bn.cardinalities();
        let card_q = cards[query.0];
        let mut out = vec![0.0; card_q];
        let total: usize = cards.iter().product();
        let mut assignment = vec![0usize; cards.len()];
        for _ in 0..total {
            if evidence.iter().all(|&(n, v)| assignment[n.0] == v) {
                out[assignment[query.0]] += bn.joint_probability(&assignment);
            }
            for p in (0..assignment.len()).rev() {
                assignment[p] += 1;
                if assignment[p] < cards[p] {
                    break;
                }
                assignment[p] = 0;
            }
        }
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            for o in &mut out {
                *o /= sum;
            }
        }
        out
    }

    fn sprinkler() -> (BayesNet, NodeId, NodeId, NodeId) {
        let mut bn = BayesNet::new();
        let rain = bn
            .add_node("rain", 2, vec![], Cpt::tabular(vec![0.8, 0.2]))
            .unwrap();
        let sprinkler = bn
            .add_node(
                "sprinkler",
                2,
                vec![rain],
                Cpt::tabular(vec![0.6, 0.4, 0.99, 0.01]),
            )
            .unwrap();
        let wet = bn
            .add_node(
                "wet",
                2,
                vec![sprinkler, rain],
                Cpt::tabular(vec![1.0, 0.0, 0.2, 0.8, 0.1, 0.9, 0.01, 0.99]),
            )
            .unwrap();
        (bn, rain, sprinkler, wet)
    }

    #[test]
    fn matches_enumeration_on_sprinkler() {
        let (bn, rain, sprinkler, wet) = sprinkler();
        let ve = VariableElimination::new(&bn);
        for (q, ev) in [
            (wet, vec![]),
            (rain, vec![(wet, 1)]),
            (sprinkler, vec![(wet, 1)]),
            (rain, vec![(wet, 1), (sprinkler, 0)]),
            (wet, vec![(rain, 1)]),
        ] {
            let exact = ve.query(q, &ev).unwrap();
            let oracle = enumerate(&bn, q, &ev);
            for (a, b) in exact.iter().zip(&oracle) {
                assert!((a - b).abs() < 1e-10, "ve {exact:?} vs oracle {oracle:?}");
            }
        }
    }

    #[test]
    fn explaining_away() {
        // Observing the sprinkler on reduces the posterior of rain.
        let (bn, rain, sprinkler, wet) = sprinkler();
        let ve = VariableElimination::new(&bn);
        let p_rain_given_wet = ve.probability(rain, 1, &[(wet, 1)]).unwrap();
        let p_rain_given_wet_and_sprinkler = ve
            .probability(rain, 1, &[(wet, 1), (sprinkler, 1)])
            .unwrap();
        assert!(p_rain_given_wet_and_sprinkler < p_rain_given_wet);
    }

    #[test]
    fn query_equal_to_evidence_is_degenerate() {
        let (bn, rain, _, _) = sprinkler();
        let ve = VariableElimination::new(&bn);
        assert_eq!(ve.query(rain, &[(rain, 1)]).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn noisy_or_chain_propagation() {
        // entry -> a -> b with noisy-OR weights 0.5 and 0.4:
        // P(b) = 0.5 * 0.4 = 0.2.
        let mut bn = BayesNet::new();
        let entry = bn
            .add_node("entry", 2, vec![], Cpt::tabular(vec![0.0, 1.0]))
            .unwrap();
        let a = bn
            .add_node("a", 2, vec![entry], Cpt::noisy_or(0.0, vec![0.5]))
            .unwrap();
        let b = bn
            .add_node("b", 2, vec![a], Cpt::noisy_or(0.0, vec![0.4]))
            .unwrap();
        let ve = VariableElimination::new(&bn);
        assert!((ve.probability(a, 1, &[]).unwrap() - 0.5).abs() < 1e-12);
        assert!((ve.probability(b, 1, &[]).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn diamond_paths_combine_by_noisy_or() {
        // entry splits into two paths that rejoin: P(target) combines them.
        let mut bn = BayesNet::new();
        let entry = bn
            .add_node("entry", 2, vec![], Cpt::tabular(vec![0.0, 1.0]))
            .unwrap();
        let left = bn
            .add_node("l", 2, vec![entry], Cpt::noisy_or(0.0, vec![0.5]))
            .unwrap();
        let right = bn
            .add_node("r", 2, vec![entry], Cpt::noisy_or(0.0, vec![0.5]))
            .unwrap();
        let target = bn
            .add_node(
                "t",
                2,
                vec![left, right],
                Cpt::noisy_or(0.0, vec![1.0, 1.0]),
            )
            .unwrap();
        let ve = VariableElimination::new(&bn);
        // P(t) = 1 - P(neither path fires) = 1 - 0.5*0.5 = 0.75.
        assert!((ve.probability(target, 1, &[]).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        let (bn, rain, _, wet) = sprinkler();
        let ve = VariableElimination::new(&bn);
        assert!(matches!(
            ve.query(NodeId(99), &[]),
            Err(Error::UnknownNode(_))
        ));
        assert!(matches!(
            ve.query(rain, &[(wet, 7)]),
            Err(Error::BadValue { .. })
        ));
        assert!(matches!(
            ve.query(rain, &[(wet, 1), (wet, 0)]),
            Err(Error::DuplicateEvidence(_))
        ));
    }

    #[test]
    fn larger_random_network_matches_enumeration() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let mut bn = BayesNet::new();
            let mut ids: Vec<NodeId> = Vec::new();
            for i in 0..8 {
                // Up to 2 random parents among earlier nodes.
                let mut parents = Vec::new();
                for &cand in ids.iter() {
                    if parents.len() < 2 && rng.gen_bool(0.4) {
                        parents.push(cand);
                    }
                }
                let rows = 1usize << parents.len();
                let mut probs = Vec::with_capacity(rows * 2);
                for _ in 0..rows {
                    let p: f64 = rng.gen_range(0.05..0.95);
                    probs.push(1.0 - p);
                    probs.push(p);
                }
                let id = bn
                    .add_node(&format!("n{i}"), 2, parents, Cpt::tabular(probs))
                    .unwrap();
                ids.push(id);
            }
            let ve = VariableElimination::new(&bn);
            let q = ids[7];
            let ev = vec![(ids[0], 1usize)];
            let exact = ve.query(q, &ev).unwrap();
            let oracle = enumerate(&bn, q, &ev);
            for (a, b) in exact.iter().zip(&oracle) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
