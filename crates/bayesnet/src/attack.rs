//! The attack Bayesian network and the `dbn` diversity metric (paper §VI).
//!
//! Construction: the undirected host network is unrolled into a DAG by
//! breadth-first layering from the attack entry host (edges point from lower
//! `(layer, id)` to higher — the standard acyclic unrolling of attack
//! propagation; "backward" moves away from the entry are dropped). Each host
//! becomes a binary node (clean/compromised):
//!
//! * the entry host is compromised with probability 1;
//! * every other host is a **noisy-OR** over its incoming attack edges,
//!   where the per-edge trigger probability models one exploit crossing the
//!   edge.
//!
//! Per-edge infection rate (paper §VI): the attacker holds one zero-day per
//! service type and, when several services are exploitable across an edge,
//! "evenly chooses one to use", so the edge rate is the *mean* over shared
//! services of the per-service success. With similarity information the
//! per-service success is
//! `baseline_rate + (1 − baseline_rate) · exploit_success · sim(α(u,s), α(v,s))`
//! — similarity *raises* infection above the generic zero-day rate, and even
//! fully dissimilar products retain the residual `baseline_rate` (a fresh
//! zero-day can still land). Without similarity information (the `P'`
//! numerator of Definition 6) the per-service success is exactly
//! `baseline_rate`, making `P'` independent of the assignment — as the
//! paper's Table V shows — and guaranteeing `P ≥ P'`, hence `dbn ≤ 1`,
//! matching the paper's "the diversity metric dbn is always less than 1.0".
//!
//! The metric: `dbn = P'(target) / P(target)`, always in `(0, 1]` when the
//! deployed products are at least as exploitable as the baseline; greater
//! values mean a more diverse (more resilient) deployment.

use netmodel::assignment::Assignment;
use netmodel::catalog::ProductSimilarity;
use netmodel::network::Network;
use netmodel::HostId;

use crate::graph::{BayesNet, Cpt, NodeId};
use crate::ve::VariableElimination;
use crate::{Error, Result};

/// How multiple feasible exploits across one edge combine into an edge rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploitChoice {
    /// "Attackers evenly choose one to use" (paper §VI): the mean of the
    /// per-service success probabilities.
    #[default]
    Even,
    /// The sophisticated attacker of the motivational example and §VII-C2:
    /// always the highest-success exploit (the max).
    Best,
}

/// Parameters of the attack model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackModelConfig {
    /// Success probability of re-using an exploit across identical products
    /// (`sim = 1`); per-service success scales linearly with similarity.
    pub exploit_success: f64,
    /// The average zero-day success rate used when similarity information is
    /// ignored (the paper's `Pavg`).
    pub baseline_rate: f64,
    /// Exploit aggregation across shared services.
    pub choice: ExploitChoice,
}

impl Default for AttackModelConfig {
    /// Defaults calibrated on the paper's case study so that the Table V
    /// reproduction lands in the published regime (`log10 P' ≈ -3.23` vs
    /// the paper's `-3.151`, with the published strict dbn ordering); see
    /// EXPERIMENTS.md.
    fn default() -> AttackModelConfig {
        AttackModelConfig {
            exploit_success: 0.15,
            baseline_rate: 0.15,
            choice: ExploitChoice::Even,
        }
    }
}

/// The assembled attack BN, with the host→node mapping.
#[derive(Debug, Clone)]
pub struct AttackBn {
    bn: BayesNet,
    node_of_host: Vec<Option<NodeId>>,
    entry: HostId,
}

impl AttackBn {
    /// Builds the attack BN for `network` with similarity-aware edge rates
    /// derived from `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range for the network.
    pub fn with_similarity(
        network: &Network,
        assignment: &Assignment,
        similarity: &ProductSimilarity,
        entry: HostId,
        config: AttackModelConfig,
    ) -> AttackBn {
        build(network, Some((assignment, similarity)), entry, config)
    }

    /// Builds the baseline attack BN (`P'` of Definition 6): every edge that
    /// shares at least one service carries the constant `baseline_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range for the network.
    pub fn without_similarity(
        network: &Network,
        entry: HostId,
        config: AttackModelConfig,
    ) -> AttackBn {
        build(network, None, entry, config)
    }

    /// The underlying Bayesian network.
    pub fn bayes_net(&self) -> &BayesNet {
        &self.bn
    }

    /// The BN node of a host, if the host is reachable from the entry.
    pub fn node_of(&self, host: HostId) -> Option<NodeId> {
        self.node_of_host.get(host.index()).copied().flatten()
    }

    /// The entry host.
    pub fn entry(&self) -> HostId {
        self.entry
    }

    /// `P(host compromised)` by exact variable elimination.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostUnreachable`] if the host is not connected to
    /// the entry.
    pub fn compromise_probability(&self, host: HostId) -> Result<f64> {
        let node = self
            .node_of(host)
            .ok_or(Error::HostUnreachable { host: host.index() })?;
        VariableElimination::new(&self.bn).probability(node, 1, &[])
    }
}

/// The paper's Definition 6, evaluated for one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityMetric {
    /// `P(target)` with vulnerability similarity taken into account.
    pub p_with_similarity: f64,
    /// `P'(target)` with the constant baseline rate (assignment-independent).
    pub p_without_similarity: f64,
    /// `dbn = P' / P`.
    pub dbn: f64,
}

impl DiversityMetric {
    /// `log10 P(target)` (the form Table V reports).
    pub fn log_p_with(&self) -> f64 {
        self.p_with_similarity.log10()
    }

    /// `log10 P'(target)`.
    pub fn log_p_without(&self) -> f64 {
        self.p_without_similarity.log10()
    }
}

/// Computes the BN-based diversity metric `dbn` for an assignment.
///
/// # Errors
///
/// Returns [`Error::HostUnreachable`] if `target` is not reachable from
/// `entry`, and [`Error::DegenerateMetric`] if `P(target)` is zero (the
/// ratio is undefined; this happens only when every path is fully cut).
pub fn diversity_metric(
    network: &Network,
    assignment: &Assignment,
    similarity: &ProductSimilarity,
    entry: HostId,
    target: HostId,
    config: AttackModelConfig,
) -> Result<DiversityMetric> {
    let with = AttackBn::with_similarity(network, assignment, similarity, entry, config);
    let without = AttackBn::without_similarity(network, entry, config);
    let p_with = with.compromise_probability(target)?;
    let p_without = without.compromise_probability(target)?;
    if p_with <= 0.0 {
        return Err(Error::DegenerateMetric);
    }
    Ok(DiversityMetric {
        p_with_similarity: p_with,
        p_without_similarity: p_without,
        dbn: p_without / p_with,
    })
}

fn build(
    network: &Network,
    with_similarity: Option<(&Assignment, &ProductSimilarity)>,
    entry: HostId,
    config: AttackModelConfig,
) -> AttackBn {
    assert!(
        entry.index() < network.host_count(),
        "entry host out of range"
    );
    // BFS layering from the entry.
    let n = network.host_count();
    let mut layer = vec![usize::MAX; n];
    layer[entry.index()] = 0;
    let mut queue = std::collections::VecDeque::from([entry]);
    let mut order = Vec::new();
    while let Some(h) = queue.pop_front() {
        order.push(h);
        for &nb in network.neighbors(h) {
            if layer[nb.index()] == usize::MAX {
                layer[nb.index()] = layer[h.index()] + 1;
                queue.push_back(nb);
            }
        }
    }
    // Topological order: (layer, id). BFS emits non-decreasing layers, but
    // ties within a layer must be id-ordered for the edge orientation below.
    order.sort_by_key(|h| (layer[h.index()], h.index()));

    let mut bn = BayesNet::new();
    let mut node_of_host: Vec<Option<NodeId>> = vec![None; n];
    for &h in &order {
        let name = network.host(h).expect("bfs host exists").name().to_owned();
        if h == entry {
            let id = bn
                .add_node(&name, 2, vec![], Cpt::tabular(vec![0.0, 1.0]))
                .expect("entry node is valid");
            node_of_host[h.index()] = Some(id);
            continue;
        }
        // Parents: neighbors with smaller (layer, id).
        let mut parents = Vec::new();
        let mut weights = Vec::new();
        for &nb in network.neighbors(h) {
            let key_nb = (layer[nb.index()], nb.index());
            let key_h = (layer[h.index()], h.index());
            if key_nb < key_h {
                if let Some(pid) = node_of_host[nb.index()] {
                    let w = edge_rate(network, with_similarity, nb, h, config);
                    if w > 0.0 {
                        parents.push(pid);
                        weights.push(w);
                    }
                }
            }
        }
        let id = bn
            .add_node(&name, 2, parents, Cpt::noisy_or(0.0, weights))
            .expect("host node is valid");
        node_of_host[h.index()] = Some(id);
    }
    AttackBn {
        bn,
        node_of_host,
        entry,
    }
}

/// The per-edge infection rate (module docs).
fn edge_rate(
    network: &Network,
    with_similarity: Option<(&Assignment, &ProductSimilarity)>,
    from: HostId,
    to: HostId,
    config: AttackModelConfig,
) -> f64 {
    let host_from = network.host(from).expect("edge host exists");
    let mut total = 0.0;
    let mut best: f64 = 0.0;
    let mut shared = 0usize;
    for inst in host_from.services() {
        let q = match with_similarity {
            Some((assignment, similarity)) => {
                let pa = assignment.product_for(network, from, inst.service());
                let pb = assignment.product_for(network, to, inst.service());
                match (pa, pb) {
                    (Some(pa), Some(pb)) => {
                        config.baseline_rate
                            + (1.0 - config.baseline_rate)
                                * config.exploit_success
                                * similarity.get(pa, pb)
                    }
                    _ => continue,
                }
            }
            None => {
                let to_host = network.host(to).expect("edge host exists");
                if to_host.service_slot(inst.service()).is_none() {
                    continue;
                }
                config.baseline_rate
            }
        };
        shared += 1;
        total += q;
        best = best.max(q);
    }
    if shared == 0 {
        return 0.0;
    }
    match config.choice {
        ExploitChoice::Even => (total / shared as f64).clamp(0.0, 1.0),
        ExploitChoice::Best => best.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::catalog::Catalog;
    use netmodel::network::NetworkBuilder;
    use netmodel::strategies::{mono_assignment, random_assignment};
    use netmodel::ProductId;

    /// A 3-host line entry—mid—target, one service, two products with
    /// similarity 0.5.
    fn line() -> (Network, Catalog, ProductSimilarity) {
        let mut c = Catalog::new();
        let s = c.add_service("os");
        let p0 = c.add_product("p0", s).unwrap();
        let p1 = c.add_product("p1", s).unwrap();
        let mut b = NetworkBuilder::new();
        let h0 = b.add_host("entry");
        let h1 = b.add_host("mid");
        let h2 = b.add_host("target");
        for h in [h0, h1, h2] {
            b.add_service(h, s, vec![p0, p1]).unwrap();
        }
        b.add_link(h0, h1).unwrap();
        b.add_link(h1, h2).unwrap();
        let net = b.build(&c).unwrap();
        let sim = ProductSimilarity::from_dense(2, vec![1.0, 0.5, 0.5, 1.0]);
        (net, c, sim)
    }

    fn cfg() -> AttackModelConfig {
        AttackModelConfig {
            exploit_success: 0.8,
            baseline_rate: 0.1,
            ..AttackModelConfig::default()
        }
    }

    #[test]
    fn line_probabilities_are_products() {
        let (net, _, sim) = line();
        // Alternating products: both edges have sim 0.5 ->
        // rate 0.1 + 0.9*0.8*0.5 = 0.46.
        let a = Assignment::from_slots(vec![
            vec![ProductId(0)],
            vec![ProductId(1)],
            vec![ProductId(0)],
        ]);
        let abn = AttackBn::with_similarity(&net, &a, &sim, HostId(0), cfg());
        let p_mid = abn.compromise_probability(HostId(1)).unwrap();
        let p_target = abn.compromise_probability(HostId(2)).unwrap();
        assert!((p_mid - 0.46).abs() < 1e-12);
        assert!((p_target - 0.46 * 0.46).abs() < 1e-12);
        // Entry is compromised with certainty.
        assert_eq!(abn.compromise_probability(HostId(0)).unwrap(), 1.0);
    }

    #[test]
    fn mono_line_is_maximally_exposed() {
        let (net, _, sim) = line();
        let mono = Assignment::from_slots(vec![vec![ProductId(0)]; 3]);
        let abn = AttackBn::with_similarity(&net, &mono, &sim, HostId(0), cfg());
        // Identical products: rate = 0.1 + 0.9*0.8 = 0.82 per edge.
        assert!((abn.compromise_probability(HostId(2)).unwrap() - 0.82 * 0.82).abs() < 1e-12);
    }

    #[test]
    fn baseline_is_assignment_independent() {
        let (net, _, _) = line();
        let abn = AttackBn::without_similarity(&net, HostId(0), cfg());
        // Each edge carries baseline 0.1 -> P(target) = 0.01.
        assert!((abn.compromise_probability(HostId(2)).unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn diversity_metric_orders_assignments() {
        let (net, _, sim) = line();
        let diverse = Assignment::from_slots(vec![
            vec![ProductId(0)],
            vec![ProductId(1)],
            vec![ProductId(0)],
        ]);
        let mono = Assignment::from_slots(vec![vec![ProductId(0)]; 3]);
        let md = diversity_metric(&net, &diverse, &sim, HostId(0), HostId(2), cfg()).unwrap();
        let mm = diversity_metric(&net, &mono, &sim, HostId(0), HostId(2), cfg()).unwrap();
        assert!(
            md.dbn > mm.dbn,
            "diverse {} should beat mono {}",
            md.dbn,
            mm.dbn
        );
        // Same baseline numerator.
        assert!((md.p_without_similarity - mm.p_without_similarity).abs() < 1e-12);
        // dbn in (0, 1] for these parameterizations.
        assert!(md.dbn > 0.0 && md.dbn <= 1.0);
        // log helpers agree with the raw values.
        assert!((md.log_p_without() - md.p_without_similarity.log10()).abs() < 1e-12);
    }

    #[test]
    fn multipath_diamond_accumulates_risk() {
        // entry -> {a, b} -> target: two parallel paths raise P(target).
        let mut c = Catalog::new();
        let s = c.add_service("os");
        let p0 = c.add_product("p0", s).unwrap();
        let mut b = NetworkBuilder::new();
        let entry = b.add_host("entry");
        let a = b.add_host("a");
        let z = b.add_host("z");
        let target = b.add_host("target");
        for h in [entry, a, z, target] {
            b.add_service(h, s, vec![p0]).unwrap();
        }
        b.add_link(entry, a).unwrap();
        b.add_link(entry, z).unwrap();
        b.add_link(a, target).unwrap();
        b.add_link(z, target).unwrap();
        let net = b.build(&c).unwrap();
        let sim = ProductSimilarity::from_dense(1, vec![1.0]);
        let mono = Assignment::from_slots(vec![vec![p0]; 4]);
        // Zero baseline keeps the arithmetic of the comment exact.
        let config = AttackModelConfig {
            exploit_success: 0.5,
            baseline_rate: 0.0,
            ..AttackModelConfig::default()
        };
        let abn = AttackBn::with_similarity(&net, &mono, &sim, entry, config);
        // P(a)=P(z)=0.5; P(target)=E[1-(1-0.5)^{#infected parents}]
        // = 0.25*0 ... exact: 1 - E[(0.5)^{A+Z}] with A,Z ~ Bern(0.5) indep:
        // E[0.5^{A+Z}] = (0.75)^2 = 0.5625 -> P = 0.4375.
        let p = abn.compromise_probability(target).unwrap();
        assert!((p - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let mut c = Catalog::new();
        let s = c.add_service("os");
        let p0 = c.add_product("p0", s).unwrap();
        let mut b = NetworkBuilder::new();
        let entry = b.add_host("entry");
        let island = b.add_host("island");
        b.add_service(entry, s, vec![p0]).unwrap();
        b.add_service(island, s, vec![p0]).unwrap();
        let net = b.build(&c).unwrap();
        let sim = ProductSimilarity::from_dense(1, vec![1.0]);
        let mono = Assignment::from_slots(vec![vec![p0]; 2]);
        let err = diversity_metric(&net, &mono, &sim, entry, island, cfg()).unwrap_err();
        assert!(matches!(err, Error::HostUnreachable { .. }));
    }

    #[test]
    fn no_shared_service_cuts_the_edge() {
        let mut c = Catalog::new();
        let s1 = c.add_service("os");
        let s2 = c.add_service("db");
        let p0 = c.add_product("os_p", s1).unwrap();
        let p1 = c.add_product("db_p", s2).unwrap();
        let mut b = NetworkBuilder::new();
        let entry = b.add_host("entry");
        let other = b.add_host("other");
        b.add_service(entry, s1, vec![p0]).unwrap();
        b.add_service(other, s2, vec![p1]).unwrap();
        b.add_link(entry, other).unwrap();
        let net = b.build(&c).unwrap();
        let sim = ProductSimilarity::from_dense(2, vec![1.0, 0.0, 0.0, 1.0]);
        let a = Assignment::from_slots(vec![vec![p0], vec![p1]]);
        let abn = AttackBn::with_similarity(&net, &a, &sim, entry, cfg());
        // No shared service: the neighbor cannot be infected.
        assert_eq!(abn.compromise_probability(other).unwrap(), 0.0);
    }

    #[test]
    fn random_beats_mono_on_a_mesh() {
        use netmodel::topology::{generate, RandomNetworkConfig};
        let g = generate(
            &RandomNetworkConfig {
                hosts: 20,
                mean_degree: 4,
                services: 2,
                products_per_service: 4,
                vendors_per_service: 2,
                ..RandomNetworkConfig::default()
            },
            3,
        );
        let entry = HostId(0);
        let target = HostId(19);
        let mono = mono_assignment(&g.network);
        let random = random_assignment(&g.network, 5);
        let mm = diversity_metric(&g.network, &mono, &g.similarity, entry, target, cfg()).unwrap();
        let mr =
            diversity_metric(&g.network, &random, &g.similarity, entry, target, cfg()).unwrap();
        assert!(
            mr.dbn > mm.dbn,
            "random dbn {} should beat mono dbn {}",
            mr.dbn,
            mm.dbn
        );
    }

    #[test]
    fn ve_agrees_with_likelihood_weighting() {
        let (net, _, sim) = line();
        let a = Assignment::from_slots(vec![
            vec![ProductId(0)],
            vec![ProductId(1)],
            vec![ProductId(0)],
        ]);
        let abn = AttackBn::with_similarity(&net, &a, &sim, HostId(0), cfg());
        let node = abn.node_of(HostId(2)).unwrap();
        let exact = abn.compromise_probability(HostId(2)).unwrap();
        let mut sampler = crate::sampling::Sampler::new(abn.bayes_net(), 9);
        let est = sampler.likelihood_weighting(node, &[], 60_000).unwrap()[1];
        assert!((exact - est).abs() < 0.01, "exact {exact} vs sampled {est}");
    }
}
