//! Discrete Bayesian networks with exact inference, and the attack-BN
//! diversity metric of the DSN 2020 paper *"Scalable Approach to Enhancing
//! ICS Resilience by Network Diversity"* (Section VI).
//!
//! The paper evaluates a product assignment by building a Bayesian network
//! over the hosts of the network: the entry host is compromised with
//! probability 1, every other host is compromised via noisy-OR over its
//! attack edges, and the per-edge infection rate is derived from the
//! vulnerability similarity of the products facing each other across the
//! edge. The diversity metric is `dbn = P'(target) / P(target)` — the
//! compromise probability of the target *without* similarity information
//! divided by the probability *with* it (Definition 6).
//!
//! Modules:
//!
//! * [`graph`] — the generic BN: nodes, parents, tabular and noisy-OR CPTs,
//!   cycle detection.
//! * [`factor`] — discrete factors with product / marginalization / evidence
//!   reduction.
//! * [`ve`] — exact inference by variable elimination (min-fill ordering).
//! * [`sampling`] — forward sampling and likelihood weighting, used to
//!   cross-validate the exact engine.
//! * [`attack`] — construction of the attack BN from a diversified network
//!   and the [`attack::DiversityMetric`] (`dbn`).
//!
//! # Quick start: the classic sprinkler network
//!
//! ```
//! use bayesnet::graph::{BayesNet, Cpt};
//! use bayesnet::ve::VariableElimination;
//!
//! # fn main() -> Result<(), bayesnet::Error> {
//! let mut bn = BayesNet::new();
//! let rain = bn.add_node("rain", 2, vec![], Cpt::tabular(vec![0.8, 0.2]))?;
//! let sprinkler = bn.add_node(
//!     "sprinkler", 2, vec![rain],
//!     Cpt::tabular(vec![0.6, 0.4, 0.99, 0.01]),
//! )?;
//! let wet = bn.add_node(
//!     "wet", 2, vec![sprinkler, rain],
//!     Cpt::tabular(vec![1.0, 0.0, 0.2, 0.8, 0.1, 0.9, 0.01, 0.99]),
//! )?;
//! let ve = VariableElimination::new(&bn);
//! let p_wet = ve.query(wet, &[])?;
//! assert!(p_wet[1] > 0.0 && p_wet[1] < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod factor;
pub mod graph;
pub mod sampling;
pub mod ve;

mod error;

pub use error::Error;
pub use graph::NodeId;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;
