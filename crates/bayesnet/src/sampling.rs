//! Approximate inference by sampling.
//!
//! Two estimators: plain **forward sampling** for unconditional queries, and
//! **likelihood weighting** for conditional ones (evidence nodes are clamped
//! and each sample weighted by the likelihood of the evidence under its
//! ancestors). Used to cross-validate the exact engine and to handle
//! networks whose treewidth defeats variable elimination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{BayesNet, NodeId};
use crate::{Error, Result};

/// A seeded sampling engine bound to a network.
#[derive(Debug, Clone)]
pub struct Sampler<'a> {
    bn: &'a BayesNet,
    rng: StdRng,
}

impl<'a> Sampler<'a> {
    /// Creates a sampler for `bn` with a deterministic seed.
    pub fn new(bn: &'a BayesNet, seed: u64) -> Sampler<'a> {
        Sampler {
            bn,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one complete sample in topological order.
    pub fn sample(&mut self) -> Vec<usize> {
        let cards = self.bn.cardinalities();
        let mut values = vec![0usize; self.bn.len()];
        for (id, node) in self.bn.iter() {
            let parent_values: Vec<usize> = node.parents().iter().map(|&p| values[p.0]).collect();
            let parent_cards: Vec<usize> = node.parents().iter().map(|&p| cards[p.0]).collect();
            let u: f64 = self.rng.gen();
            let mut acc = 0.0;
            let mut chosen = node.cardinality() - 1;
            for v in 0..node.cardinality() {
                acc += node.prob(&parent_values, &parent_cards, v);
                if u < acc {
                    chosen = v;
                    break;
                }
            }
            values[id.0] = chosen;
        }
        values
    }

    /// Estimates `P(query | evidence)` by likelihood weighting with
    /// `samples` draws.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] / [`Error::BadValue`] — malformed inputs.
    ///
    /// Returns all zeros if every sample had zero weight (evidence
    /// unreachable).
    pub fn likelihood_weighting(
        &mut self,
        query: NodeId,
        evidence: &[(NodeId, usize)],
        samples: usize,
    ) -> Result<Vec<f64>> {
        let card_q = self.bn.node(query)?.cardinality();
        let cards = self.bn.cardinalities();
        for &(node, value) in evidence {
            let n = self.bn.node(node)?;
            if value >= n.cardinality() {
                return Err(Error::BadValue { node, value });
            }
        }
        let mut totals = vec![0.0f64; card_q];
        let mut values = vec![0usize; self.bn.len()];
        for _ in 0..samples {
            let mut weight = 1.0f64;
            for (id, node) in self.bn.iter() {
                let parent_values: Vec<usize> =
                    node.parents().iter().map(|&p| values[p.0]).collect();
                let parent_cards: Vec<usize> = node.parents().iter().map(|&p| cards[p.0]).collect();
                if let Some(&(_, v)) = evidence.iter().find(|&&(n, _)| n == id) {
                    values[id.0] = v;
                    weight *= node.prob(&parent_values, &parent_cards, v);
                } else {
                    let u: f64 = self.rng.gen();
                    let mut acc = 0.0;
                    let mut chosen = node.cardinality() - 1;
                    for v in 0..node.cardinality() {
                        acc += node.prob(&parent_values, &parent_cards, v);
                        if u < acc {
                            chosen = v;
                            break;
                        }
                    }
                    values[id.0] = chosen;
                }
            }
            totals[values[query.0]] += weight;
        }
        let sum: f64 = totals.iter().sum();
        if sum > 0.0 {
            for t in &mut totals {
                *t /= sum;
            }
        }
        Ok(totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cpt;
    use crate::ve::VariableElimination;

    fn chain() -> (BayesNet, NodeId, NodeId) {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![0.3, 0.7]))
            .unwrap();
        let b = bn
            .add_node("b", 2, vec![a], Cpt::tabular(vec![0.8, 0.2, 0.1, 0.9]))
            .unwrap();
        (bn, a, b)
    }

    #[test]
    fn forward_sampling_matches_marginal() {
        let (bn, _, b) = chain();
        let mut s = Sampler::new(&bn, 42);
        let n = 40_000;
        let hits = (0..n).filter(|_| s.sample()[b.0] == 1).count();
        let est = hits as f64 / n as f64;
        let exact = VariableElimination::new(&bn)
            .probability(b, 1, &[])
            .unwrap();
        assert!((est - exact).abs() < 0.01, "sampled {est} vs exact {exact}");
    }

    #[test]
    fn likelihood_weighting_matches_ve() {
        let (bn, a, b) = chain();
        let mut s = Sampler::new(&bn, 7);
        let est = s.likelihood_weighting(a, &[(b, 1)], 40_000).unwrap();
        let exact = VariableElimination::new(&bn).query(a, &[(b, 1)]).unwrap();
        for (e, x) in est.iter().zip(&exact) {
            assert!((e - x).abs() < 0.01, "lw {est:?} vs ve {exact:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (bn, _, _) = chain();
        let a: Vec<_> = (0..10).map(|_| Sampler::new(&bn, 5).sample()).collect();
        let b: Vec<_> = (0..10).map(|_| Sampler::new(&bn, 5).sample()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_evidence_yields_zeros() {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![1.0, 0.0]))
            .unwrap();
        let b = bn
            .add_node("b", 2, vec![a], Cpt::tabular(vec![1.0, 0.0, 0.0, 1.0]))
            .unwrap();
        let mut s = Sampler::new(&bn, 1);
        // b=1 requires a=1, which has probability 0.
        let est = s.likelihood_weighting(a, &[(b, 1)], 1000).unwrap();
        assert_eq!(est, vec![0.0, 0.0]);
    }

    #[test]
    fn bad_inputs_rejected() {
        let (bn, a, b) = chain();
        let mut s = Sampler::new(&bn, 1);
        assert!(s.likelihood_weighting(NodeId(9), &[], 10).is_err());
        assert!(s.likelihood_weighting(a, &[(b, 5)], 10).is_err());
    }
}
