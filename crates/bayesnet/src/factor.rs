//! Discrete factors: the workhorse of exact inference.
//!
//! A [`Factor`] is a non-negative table over a set of variables. Variable
//! elimination multiplies factors together and sums variables out; evidence
//! is applied by reduction. Values are stored row-major with the *last*
//! variable in [`Factor::vars`] varying fastest.

use crate::graph::{BayesNet, NodeId};

/// A table over discrete variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<NodeId>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != ∏ cards`, arities differ, or a variable
    /// repeats.
    pub fn new(vars: Vec<NodeId>, cards: Vec<usize>, values: Vec<f64>) -> Factor {
        assert_eq!(vars.len(), cards.len(), "vars/cards arity mismatch");
        let expected: usize = cards.iter().product();
        assert_eq!(values.len(), expected, "factor table has wrong size");
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            vars.len(),
            "factor variables must be distinct"
        );
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// The constant factor `1` over no variables (multiplicative identity).
    pub fn unit() -> Factor {
        Factor {
            vars: vec![],
            cards: vec![],
            values: vec![1.0],
        }
    }

    /// Builds the CPT factor of `node` in `bn`: variables are
    /// `[parents..., node]`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn from_cpt(bn: &BayesNet, node: NodeId) -> Factor {
        let n = bn.node(node).expect("node exists");
        let parent_cards: Vec<usize> = n
            .parents()
            .iter()
            .map(|&p| bn.node(p).expect("parent exists").cardinality())
            .collect();
        let mut vars = n.parents().to_vec();
        vars.push(node);
        let mut cards = parent_cards.clone();
        cards.push(n.cardinality());
        let total: usize = cards.iter().product();
        let mut values = Vec::with_capacity(total);
        let mut assignment = vec![0usize; cards.len()];
        for _ in 0..total {
            let (pv, v) = assignment.split_at(parent_cards.len());
            values.push(n.prob(pv, &parent_cards, v[0]));
            // Odometer over `assignment`, last position fastest.
            for pos in (0..assignment.len()).rev() {
                assignment[pos] += 1;
                if assignment[pos] < cards[pos] {
                    break;
                }
                assignment[pos] = 0;
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// The variables of this factor.
    pub fn vars(&self) -> &[NodeId] {
        &self.vars
    }

    /// The cardinalities, aligned with [`Factor::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The raw table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Table size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table has no entries (impossible for built factors;
    /// provided for `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether this is a scalar factor over no variables.
    pub fn is_scalar(&self) -> bool {
        self.vars.is_empty()
    }

    /// Looks up the value at an assignment aligned with [`Factor::vars`].
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range values.
    pub fn value_at(&self, assignment: &[usize]) -> f64 {
        assert_eq!(
            assignment.len(),
            self.vars.len(),
            "assignment arity mismatch"
        );
        let mut idx = 0usize;
        for (v, c) in assignment.iter().zip(&self.cards) {
            assert!(v < c, "assignment value out of range");
            idx = idx * c + v;
        }
        self.values[idx]
    }

    /// Multiplies two factors over the union of their variables.
    pub fn product(&self, other: &Factor) -> Factor {
        // Union of variables, self's first.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (v, c) in other.vars.iter().zip(&other.cards) {
            if !vars.contains(v) {
                vars.push(*v);
                cards.push(*c);
            }
        }
        let total: usize = cards.iter().product();
        // Position of each union variable in self/other (usize::MAX = absent).
        let self_pos: Vec<usize> = vars
            .iter()
            .map(|v| self.vars.iter().position(|s| s == v).unwrap_or(usize::MAX))
            .collect();
        let other_pos: Vec<usize> = vars
            .iter()
            .map(|v| other.vars.iter().position(|s| s == v).unwrap_or(usize::MAX))
            .collect();
        let mut values = Vec::with_capacity(total);
        let mut assignment = vec![0usize; vars.len()];
        let mut self_assignment = vec![0usize; self.vars.len()];
        let mut other_assignment = vec![0usize; other.vars.len()];
        for _ in 0..total {
            for (i, &a) in assignment.iter().enumerate() {
                if self_pos[i] != usize::MAX {
                    self_assignment[self_pos[i]] = a;
                }
                if other_pos[i] != usize::MAX {
                    other_assignment[other_pos[i]] = a;
                }
            }
            values.push(self.value_at(&self_assignment) * other.value_at(&other_assignment));
            for pos in (0..assignment.len()).rev() {
                assignment[pos] += 1;
                if assignment[pos] < cards[pos] {
                    break;
                }
                assignment[pos] = 0;
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Sums out `var`, returning a factor over the remaining variables.
    /// Returns a clone if `var` is absent.
    pub fn sum_out(&self, var: NodeId) -> Factor {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return self.clone();
        };
        let card = self.cards[pos];
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let total: usize = cards.iter().product();
        let mut values = vec![0.0; total];
        let mut assignment = vec![0usize; self.vars.len()];
        for v in &self.values {
            // Index into the reduced table.
            let mut idx = 0usize;
            for (i, (a, c)) in assignment.iter().zip(&self.cards).enumerate() {
                if i != pos {
                    idx = idx * c + a;
                }
            }
            values[idx] += v;
            for p in (0..assignment.len()).rev() {
                assignment[p] += 1;
                if assignment[p] < self.cards[p] {
                    break;
                }
                assignment[p] = 0;
            }
        }
        let _ = card;
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Fixes `var = value`, returning a factor over the remaining variables.
    /// Returns a clone if `var` is absent.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of range for `var`.
    pub fn reduce(&self, var: NodeId, value: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return self.clone();
        };
        assert!(value < self.cards[pos], "evidence value out of range");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let total: usize = cards.iter().product();
        let mut values = Vec::with_capacity(total);
        let mut assignment = vec![0usize; self.vars.len()];
        for v in &self.values {
            if assignment[pos] == value {
                values.push(*v);
            }
            for p in (0..assignment.len()).rev() {
                assignment[p] += 1;
                if assignment[p] < self.cards[p] {
                    break;
                }
                assignment[p] = 0;
            }
        }
        let _ = v_len_check(&values, total);
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Normalizes the table to sum to 1 (no-op on an all-zero table).
    pub fn normalized(&self) -> Factor {
        let sum: f64 = self.values.iter().sum();
        if sum <= 0.0 {
            return self.clone();
        }
        Factor {
            vars: self.vars.clone(),
            cards: self.cards.clone(),
            values: self.values.iter().map(|v| v / sum).collect(),
        }
    }
}

fn v_len_check(values: &[f64], expected: usize) -> bool {
    debug_assert_eq!(values.len(), expected);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cpt;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn construction_and_lookup() {
        let f = Factor::new(
            vec![nid(0), nid(1)],
            vec![2, 3],
            (0..6).map(f64::from).collect(),
        );
        assert_eq!(f.value_at(&[0, 0]), 0.0);
        assert_eq!(f.value_at(&[0, 2]), 2.0);
        assert_eq!(f.value_at(&[1, 0]), 3.0);
        assert_eq!(f.value_at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn bad_table_size_panics() {
        Factor::new(vec![nid(0)], vec![2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_vars_panic() {
        Factor::new(vec![nid(0), nid(0)], vec![2, 2], vec![0.0; 4]);
    }

    #[test]
    fn product_disjoint() {
        let f = Factor::new(vec![nid(0)], vec![2], vec![2.0, 3.0]);
        let g = Factor::new(vec![nid(1)], vec![2], vec![5.0, 7.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[nid(0), nid(1)]);
        assert_eq!(p.value_at(&[0, 0]), 10.0);
        assert_eq!(p.value_at(&[1, 1]), 21.0);
    }

    #[test]
    fn product_shared_variable() {
        let f = Factor::new(vec![nid(0), nid(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let g = Factor::new(vec![nid(1)], vec![2], vec![10.0, 100.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[nid(0), nid(1)]);
        assert_eq!(p.value_at(&[0, 0]), 10.0);
        assert_eq!(p.value_at(&[0, 1]), 200.0);
        assert_eq!(p.value_at(&[1, 1]), 400.0);
    }

    #[test]
    fn product_with_unit() {
        let f = Factor::new(vec![nid(0)], vec![2], vec![0.4, 0.6]);
        let p = Factor::unit().product(&f);
        assert_eq!(p.values(), f.values());
    }

    #[test]
    fn sum_out_marginalizes() {
        let f = Factor::new(vec![nid(0), nid(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let m = f.sum_out(nid(0));
        assert_eq!(m.vars(), &[nid(1)]);
        assert_eq!(m.values(), &[4.0, 6.0]);
        let m2 = f.sum_out(nid(1));
        assert_eq!(m2.values(), &[3.0, 7.0]);
        // Absent variable: unchanged.
        assert_eq!(f.sum_out(nid(9)).values(), f.values());
    }

    #[test]
    fn reduce_applies_evidence() {
        let f = Factor::new(
            vec![nid(0), nid(1)],
            vec![2, 3],
            (0..6).map(f64::from).collect(),
        );
        let r = f.reduce(nid(1), 2);
        assert_eq!(r.vars(), &[nid(0)]);
        assert_eq!(r.values(), &[2.0, 5.0]);
        let r0 = f.reduce(nid(0), 0);
        assert_eq!(r0.values(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn normalized_sums_to_one() {
        let f = Factor::new(vec![nid(0)], vec![2], vec![2.0, 6.0]);
        let n = f.normalized();
        assert_eq!(n.values(), &[0.25, 0.75]);
    }

    #[test]
    fn from_cpt_matches_node_probabilities() {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![0.6, 0.4]))
            .unwrap();
        let b = bn
            .add_node("b", 2, vec![a], Cpt::tabular(vec![0.9, 0.1, 0.3, 0.7]))
            .unwrap();
        let f = Factor::from_cpt(&bn, b);
        assert_eq!(f.vars(), &[a, b]);
        assert_eq!(f.value_at(&[0, 0]), 0.9);
        assert_eq!(f.value_at(&[1, 1]), 0.7);
        let fa = Factor::from_cpt(&bn, a);
        assert_eq!(fa.vars(), &[a]);
        assert_eq!(fa.values(), &[0.6, 0.4]);
    }

    #[test]
    fn from_cpt_noisy_or() {
        let mut bn = BayesNet::new();
        let p = bn
            .add_node("p", 2, vec![], Cpt::tabular(vec![0.5, 0.5]))
            .unwrap();
        let c = bn
            .add_node("c", 2, vec![p], Cpt::noisy_or(0.0, vec![0.8]))
            .unwrap();
        let f = Factor::from_cpt(&bn, c);
        assert_eq!(f.value_at(&[0, 1]), 0.0); // parent off, no leak
        assert!((f.value_at(&[1, 1]) - 0.8).abs() < 1e-12);
        assert!((f.value_at(&[1, 0]) - 0.2).abs() < 1e-12);
    }
}
