use std::fmt;

use crate::graph::NodeId;

/// Errors produced while constructing or querying Bayesian networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// A node was declared with fewer than two states.
    BadCardinality {
        /// The node name.
        name: String,
        /// The declared cardinality.
        cardinality: usize,
    },
    /// A CPT has the wrong number of entries for its node and parents.
    CptShape {
        /// The node name.
        name: String,
        /// Expected number of probabilities.
        expected: usize,
        /// Supplied number of probabilities.
        got: usize,
    },
    /// A CPT row does not sum to 1 (within tolerance) or has entries
    /// outside `[0, 1]`.
    CptInvalid {
        /// The node name.
        name: String,
        /// The offending row index.
        row: usize,
    },
    /// A noisy-OR CPT was attached to a non-binary node or given weights
    /// outside `[0, 1]`.
    NoisyOrInvalid {
        /// The node name.
        name: String,
    },
    /// Adding the node would create a cycle (a parent does not precede it).
    Cycle {
        /// The node name.
        name: String,
    },
    /// An evidence or query value is out of range for its node.
    BadValue {
        /// The node.
        node: NodeId,
        /// The out-of-range value.
        value: usize,
    },
    /// The same node appears twice in evidence, or evidence contradicts the query.
    DuplicateEvidence(NodeId),
    /// An attack-BN query referenced a host not reachable from the entry.
    HostUnreachable {
        /// The host index in the source network.
        host: usize,
    },
    /// The diversity metric is undefined because `P(target)` is zero.
    DegenerateMetric,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode(n) => write!(f, "unknown node {}", n.0),
            Error::BadCardinality { name, cardinality } => {
                write!(
                    f,
                    "node {name:?} needs at least 2 states, got {cardinality}"
                )
            }
            Error::CptShape {
                name,
                expected,
                got,
            } => write!(
                f,
                "CPT of {name:?} needs {expected} probabilities, got {got}"
            ),
            Error::CptInvalid { name, row } => {
                write!(
                    f,
                    "CPT row {row} of {name:?} is not a probability distribution"
                )
            }
            Error::NoisyOrInvalid { name } => {
                write!(
                    f,
                    "noisy-OR CPT of {name:?} needs a binary node and weights in [0,1]"
                )
            }
            Error::Cycle { name } => {
                write!(
                    f,
                    "node {name:?} lists a parent that was not added before it"
                )
            }
            Error::BadValue { node, value } => {
                write!(f, "value {value} out of range for node {}", node.0)
            }
            Error::DuplicateEvidence(n) => write!(f, "node {} appears twice in evidence", n.0),
            Error::HostUnreachable { host } => {
                write!(f, "host h{host} is not reachable from the attack entry")
            }
            Error::DegenerateMetric => {
                write!(
                    f,
                    "diversity metric undefined: target compromise probability is zero"
                )
            }
        }
    }
}

impl std::error::Error for Error {}
