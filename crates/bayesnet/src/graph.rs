//! The Bayesian network structure: nodes, parents and CPTs.
//!
//! Nodes must be added parents-first (the builder enforces topological
//! order, which also rules out cycles by construction). Two CPT forms are
//! supported: full tabular distributions, and the **noisy-OR** gate that
//! attack graphs use — `P(child = 1 | parents) = 1 − (1−leak)·∏_{on}(1−wᵢ)`.

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Identifier of a node in a [`BayesNet`] (dense, 0-based, topological).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A conditional probability table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cpt {
    /// Full table: for each parent configuration (row-major over the parent
    /// list, later parents varying fastest), a distribution over the node's
    /// states. Length = `∏ parent_cards × card`.
    Tabular {
        /// The flattened probabilities.
        probs: Vec<f64>,
    },
    /// Noisy-OR gate over binary parents of a binary node: the child
    /// activates if any "on" parent independently triggers it.
    NoisyOr {
        /// Activation probability when all parents are off.
        leak: f64,
        /// Per-parent trigger probability, aligned with the parent list.
        weights: Vec<f64>,
    },
}

impl Cpt {
    /// Convenience constructor for a tabular CPT.
    pub fn tabular(probs: Vec<f64>) -> Cpt {
        Cpt::Tabular { probs }
    }

    /// Convenience constructor for a noisy-OR CPT.
    pub fn noisy_or(leak: f64, weights: Vec<f64>) -> Cpt {
        Cpt::NoisyOr { leak, weights }
    }
}

/// One node of the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    name: String,
    cardinality: usize,
    parents: Vec<NodeId>,
    cpt: Cpt,
}

impl Node {
    /// The node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// The parent nodes, in CPT order.
    pub fn parents(&self) -> &[NodeId] {
        &self.parents
    }

    /// The CPT.
    pub fn cpt(&self) -> &Cpt {
        &self.cpt
    }

    /// `P(node = value | parent_values)`, where `parent_values` is aligned
    /// with [`Node::parents`].
    ///
    /// # Panics
    ///
    /// Panics if arities or state indices are out of range.
    pub fn prob(&self, parent_values: &[usize], parent_cards: &[usize], value: usize) -> f64 {
        assert_eq!(
            parent_values.len(),
            self.parents.len(),
            "parent arity mismatch"
        );
        assert!(value < self.cardinality, "value out of range");
        match &self.cpt {
            Cpt::Tabular { probs } => {
                let mut row = 0usize;
                for (v, c) in parent_values.iter().zip(parent_cards) {
                    assert!(v < c, "parent value out of range");
                    row = row * c + v;
                }
                probs[row * self.cardinality + value]
            }
            Cpt::NoisyOr { leak, weights } => {
                let mut p_off = 1.0 - leak;
                for (v, w) in parent_values.iter().zip(weights) {
                    if *v == 1 {
                        p_off *= 1.0 - w;
                    }
                }
                if value == 1 {
                    1.0 - p_off
                } else {
                    p_off
                }
            }
        }
    }
}

/// A discrete Bayesian network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BayesNet {
    nodes: Vec<Node>,
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> BayesNet {
        BayesNet::default()
    }

    /// Adds a node. Parents must already exist (ids are topological, so
    /// cycles are impossible).
    ///
    /// # Errors
    ///
    /// * [`Error::BadCardinality`] — fewer than 2 states.
    /// * [`Error::Cycle`] — a parent id ≥ the new node's id.
    /// * [`Error::CptShape`] / [`Error::CptInvalid`] — malformed tabular CPT.
    /// * [`Error::NoisyOrInvalid`] — noisy-OR on a non-binary node, a
    ///   non-binary parent, wrong weight arity, or weights outside `[0, 1]`.
    pub fn add_node(
        &mut self,
        name: &str,
        cardinality: usize,
        parents: Vec<NodeId>,
        cpt: Cpt,
    ) -> Result<NodeId> {
        if cardinality < 2 {
            return Err(Error::BadCardinality {
                name: name.to_owned(),
                cardinality,
            });
        }
        let id = NodeId(self.nodes.len());
        for &p in &parents {
            if p.0 >= id.0 {
                return Err(Error::Cycle {
                    name: name.to_owned(),
                });
            }
        }
        match &cpt {
            Cpt::Tabular { probs } => {
                let rows: usize = parents
                    .iter()
                    .map(|&p| self.nodes[p.0].cardinality)
                    .product();
                let expected = rows * cardinality;
                if probs.len() != expected {
                    return Err(Error::CptShape {
                        name: name.to_owned(),
                        expected,
                        got: probs.len(),
                    });
                }
                for row in 0..rows {
                    let slice = &probs[row * cardinality..(row + 1) * cardinality];
                    let sum: f64 = slice.iter().sum();
                    if (sum - 1.0).abs() > 1e-6
                        || slice.iter().any(|p| !(0.0..=1.0 + 1e-9).contains(p))
                    {
                        return Err(Error::CptInvalid {
                            name: name.to_owned(),
                            row,
                        });
                    }
                }
            }
            Cpt::NoisyOr { leak, weights } => {
                let parents_binary = parents.iter().all(|&p| self.nodes[p.0].cardinality == 2);
                if cardinality != 2
                    || !parents_binary
                    || weights.len() != parents.len()
                    || !(0.0..=1.0).contains(leak)
                    || weights.iter().any(|w| !(0.0..=1.0).contains(w))
                {
                    return Err(Error::NoisyOrInvalid {
                        name: name.to_owned(),
                    });
                }
            }
        }
        self.nodes.push(Node {
            name: name.to_owned(),
            cardinality,
            parents,
            cpt,
        });
        Ok(id)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(Error::UnknownNode(id))
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Finds a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The cardinalities of all nodes, indexed by id.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.cardinality).collect()
    }

    /// The joint probability of a complete assignment (one value per node).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range values.
    pub fn joint_probability(&self, values: &[usize]) -> f64 {
        assert_eq!(values.len(), self.nodes.len(), "assignment arity mismatch");
        let mut p = 1.0;
        for (i, node) in self.nodes.iter().enumerate() {
            let parent_values: Vec<usize> = node.parents.iter().map(|&pid| values[pid.0]).collect();
            let parent_cards: Vec<usize> = node
                .parents
                .iter()
                .map(|&pid| self.nodes[pid.0].cardinality)
                .collect();
            p *= node.prob(&parent_values, &parent_cards, values[i]);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_structure() {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![0.7, 0.3]))
            .unwrap();
        let b = bn
            .add_node(
                "b",
                3,
                vec![a],
                Cpt::tabular(vec![0.2, 0.3, 0.5, 1.0, 0.0, 0.0]),
            )
            .unwrap();
        assert_eq!(bn.len(), 2);
        assert_eq!(bn.node(b).unwrap().parents(), &[a]);
        assert_eq!(bn.node_by_name("b"), Some(b));
        assert_eq!(bn.node(a).unwrap().prob(&[], &[], 1), 0.3);
        assert_eq!(bn.node(b).unwrap().prob(&[1], &[2], 0), 1.0);
    }

    #[test]
    fn tabular_validation() {
        let mut bn = BayesNet::new();
        assert!(matches!(
            bn.add_node("x", 1, vec![], Cpt::tabular(vec![1.0])),
            Err(Error::BadCardinality { .. })
        ));
        assert!(matches!(
            bn.add_node("x", 2, vec![], Cpt::tabular(vec![0.5])),
            Err(Error::CptShape { .. })
        ));
        assert!(matches!(
            bn.add_node("x", 2, vec![], Cpt::tabular(vec![0.5, 0.6])),
            Err(Error::CptInvalid { .. })
        ));
        assert!(matches!(
            bn.add_node("x", 2, vec![NodeId(5)], Cpt::tabular(vec![0.5, 0.5])),
            Err(Error::Cycle { .. })
        ));
    }

    #[test]
    fn noisy_or_semantics() {
        let mut bn = BayesNet::new();
        let p1 = bn
            .add_node("p1", 2, vec![], Cpt::tabular(vec![0.5, 0.5]))
            .unwrap();
        let p2 = bn
            .add_node("p2", 2, vec![], Cpt::tabular(vec![0.5, 0.5]))
            .unwrap();
        let child = bn
            .add_node("c", 2, vec![p1, p2], Cpt::noisy_or(0.1, vec![0.8, 0.5]))
            .unwrap();
        let node = bn.node(child).unwrap();
        // No parent on: leak only.
        assert!((node.prob(&[0, 0], &[2, 2], 1) - 0.1).abs() < 1e-12);
        // Both on: 1 - 0.9*0.2*0.5 = 0.91.
        assert!((node.prob(&[1, 1], &[2, 2], 1) - 0.91).abs() < 1e-12);
        // Complement consistency.
        assert!(
            (node.prob(&[1, 0], &[2, 2], 0) + node.prob(&[1, 0], &[2, 2], 1) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn noisy_or_validation() {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![0.5, 0.5]))
            .unwrap();
        // Wrong weight arity.
        assert!(matches!(
            bn.add_node("x", 2, vec![a], Cpt::noisy_or(0.0, vec![])),
            Err(Error::NoisyOrInvalid { .. })
        ));
        // Non-binary child.
        assert!(matches!(
            bn.add_node("x", 3, vec![a], Cpt::noisy_or(0.0, vec![0.5])),
            Err(Error::NoisyOrInvalid { .. })
        ));
        // Out-of-range weight.
        assert!(matches!(
            bn.add_node("x", 2, vec![a], Cpt::noisy_or(0.0, vec![1.5])),
            Err(Error::NoisyOrInvalid { .. })
        ));
    }

    #[test]
    fn joint_probability_factorizes() {
        let mut bn = BayesNet::new();
        let a = bn
            .add_node("a", 2, vec![], Cpt::tabular(vec![0.6, 0.4]))
            .unwrap();
        let _b = bn
            .add_node("b", 2, vec![a], Cpt::tabular(vec![0.9, 0.1, 0.3, 0.7]))
            .unwrap();
        assert!((bn.joint_probability(&[1, 1]) - 0.4 * 0.7).abs() < 1e-12);
        assert!((bn.joint_probability(&[0, 0]) - 0.6 * 0.9).abs() < 1e-12);
        // All four joint entries sum to 1.
        let total: f64 = (0..2)
            .flat_map(|x| (0..2).map(move |y| (x, y)))
            .map(|(x, y)| bn.joint_probability(&[x, y]))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
