//! CVE identifiers and vulnerability entries.
//!
//! A [`CveEntry`] is the unit stored in the [`crate::database`]: an
//! identifier, a publication year, the list of affected products (CPEs) and
//! an optional severity score — the minimal slice of an NVD record that the
//! paper's similarity pipeline consumes (cf. Table I of the paper, which
//! shows CVE-2016-7153 affecting six different browsers).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::cpe::Cpe;
use crate::Error;

/// A CVE identifier, e.g. `CVE-2016-7153`.
///
/// ```
/// use nvd::cve::CveId;
/// # fn main() -> Result<(), nvd::Error> {
/// let id: CveId = "CVE-2016-7153".parse()?;
/// assert_eq!(id.year(), 2016);
/// assert_eq!(id.sequence(), 7153);
/// assert_eq!(id.to_string(), "CVE-2016-7153");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CveId {
    year: u16,
    sequence: u32,
}

impl CveId {
    /// Creates a CVE identifier from its year and sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCveId`] when `year` is before 1988 (the first
    /// CVE-numbered year) or the sequence is zero.
    pub fn new(year: u16, sequence: u32) -> Result<CveId, Error> {
        if year < 1988 || sequence == 0 {
            return Err(Error::InvalidCveId { year, sequence });
        }
        Ok(CveId { year, sequence })
    }

    /// The year component.
    pub fn year(self) -> u16 {
        self.year
    }

    /// The sequence component.
    pub fn sequence(self) -> u32 {
        self.sequence
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // NVD zero-pads sequences to at least four digits.
        write!(f, "CVE-{}-{:04}", self.year, self.sequence)
    }
}

impl FromStr for CveId {
    type Err = Error;

    fn from_str(s: &str) -> Result<CveId, Error> {
        let err = |reason| Error::ParseCveId {
            input: s.to_owned(),
            reason,
        };
        let rest = s
            .trim()
            .strip_prefix("CVE-")
            .ok_or_else(|| err("missing `CVE-` prefix"))?;
        let (year_str, seq_str) = rest
            .split_once('-')
            .ok_or_else(|| err("missing sequence"))?;
        let year: u16 = year_str.parse().map_err(|_| err("year is not a number"))?;
        let sequence: u32 = seq_str
            .parse()
            .map_err(|_| err("sequence is not a number"))?;
        CveId::new(year, sequence)
    }
}

/// Severity of a vulnerability on the CVSS 0–10 scale.
///
/// Stored but not interpreted by the similarity metric; kept so downstream
/// consumers (e.g. weighting experiments) can use it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Cvss(f64);

impl Cvss {
    /// Creates a CVSS score, clamped into the valid `[0, 10]` range.
    pub fn new(score: f64) -> Cvss {
        Cvss(score.clamp(0.0, 10.0))
    }

    /// The numeric score.
    pub fn score(self) -> f64 {
        self.0
    }
}

/// One vulnerability record: identifier, publication year, affected products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveEntry {
    id: CveId,
    published: u16,
    affected: Vec<Cpe>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cvss: Option<Cvss>,
    #[serde(default, skip_serializing_if = "String::is_empty")]
    description: String,
}

impl CveEntry {
    /// Creates an entry. Duplicate affected CPEs are removed, preserving the
    /// first occurrence, so that an entry never double-counts a product.
    pub fn new(id: CveId, published: u16, affected: Vec<Cpe>) -> CveEntry {
        let mut seen = std::collections::HashSet::new();
        let affected = affected
            .into_iter()
            .filter(|c| seen.insert(c.clone()))
            .collect();
        CveEntry {
            id,
            published,
            affected,
            cvss: None,
            description: String::new(),
        }
    }

    /// Sets the CVSS severity score.
    pub fn with_cvss(mut self, score: f64) -> CveEntry {
        self.cvss = Some(Cvss::new(score));
        self
    }

    /// Sets a human-readable description.
    pub fn with_description(mut self, description: &str) -> CveEntry {
        self.description = description.to_owned();
        self
    }

    /// The CVE identifier.
    pub fn id(&self) -> CveId {
        self.id
    }

    /// Year the vulnerability was published.
    pub fn published(&self) -> u16 {
        self.published
    }

    /// The affected products (CPEs), deduplicated.
    pub fn affected(&self) -> &[Cpe] {
        &self.affected
    }

    /// The CVSS score, if recorded.
    pub fn cvss(&self) -> Option<Cvss> {
        self.cvss
    }

    /// The description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Whether any affected CPE is matched by `query` (prefix semantics).
    pub fn affects(&self, query: &Cpe) -> bool {
        self.affected.iter().any(|c| query.matches(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cve_id_parse_and_display() {
        let id: CveId = "CVE-2016-7153".parse().unwrap();
        assert_eq!(id, CveId::new(2016, 7153).unwrap());
        assert_eq!(id.to_string(), "CVE-2016-7153");
    }

    #[test]
    fn cve_id_zero_pads_short_sequences() {
        let id = CveId::new(1999, 42).unwrap();
        assert_eq!(id.to_string(), "CVE-1999-0042");
        assert_eq!("CVE-1999-0042".parse::<CveId>().unwrap(), id);
    }

    #[test]
    fn cve_id_rejects_garbage() {
        assert!("CVE-".parse::<CveId>().is_err());
        assert!("CVE-notayear-1".parse::<CveId>().is_err());
        assert!("CVE-2016-".parse::<CveId>().is_err());
        assert!("cve-2016-7153".parse::<CveId>().is_err());
        assert!(CveId::new(1970, 1).is_err());
        assert!(CveId::new(2016, 0).is_err());
    }

    #[test]
    fn cve_ids_order_chronologically() {
        let a = CveId::new(2015, 9999).unwrap();
        let b = CveId::new(2016, 1).unwrap();
        assert!(a < b);
    }

    #[test]
    fn entry_deduplicates_affected() {
        let chrome: Cpe = "cpe:/a:google:chrome".parse().unwrap();
        let entry = CveEntry::new(
            CveId::new(2016, 1).unwrap(),
            2016,
            vec![chrome.clone(), chrome.clone()],
        );
        assert_eq!(entry.affected().len(), 1);
    }

    #[test]
    fn entry_affects_uses_prefix_matching() {
        let versioned: Cpe = "cpe:/a:google:chrome:50.0".parse().unwrap();
        let entry = CveEntry::new(CveId::new(2016, 2).unwrap(), 2016, vec![versioned]);
        let query: Cpe = "cpe:/a:google:chrome".parse().unwrap();
        assert!(entry.affects(&query));
        let other: Cpe = "cpe:/a:mozilla:firefox".parse().unwrap();
        assert!(!entry.affects(&other));
    }

    #[test]
    fn cvss_clamps() {
        assert_eq!(Cvss::new(11.0).score(), 10.0);
        assert_eq!(Cvss::new(-3.0).score(), 0.0);
        assert_eq!(Cvss::new(7.5).score(), 7.5);
    }

    #[test]
    fn builder_methods() {
        let entry = CveEntry::new(CveId::new(2016, 7153).unwrap(), 2016, vec![])
            .with_cvss(4.3)
            .with_description("browser history sniffing");
        assert_eq!(entry.cvss().unwrap().score(), 4.3);
        assert!(entry.description().contains("sniffing"));
    }
}
