//! The vulnerability-similarity metric (paper Definition 1) and dense
//! symmetric similarity tables.
//!
//! A [`SimilarityTable`] is the artifact the rest of the system consumes: a
//! symmetric matrix of pairwise Jaccard similarities over a named product
//! set, with 1.0 on the diagonal (a product is maximally similar to itself —
//! one exploit compromises both endpoints).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

/// Jaccard similarity coefficient of two sets: `|A ∩ B| / |A ∪ B|`.
///
/// Returns 0.0 when both sets are empty (the metric is undefined there; zero
/// is the conservative "no evidence of shared vulnerabilities" choice).
///
/// ```
/// use std::collections::BTreeSet;
/// let a: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
/// let b: BTreeSet<u32> = [2, 3, 4].into_iter().collect();
/// assert_eq!(nvd::similarity::jaccard(&a, &b), 0.5);
/// ```
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Severity-weighted Jaccard similarity: `Σ_{v ∈ A∩B} w(v) / Σ_{v ∈ A∪B} w(v)`.
///
/// The paper's future-work section calls for "a more systematic way to
/// estimate the vulnerability similarity"; weighting shared vulnerabilities
/// by severity (e.g. CVSS score) is the natural first refinement — two
/// products sharing a handful of critical RCEs are more dangerous together
/// than two sharing many low-severity issues. Missing weights default to 0
/// (unscored vulnerabilities carry no mass).
///
/// Returns 0.0 when the union carries no weight.
///
/// ```
/// use std::collections::{BTreeMap, BTreeSet};
/// let a: BTreeSet<u32> = [1, 2].into_iter().collect();
/// let b: BTreeSet<u32> = [2, 3].into_iter().collect();
/// let weights: BTreeMap<u32, f64> = [(1, 1.0), (2, 9.8), (3, 1.0)].into_iter().collect();
/// // The shared vulnerability is critical: weighted similarity ≈ 0.83
/// // while plain Jaccard would report 1/3.
/// let w = nvd::similarity::weighted_jaccard(&a, &b, &weights);
/// assert!((w - 9.8 / 11.8).abs() < 1e-12);
/// ```
pub fn weighted_jaccard<T: Ord>(
    a: &BTreeSet<T>,
    b: &BTreeSet<T>,
    weights: &BTreeMap<T, f64>,
) -> f64 {
    let weight = |v: &T| weights.get(v).copied().unwrap_or(0.0).max(0.0);
    let inter: f64 = a.intersection(b).map(&weight).sum();
    let union: f64 = a.union(b).map(&weight).sum();
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// A dense, symmetric table of pairwise product similarities in `[0, 1]`.
///
/// Rows/columns are identified both by index and by product name. The
/// diagonal is fixed at 1.0. Optionally stores the per-product vulnerability
/// count (the figures the paper prints on the diagonal of Tables II/III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityTable {
    names: Vec<String>,
    // Row-major symmetric matrix, n*n. Kept dense: product sets are small
    // (tens of products), and the optimizer indexes it in hot loops.
    values: Vec<f64>,
    vuln_counts: Vec<Option<usize>>,
}

impl SimilarityTable {
    /// Creates a table with 1.0 on the diagonal and 0.0 elsewhere.
    pub fn identity(names: &[String]) -> SimilarityTable {
        let n = names.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
        }
        SimilarityTable {
            names: names.to_vec(),
            values,
            vuln_counts: vec![None; n],
        }
    }

    /// Creates a table from string-slice names, convenient for literals.
    pub fn with_names(names: &[&str]) -> SimilarityTable {
        SimilarityTable::identity(&names.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Product names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a product by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Similarity between products `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let n = self.names.len();
        assert!(
            i < n && j < n,
            "similarity index out of bounds: ({i}, {j}) with {n} products"
        );
        self.values[i * n + j]
    }

    /// Similarity by product names; `None` if a name is unknown.
    pub fn get_by_name(&self, a: &str, b: &str) -> Option<f64> {
        Some(self.get(self.index_of(a)?, self.index_of(b)?))
    }

    /// Sets the symmetric similarity of products `i` and `j`.
    ///
    /// Values are clamped into `[0, 1]`. Setting a diagonal entry is a no-op:
    /// the self-similarity of a product is definitionally 1.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, similarity: f64) {
        let n = self.names.len();
        assert!(
            i < n && j < n,
            "similarity index out of bounds: ({i}, {j}) with {n} products"
        );
        if i == j {
            return;
        }
        let s = similarity.clamp(0.0, 1.0);
        self.values[i * n + j] = s;
        self.values[j * n + i] = s;
    }

    /// Sets the symmetric similarity by product names. Returns `false` if a
    /// name is unknown.
    pub fn set_by_name(&mut self, a: &str, b: &str, similarity: f64) -> bool {
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => {
                self.set(i, j, similarity);
                true
            }
            _ => false,
        }
    }

    /// Records the total vulnerability count of product `i` (diagonal figures
    /// of the paper's tables).
    pub fn set_vuln_count(&mut self, i: usize, count: usize) {
        self.vuln_counts[i] = Some(count);
    }

    /// The recorded vulnerability count of product `i`, if any.
    pub fn vuln_count(&self, i: usize) -> Option<usize> {
        self.vuln_counts.get(i).copied().flatten()
    }

    /// Mean off-diagonal similarity — a scalar summary of how much overlap a
    /// product family carries. 0.0 for tables with fewer than two products.
    pub fn mean_off_diagonal(&self) -> f64 {
        let n = self.names.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.get(i, j);
            }
        }
        sum / (n * (n - 1) / 2) as f64
    }

    /// Merges another table into this one: products are concatenated and
    /// cross-family similarities default to 0 (products of disjoint service
    /// families share no vulnerability bucket).
    ///
    /// # Panics
    ///
    /// Panics if a product name occurs in both tables.
    pub fn disjoint_union(&self, other: &SimilarityTable) -> SimilarityTable {
        // A set lookup per name, not a linear `index_of` scan — merging the
        // paper-scale NVD family tables is O((n+m) log n) instead of O(n·m).
        let own: BTreeSet<&str> = self.names.iter().map(String::as_str).collect();
        for name in other.names() {
            assert!(
                !own.contains(name.as_str()),
                "product {name:?} present in both tables"
            );
        }
        let mut names = self.names.clone();
        names.extend(other.names.iter().cloned());
        let mut merged = SimilarityTable::identity(&names);
        let a = self.len();
        for i in 0..a {
            for j in (i + 1)..a {
                merged.set(i, j, self.get(i, j));
            }
            merged.vuln_counts[i] = self.vuln_counts[i];
        }
        for i in 0..other.len() {
            for j in (i + 1)..other.len() {
                merged.set(a + i, a + j, other.get(i, j));
            }
            merged.vuln_counts[a + i] = other.vuln_counts[i];
        }
        merged
    }
}

impl fmt::Display for SimilarityTable {
    /// Renders the lower triangle in the paper's style:
    /// `sim (shared)` entries with vulnerability totals on the diagonal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.names.iter().map(|n| n.len()).max().unwrap_or(4).max(6);
        write!(f, "{:width$}", "")?;
        for name in &self.names {
            write!(f, " {name:>width$}")?;
        }
        writeln!(f)?;
        for (i, name) in self.names.iter().enumerate() {
            write!(f, "{name:width$}")?;
            for j in 0..=i {
                if i == j {
                    match self.vuln_count(i) {
                        Some(c) => write!(f, " {:>width$}", format!("1.0({c})"))?,
                        None => write!(f, " {:>width$}", "1.0")?,
                    }
                } else {
                    write!(f, " {:>width$.3}", self.get(i, j))?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basics() {
        let empty: BTreeSet<u32> = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
        let a: BTreeSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&a, &a), 1.0);
        let b: BTreeSet<u32> = [2, 3].into_iter().collect();
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identity_table() {
        let t = SimilarityTable::with_names(&["a", "b", "c"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(0, 1), 0.0);
    }

    #[test]
    fn set_is_symmetric_and_clamped() {
        let mut t = SimilarityTable::with_names(&["a", "b"]);
        t.set(0, 1, 0.7);
        assert_eq!(t.get(1, 0), 0.7);
        t.set(0, 1, 1.5);
        assert_eq!(t.get(0, 1), 1.0);
        t.set(0, 1, -0.5);
        assert_eq!(t.get(0, 1), 0.0);
    }

    #[test]
    fn diagonal_is_immutable() {
        let mut t = SimilarityTable::with_names(&["a"]);
        t.set(0, 0, 0.3);
        assert_eq!(t.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = SimilarityTable::with_names(&["a"]);
        t.get(0, 1);
    }

    #[test]
    fn name_lookup() {
        let mut t = SimilarityTable::with_names(&["win7", "ubuntu"]);
        assert!(t.set_by_name("win7", "ubuntu", 0.2));
        assert_eq!(t.get_by_name("ubuntu", "win7"), Some(0.2));
        assert_eq!(t.get_by_name("win7", "nope"), None);
        assert!(!t.set_by_name("nope", "win7", 0.1));
    }

    #[test]
    fn mean_off_diagonal() {
        let mut t = SimilarityTable::with_names(&["a", "b", "c"]);
        t.set(0, 1, 0.6);
        t.set(0, 2, 0.0);
        t.set(1, 2, 0.3);
        assert!((t.mean_off_diagonal() - 0.3).abs() < 1e-12);
        let single = SimilarityTable::with_names(&["a"]);
        assert_eq!(single.mean_off_diagonal(), 0.0);
    }

    #[test]
    fn disjoint_union_blocks() {
        let mut os = SimilarityTable::with_names(&["win7", "win10"]);
        os.set(0, 1, 0.124);
        os.set_vuln_count(0, 1028);
        let mut wb = SimilarityTable::with_names(&["ie8", "chrome"]);
        wb.set(0, 1, 0.0);
        let merged = os.disjoint_union(&wb);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.get_by_name("win7", "win10"), Some(0.124));
        assert_eq!(merged.get_by_name("win7", "chrome"), Some(0.0));
        assert_eq!(merged.vuln_count(0), Some(1028));
        assert_eq!(merged.get_by_name("ie8", "chrome"), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "present in both")]
    fn disjoint_union_rejects_duplicates() {
        let a = SimilarityTable::with_names(&["x"]);
        let b = SimilarityTable::with_names(&["x"]);
        a.disjoint_union(&b);
    }

    #[test]
    fn display_contains_counts() {
        let mut t = SimilarityTable::with_names(&["a", "b"]);
        t.set(0, 1, 0.5);
        t.set_vuln_count(0, 42);
        let rendered = t.to_string();
        assert!(rendered.contains("0.500"));
        assert!(rendered.contains("1.0(42)"));
    }
}
