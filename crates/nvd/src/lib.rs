//! An in-memory, NVD-like vulnerability database substrate.
//!
//! The DSN 2020 paper *"Scalable Approach to Enhancing ICS Resilience by
//! Network Diversity"* (Li, Feng, Hankin) estimates how likely a single
//! zero-day exploit is to compromise two different products by the **Jaccard
//! similarity of their vulnerability sets**, computed over CVE entries from
//! the National Vulnerability Database (NVD), with products identified by
//! Common Platform Enumeration (CPE) names.
//!
//! This crate reimplements that data pipeline without network access:
//!
//! * [`cpe`] — a CPE 2.2 URI parser/formatter (`cpe:/o:microsoft:windows_7`).
//! * [`cve`] — CVE identifiers and entries listing affected CPEs.
//! * [`database`] — an indexed store mapping products to vulnerability sets,
//!   supporting the prefix queries the paper uses to bucket versions.
//! * [`similarity`] — the Jaccard similarity metric (paper Definition 1) and
//!   dense symmetric [`similarity::SimilarityTable`]s.
//! * [`datasets`] — the similarity tables the paper **publishes** (Tables II
//!   and III) embedded as data, plus a synthetic database-server table with
//!   the same qualitative structure.
//! * [`feed`] — a seeded synthetic CVE feed generator used by tests and
//!   benchmarks to exercise the table-construction pipeline at scale.
//! * [`json`] — serde-based feed import/export (NVD feeds are JSON).
//!
//! # Quick start
//!
//! ```
//! use nvd::cpe::Cpe;
//! use nvd::cve::{CveEntry, CveId};
//! use nvd::database::VulnerabilityDatabase;
//!
//! # fn main() -> Result<(), nvd::Error> {
//! let mut db = VulnerabilityDatabase::new();
//! let win7: Cpe = "cpe:/o:microsoft:windows_7".parse()?;
//! let win81: Cpe = "cpe:/o:microsoft:windows_8.1".parse()?;
//! db.insert(CveEntry::new(CveId::new(2016, 7153)?, 2016, vec![win7.clone(), win81.clone()]));
//!
//! let sim = db.similarity(&win7, &win81);
//! assert_eq!(sim, 1.0); // the single CVE affects both products
//! # Ok(())
//! # }
//! ```

pub mod cpe;
pub mod cve;
pub mod database;
pub mod datasets;
pub mod feed;
pub mod json;
pub mod similarity;

mod error;

pub use error::Error;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;
