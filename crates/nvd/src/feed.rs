//! Synthetic CVE feed generation.
//!
//! Tests and benchmarks need NVD-like corpora of arbitrary size with
//! controllable overlap structure. [`FeedGenerator`] produces seeded,
//! reproducible feeds that mimic the statistical shape Section III of the
//! paper observes in real NVD data: products cluster into *families*
//! (shared code bases: Windows releases, Gecko browsers, ...); a
//! vulnerability usually affects one product, often several products of one
//! family, and rarely leaks across families.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cpe::{Cpe, Part};
use crate::cve::{CveEntry, CveId};
use crate::database::VulnerabilityDatabase;

/// Configuration for the synthetic feed generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedConfig {
    /// Number of product families (disjoint code bases).
    pub families: usize,
    /// Products per family (e.g. successive releases).
    pub products_per_family: usize,
    /// Total number of CVE entries to generate.
    pub entries: usize,
    /// Probability that a vulnerability spreads to each additional product
    /// *within* the family of its primary product.
    pub intra_family_spread: f64,
    /// Probability that a vulnerability also affects one product of a
    /// *different* family (the rare cross-vendor overlap the paper observes,
    /// e.g. Fedora/MacOS sharing exactly one CVE).
    pub cross_family_leak: f64,
    /// Publication year range (inclusive) assigned uniformly.
    pub years: (u16, u16),
}

impl Default for FeedConfig {
    fn default() -> FeedConfig {
        FeedConfig {
            families: 4,
            products_per_family: 4,
            entries: 1000,
            intra_family_spread: 0.3,
            cross_family_leak: 0.01,
            years: (1999, 2016),
        }
    }
}

/// A seeded generator of synthetic NVD feeds.
#[derive(Debug, Clone)]
pub struct FeedGenerator {
    config: FeedConfig,
    rng: StdRng,
}

impl FeedGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero families, zero products per
    /// family, or an inverted year range.
    pub fn new(config: FeedConfig, seed: u64) -> FeedGenerator {
        assert!(config.families > 0, "feed needs at least one family");
        assert!(
            config.products_per_family > 0,
            "feed needs at least one product per family"
        );
        assert!(config.years.0 <= config.years.1, "inverted year range");
        FeedGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The full synthetic product universe, family-major: family `f`,
    /// release `r` is `cpe:/a:vendor_f:product_f:r`.
    pub fn products(&self) -> Vec<Cpe> {
        let mut out = Vec::with_capacity(self.config.families * self.config.products_per_family);
        for f in 0..self.config.families {
            for r in 0..self.config.products_per_family {
                out.push(
                    Cpe::new(
                        Part::Application,
                        &format!("vendor{f}"),
                        &format!("product{f}"),
                        None,
                    )
                    .with_version(&r.to_string()),
                );
            }
        }
        out
    }

    /// Generates the configured number of CVE entries.
    pub fn generate(&mut self) -> Vec<CveEntry> {
        let products = self.products();
        let ppf = self.config.products_per_family;
        let (y0, y1) = self.config.years;
        let mut entries = Vec::with_capacity(self.config.entries);
        for seq in 0..self.config.entries {
            let year = self.rng.gen_range(y0..=y1);
            let family = self.rng.gen_range(0..self.config.families);
            let primary = self.rng.gen_range(0..ppf);
            let mut affected = vec![products[family * ppf + primary].clone()];
            for r in 0..ppf {
                if r != primary && self.rng.gen_bool(self.config.intra_family_spread) {
                    affected.push(products[family * ppf + r].clone());
                }
            }
            if self.config.families > 1 && self.rng.gen_bool(self.config.cross_family_leak) {
                let mut other = self.rng.gen_range(0..self.config.families - 1);
                if other >= family {
                    other += 1;
                }
                let release = self.rng.gen_range(0..ppf);
                affected.push(products[other * ppf + release].clone());
            }
            affected.shuffle(&mut self.rng);
            let id = CveId::new(year, seq as u32 + 1).expect("generated id is valid");
            let severity = self.rng.gen_range(2.0..10.0);
            entries.push(CveEntry::new(id, year, affected).with_cvss(severity));
        }
        entries
    }

    /// Generates and loads a database in one step.
    pub fn generate_database(&mut self) -> VulnerabilityDatabase {
        VulnerabilityDatabase::from_entries(self.generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = FeedConfig {
            entries: 200,
            ..FeedConfig::default()
        };
        let a = FeedGenerator::new(cfg.clone(), 7).generate();
        let b = FeedGenerator::new(cfg.clone(), 7).generate();
        let c = FeedGenerator::new(cfg, 8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn entry_count_and_year_window() {
        let cfg = FeedConfig {
            entries: 150,
            years: (2005, 2010),
            ..FeedConfig::default()
        };
        let entries = FeedGenerator::new(cfg, 1).generate();
        assert_eq!(entries.len(), 150);
        assert!(entries
            .iter()
            .all(|e| (2005..=2010).contains(&e.published())));
    }

    #[test]
    fn intra_family_similarity_exceeds_cross_family() {
        let cfg = FeedConfig {
            families: 3,
            products_per_family: 3,
            entries: 3000,
            intra_family_spread: 0.4,
            cross_family_leak: 0.02,
            years: (1999, 2016),
        };
        let mut gen = FeedGenerator::new(cfg, 42);
        let products = gen.products();
        let db = gen.generate_database();
        // Same-family pair (family 0, releases 0 and 1).
        let intra = db.similarity(&products[0], &products[1]);
        // Cross-family pair.
        let cross = db.similarity(&products[0], &products[3]);
        assert!(
            intra > 5.0 * cross.max(1e-9),
            "intra {intra} should dominate cross {cross}"
        );
        assert!(intra > 0.1);
    }

    #[test]
    fn zero_leak_means_zero_cross_family_similarity() {
        let cfg = FeedConfig {
            families: 2,
            products_per_family: 2,
            entries: 500,
            intra_family_spread: 0.5,
            cross_family_leak: 0.0,
            years: (1999, 2016),
        };
        let mut gen = FeedGenerator::new(cfg, 3);
        let products = gen.products();
        let db = gen.generate_database();
        assert_eq!(db.similarity(&products[0], &products[2]), 0.0);
        assert_eq!(db.similarity(&products[1], &products[3]), 0.0);
    }

    #[test]
    fn products_universe_size() {
        let cfg = FeedConfig {
            families: 5,
            products_per_family: 7,
            ..FeedConfig::default()
        };
        let gen = FeedGenerator::new(cfg, 0);
        assert_eq!(gen.products().len(), 35);
    }

    #[test]
    #[should_panic(expected = "at least one family")]
    fn zero_families_rejected() {
        FeedGenerator::new(
            FeedConfig {
                families: 0,
                ..FeedConfig::default()
            },
            0,
        );
    }

    #[test]
    fn similarity_table_from_synthetic_feed() {
        let mut gen = FeedGenerator::new(FeedConfig::default(), 11);
        let products = gen.products();
        let db = gen.generate_database();
        let named: Vec<(String, Cpe)> = products
            .iter()
            .map(|c| (c.to_string(), c.clone()))
            .collect();
        let table = db.similarity_table(&named);
        assert_eq!(table.len(), products.len());
        for i in 0..table.len() {
            assert_eq!(table.get(i, i), 1.0);
        }
    }
}
