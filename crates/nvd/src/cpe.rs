//! Common Platform Enumeration (CPE) 2.2 URIs.
//!
//! NVD entries identify affected products by CPE names such as
//! `cpe:/o:microsoft:windows_7` or `cpe:/a:google:chrome:50.0`. The paper
//! (Section III) relies on CPE both to bucket vulnerabilities per product and
//! to treat distinct versions as distinct products. This module implements
//! the small, well-formed subset of CPE 2.2 that the pipeline needs: the
//! `part`, `vendor`, `product` and optional `version` components.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::Error;

/// The `part` component of a CPE name: application, operating system or hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Part {
    /// `a` — an application (browsers, database servers, SCADA software, ...).
    Application,
    /// `o` — an operating system.
    OperatingSystem,
    /// `h` — a hardware device (PLCs, RTUs, ...).
    Hardware,
}

impl Part {
    /// The single-letter CPE code for this part.
    pub fn code(self) -> char {
        match self {
            Part::Application => 'a',
            Part::OperatingSystem => 'o',
            Part::Hardware => 'h',
        }
    }

    /// Parses a single-letter CPE part code.
    pub fn from_code(c: char) -> Option<Part> {
        match c {
            'a' => Some(Part::Application),
            'o' => Some(Part::OperatingSystem),
            'h' => Some(Part::Hardware),
            _ => None,
        }
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A parsed CPE 2.2 URI naming a product, e.g. `cpe:/o:microsoft:windows_7`.
///
/// The version component is optional; a CPE without a version (or with the
/// NVD convention `-`) matches every version of the product under
/// [`Cpe::matches`] prefix semantics.
///
/// ```
/// use nvd::cpe::{Cpe, Part};
///
/// # fn main() -> Result<(), nvd::Error> {
/// let cpe: Cpe = "cpe:/a:google:chrome:50.0".parse()?;
/// assert_eq!(cpe.part(), Part::Application);
/// assert_eq!(cpe.vendor(), "google");
/// assert_eq!(cpe.product(), "chrome");
/// assert_eq!(cpe.version(), Some("50.0"));
/// assert_eq!(cpe.to_string(), "cpe:/a:google:chrome:50.0");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cpe {
    part: Part,
    vendor: String,
    product: String,
    version: Option<String>,
}

impl Cpe {
    /// Creates a CPE from components. Components are lower-cased; spaces are
    /// replaced with underscores, matching NVD conventions.
    pub fn new(part: Part, vendor: &str, product: &str, version: Option<&str>) -> Cpe {
        Cpe {
            part,
            vendor: normalize(vendor),
            product: normalize(product),
            version: version.map(normalize),
        }
    }

    /// Convenience constructor for an application CPE.
    pub fn application(vendor: &str, product: &str) -> Cpe {
        Cpe::new(Part::Application, vendor, product, None)
    }

    /// Convenience constructor for an operating-system CPE.
    pub fn operating_system(vendor: &str, product: &str) -> Cpe {
        Cpe::new(Part::OperatingSystem, vendor, product, None)
    }

    /// Convenience constructor for a hardware CPE.
    pub fn hardware(vendor: &str, product: &str) -> Cpe {
        Cpe::new(Part::Hardware, vendor, product, None)
    }

    /// Returns a copy of this CPE with the given version component.
    pub fn with_version(&self, version: &str) -> Cpe {
        Cpe {
            version: Some(normalize(version)),
            ..self.clone()
        }
    }

    /// The part (application / OS / hardware).
    pub fn part(&self) -> Part {
        self.part
    }

    /// The vendor component.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The product component.
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The version component, if present. The NVD "any version" marker `-`
    /// is normalized away at parse time and reported as `None`.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// Prefix matching: `query.matches(entry)` is true when every component
    /// present in `query` equals the corresponding component of `entry`.
    ///
    /// A version-less query therefore matches all versions — this is exactly
    /// how the paper buckets "Windows 7" vulnerabilities with a
    /// `cpe:/o:microsoft:windows_7` query.
    ///
    /// ```
    /// use nvd::cpe::Cpe;
    /// # fn main() -> Result<(), nvd::Error> {
    /// let query: Cpe = "cpe:/a:google:chrome".parse()?;
    /// let entry: Cpe = "cpe:/a:google:chrome:50.0".parse()?;
    /// assert!(query.matches(&entry));
    /// assert!(!entry.matches(&query)); // versioned query requires the version
    /// # Ok(())
    /// # }
    /// ```
    pub fn matches(&self, entry: &Cpe) -> bool {
        if self.part != entry.part || self.vendor != entry.vendor || self.product != entry.product {
            return false;
        }
        match &self.version {
            None => true,
            Some(v) => entry.version.as_deref() == Some(v.as_str()),
        }
    }

    /// The version-less product key, used to group all versions of a product.
    pub fn product_key(&self) -> Cpe {
        Cpe {
            part: self.part,
            vendor: self.vendor.clone(),
            product: self.product.clone(),
            version: None,
        }
    }
}

fn normalize(s: &str) -> String {
    s.trim().to_ascii_lowercase().replace([' ', '\t'], "_")
}

impl fmt::Display for Cpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpe:/{}:{}:{}", self.part, self.vendor, self.product)?;
        if let Some(v) = &self.version {
            write!(f, ":{v}")?;
        }
        Ok(())
    }
}

impl FromStr for Cpe {
    type Err = Error;

    /// Parses a CPE 2.2 URI of the form
    /// `cpe:/{part}:{vendor}:{product}[:{version}[:...]]`.
    ///
    /// Trailing components beyond the version (update, edition, language) are
    /// accepted and ignored; the NVD "any" marker `-` or an empty version is
    /// treated as no version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseCpe`] if the prefix, part code, or a mandatory
    /// component is missing.
    fn from_str(s: &str) -> Result<Cpe, Error> {
        let err = |reason| Error::ParseCpe {
            input: s.to_owned(),
            reason,
        };
        let rest = s
            .trim()
            .strip_prefix("cpe:/")
            .ok_or_else(|| err("missing `cpe:/` prefix"))?;
        let mut parts = rest.split(':');
        let part_str = parts.next().ok_or_else(|| err("missing part"))?;
        if part_str.chars().count() != 1 {
            return Err(err("part must be a single character (a, o or h)"));
        }
        let part = Part::from_code(part_str.chars().next().unwrap())
            .ok_or_else(|| err("part must be one of a, o, h"))?;
        let vendor = parts
            .next()
            .filter(|v| !v.is_empty())
            .ok_or_else(|| err("missing vendor"))?;
        let product = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| err("missing product"))?;
        let version = parts.next().filter(|v| !v.is_empty() && *v != "-");
        Ok(Cpe::new(part, vendor, product, version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_os_cpe() {
        let cpe: Cpe = "cpe:/o:microsoft:windows_7".parse().unwrap();
        assert_eq!(cpe.part(), Part::OperatingSystem);
        assert_eq!(cpe.vendor(), "microsoft");
        assert_eq!(cpe.product(), "windows_7");
        assert_eq!(cpe.version(), None);
    }

    #[test]
    fn parse_versioned_cpe_and_roundtrip() {
        let cpe: Cpe = "cpe:/a:mozilla:firefox:45.0".parse().unwrap();
        assert_eq!(cpe.version(), Some("45.0"));
        let reparsed: Cpe = cpe.to_string().parse().unwrap();
        assert_eq!(cpe, reparsed);
    }

    #[test]
    fn parse_dash_version_is_any() {
        // NVD uses `-` as in `cpe:/a:microsoft:edge:-` for "any version".
        let cpe: Cpe = "cpe:/a:microsoft:edge:-".parse().unwrap();
        assert_eq!(cpe.version(), None);
    }

    #[test]
    fn parse_ignores_trailing_components() {
        let cpe: Cpe = "cpe:/o:canonical:ubuntu_linux:14.04:lts:~~~x64~~"
            .parse()
            .unwrap();
        assert_eq!(cpe.version(), Some("14.04"));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<Cpe>().is_err());
        assert!("cpe:/x:a:b".parse::<Cpe>().is_err());
        assert!("cpe:/a".parse::<Cpe>().is_err());
        assert!("cpe:/a:vendor".parse::<Cpe>().is_err());
        assert!("cpe:2.3:a:vendor:product".parse::<Cpe>().is_err());
        assert!("cpe:/aa:vendor:product".parse::<Cpe>().is_err());
    }

    #[test]
    fn error_display_mentions_input() {
        let err = "bogus".parse::<Cpe>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn normalization_lowercases_and_underscores() {
        let cpe = Cpe::new(
            Part::Application,
            "Microsoft",
            "Internet Explorer",
            Some("8"),
        );
        assert_eq!(cpe.vendor(), "microsoft");
        assert_eq!(cpe.product(), "internet_explorer");
        assert_eq!(cpe.to_string(), "cpe:/a:microsoft:internet_explorer:8");
    }

    #[test]
    fn prefix_matching_semantics() {
        let any: Cpe = "cpe:/o:microsoft:windows_10".parse().unwrap();
        let v1 = any.with_version("1607");
        let v2 = any.with_version("1703");
        assert!(any.matches(&v1));
        assert!(any.matches(&v2));
        assert!(any.matches(&any));
        assert!(!v1.matches(&v2));
        assert!(!v1.matches(&any));
        let other: Cpe = "cpe:/o:microsoft:windows_8.1".parse().unwrap();
        assert!(!any.matches(&other));
    }

    #[test]
    fn product_key_strips_version() {
        let v: Cpe = "cpe:/a:google:chrome:50.0".parse().unwrap();
        assert_eq!(v.product_key().to_string(), "cpe:/a:google:chrome");
    }

    #[test]
    fn part_codes_roundtrip() {
        for part in [Part::Application, Part::OperatingSystem, Part::Hardware] {
            assert_eq!(Part::from_code(part.code()), Some(part));
        }
        assert_eq!(Part::from_code('z'), None);
    }

    #[test]
    fn ordering_is_stable() {
        let a: Cpe = "cpe:/a:google:chrome".parse().unwrap();
        let o: Cpe = "cpe:/o:google:chrome".parse().unwrap();
        assert!(a < o); // Application sorts before OperatingSystem
    }
}
