//! JSON feed import/export.
//!
//! NVD publishes its data as JSON feeds; this module provides a compact
//! NVD-like JSON representation so databases can be persisted, shipped as
//! fixtures and diffed. The schema is intentionally minimal:
//!
//! ```json
//! {
//!   "entries": [
//!     {
//!       "id": "CVE-2016-7153",
//!       "published": 2016,
//!       "affected": ["cpe:/a:microsoft:edge", "cpe:/a:google:chrome"],
//!       "cvss": 4.3,
//!       "description": "..."
//!     }
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::cpe::Cpe;
use crate::cve::{CveEntry, CveId};
use crate::database::VulnerabilityDatabase;
use crate::{Error, Result};

#[derive(Serialize, Deserialize)]
struct FeedDoc {
    entries: Vec<EntryDoc>,
}

#[derive(Serialize, Deserialize)]
struct EntryDoc {
    id: String,
    published: u16,
    affected: Vec<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cvss: Option<f64>,
    #[serde(default, skip_serializing_if = "String::is_empty")]
    description: String,
}

/// Serializes a database to the JSON feed format.
///
/// # Errors
///
/// Returns [`Error::Json`] if serialization fails (it cannot for well-formed
/// databases; the error path exists for API completeness).
pub fn to_json(db: &VulnerabilityDatabase) -> Result<String> {
    let doc = FeedDoc {
        entries: db
            .iter()
            .map(|e| EntryDoc {
                id: e.id().to_string(),
                published: e.published(),
                affected: e.affected().iter().map(Cpe::to_string).collect(),
                cvss: e.cvss().map(|c| c.score()),
                description: e.description().to_owned(),
            })
            .collect(),
    };
    Ok(serde_json::to_string_pretty(&doc)?)
}

/// Parses a JSON feed into a database.
///
/// # Errors
///
/// Returns [`Error::Json`] for malformed JSON and [`Error::ParseCpe`] /
/// [`Error::ParseCveId`] for malformed identifiers inside the feed.
pub fn from_json(json: &str) -> Result<VulnerabilityDatabase> {
    let doc: FeedDoc = serde_json::from_str(json)?;
    let mut db = VulnerabilityDatabase::new();
    for entry in doc.entries {
        let id: CveId = entry.id.parse()?;
        let affected = entry
            .affected
            .iter()
            .map(|s| s.parse::<Cpe>())
            .collect::<std::result::Result<Vec<_>, Error>>()?;
        let mut e = CveEntry::new(id, entry.published, affected);
        if let Some(score) = entry.cvss {
            e = e.with_cvss(score);
        }
        if !entry.description.is_empty() {
            e = e.with_description(&entry.description);
        }
        db.insert(e);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::{FeedConfig, FeedGenerator};

    #[test]
    fn roundtrip_preserves_database() {
        let mut gen = FeedGenerator::new(
            FeedConfig {
                entries: 50,
                ..FeedConfig::default()
            },
            5,
        );
        let db = gen.generate_database();
        let json = to_json(&db).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), db.len());
        for entry in db.iter() {
            let restored = back.get(entry.id()).expect("entry survives roundtrip");
            assert_eq!(restored.published(), entry.published());
            assert_eq!(restored.affected(), entry.affected());
        }
    }

    #[test]
    fn parses_nvd_style_document() {
        let json = r#"{
            "entries": [
                {
                    "id": "CVE-2016-7153",
                    "published": 2016,
                    "affected": [
                        "cpe:/a:microsoft:edge:-",
                        "cpe:/a:microsoft:internet_explorer:-",
                        "cpe:/a:google:chrome:-",
                        "cpe:/a:apple:safari",
                        "cpe:/a:mozilla:firefox",
                        "cpe:/a:opera:opera_browser:-"
                    ],
                    "cvss": 4.3,
                    "description": "HEIST: HTTP encrypted information can be stolen"
                }
            ]
        }"#;
        let db = from_json(json).unwrap();
        assert_eq!(db.len(), 1);
        let edge: Cpe = "cpe:/a:microsoft:edge".parse().unwrap();
        let chrome: Cpe = "cpe:/a:google:chrome".parse().unwrap();
        assert_eq!(db.similarity(&edge, &chrome), 1.0);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{").is_err());
        assert!(from_json(r#"{"entries": [{"id": "garbage", "published": 2000, "affected": []}]}"#)
            .is_err());
        assert!(from_json(
            r#"{"entries": [{"id": "CVE-2016-1", "published": 2000, "affected": ["nope"]}]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_feed() {
        let db = from_json(r#"{"entries": []}"#).unwrap();
        assert!(db.is_empty());
        let json = to_json(&db).unwrap();
        assert!(json.contains("entries"));
    }
}
