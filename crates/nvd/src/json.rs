//! JSON feed import/export.
//!
//! NVD publishes its data as JSON feeds; this module provides a compact
//! NVD-like JSON representation so databases can be persisted, shipped as
//! fixtures and diffed. The schema is intentionally minimal:
//!
//! ```json
//! {
//!   "entries": [
//!     {
//!       "id": "CVE-2016-7153",
//!       "published": 2016,
//!       "affected": ["cpe:/a:microsoft:edge", "cpe:/a:google:chrome"],
//!       "cvss": 4.3,
//!       "description": "..."
//!     }
//!   ]
//! }
//! ```
//!
//! The codec is hand-rolled (the build environment is offline, so
//! `serde_json` is unavailable): a recursive-descent parser into a small
//! `Value` tree and a direct pretty-printer. Both are total over the
//! schema above and reject anything malformed with [`Error::Json`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cpe::Cpe;
use crate::cve::{CveEntry, CveId};
use crate::database::VulnerabilityDatabase;
use crate::{Error, Result};

/// Serializes a database to the JSON feed format.
///
/// # Errors
///
/// Returns [`Error::Json`] if serialization fails (it cannot for well-formed
/// databases; the error path exists for API completeness).
pub fn to_json(db: &VulnerabilityDatabase) -> Result<String> {
    let mut out = String::from("{\n  \"entries\": [");
    let mut first = true;
    for e in db.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"id\": {},", quote(&e.id().to_string()));
        let _ = write!(out, "      \"published\": {}", e.published());
        let mut affected = String::new();
        for (i, cpe) in e.affected().iter().enumerate() {
            if i > 0 {
                affected.push_str(", ");
            }
            affected.push_str(&quote(&cpe.to_string()));
        }
        let _ = write!(out, ",\n      \"affected\": [{affected}]");
        if let Some(cvss) = e.cvss() {
            let _ = write!(out, ",\n      \"cvss\": {}", format_number(cvss.score()));
        }
        if !e.description().is_empty() {
            let _ = write!(out, ",\n      \"description\": {}", quote(e.description()));
        }
        out.push_str("\n    }");
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    Ok(out)
}

/// Parses a JSON feed into a database.
///
/// # Errors
///
/// Returns [`Error::Json`] for malformed JSON and [`Error::ParseCpe`] /
/// [`Error::ParseCveId`] for malformed identifiers inside the feed.
pub fn from_json(json: &str) -> Result<VulnerabilityDatabase> {
    let doc = parse_value(json)?;
    let obj = doc.as_object("feed document")?;
    let entries = obj
        .get("entries")
        .ok_or_else(|| Error::Json("missing `entries` array".into()))?
        .as_array("entries")?;
    let mut db = VulnerabilityDatabase::new();
    for entry in entries {
        let entry = entry.as_object("entry")?;
        let id: CveId = entry
            .get("id")
            .ok_or_else(|| Error::Json("entry missing `id`".into()))?
            .as_str("id")?
            .parse()?;
        let published = entry
            .get("published")
            .ok_or_else(|| Error::Json("entry missing `published`".into()))?
            .as_number("published")?;
        if published < 0.0 || published > u16::MAX as f64 || published.fract() != 0.0 {
            return Err(Error::Json(format!("bad `published` year {published}")));
        }
        let affected = entry
            .get("affected")
            .ok_or_else(|| Error::Json("entry missing `affected`".into()))?
            .as_array("affected")?
            .iter()
            .map(|v| v.as_str("affected entry")?.parse::<Cpe>())
            .collect::<Result<Vec<_>>>()?;
        let mut e = CveEntry::new(id, published as u16, affected);
        if let Some(score) = entry.get("cvss") {
            e = e.with_cvss(score.as_number("cvss")?);
        }
        if let Some(desc) = entry.get("description") {
            let desc = desc.as_str("description")?;
            if !desc.is_empty() {
                e = e.with_description(desc);
            }
        }
        db.insert(e);
    }
    Ok(db)
}

/// A parsed JSON value (internal; just enough for the feed schema).
enum Value {
    Null,
    #[allow(dead_code)] // parsed for completeness; the feed schema has no booleans
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Ok(m),
            other => Err(Error::Json(format!(
                "{what}: expected object, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value]> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(Error::Json(format!(
                "{what}: expected array, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::Json(format!(
                "{what}: expected string, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_number(&self, what: &str) -> Result<f64> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(Error::Json(format!(
                "{what}: expected number, got {}",
                other.type_name()
            ))),
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}.0", n as i64)
    } else {
        format!("{n}")
    }
}

fn parse_value(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::Json(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::Json(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the feed
                            // schema; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting one byte back.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::{FeedConfig, FeedGenerator};

    #[test]
    fn roundtrip_preserves_database() {
        let mut gen = FeedGenerator::new(
            FeedConfig {
                entries: 50,
                ..FeedConfig::default()
            },
            5,
        );
        let db = gen.generate_database();
        let json = to_json(&db).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), db.len());
        for entry in db.iter() {
            let restored = back.get(entry.id()).expect("entry survives roundtrip");
            assert_eq!(restored.published(), entry.published());
            assert_eq!(restored.affected(), entry.affected());
        }
    }

    #[test]
    fn parses_nvd_style_document() {
        let json = r#"{
            "entries": [
                {
                    "id": "CVE-2016-7153",
                    "published": 2016,
                    "affected": [
                        "cpe:/a:microsoft:edge:-",
                        "cpe:/a:microsoft:internet_explorer:-",
                        "cpe:/a:google:chrome:-",
                        "cpe:/a:apple:safari",
                        "cpe:/a:mozilla:firefox",
                        "cpe:/a:opera:opera_browser:-"
                    ],
                    "cvss": 4.3,
                    "description": "HEIST: HTTP encrypted information can be stolen"
                }
            ]
        }"#;
        let db = from_json(json).unwrap();
        assert_eq!(db.len(), 1);
        let edge: Cpe = "cpe:/a:microsoft:edge".parse().unwrap();
        let chrome: Cpe = "cpe:/a:google:chrome".parse().unwrap();
        assert_eq!(db.similarity(&edge, &chrome), 1.0);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{").is_err());
        assert!(from_json(
            r#"{"entries": [{"id": "garbage", "published": 2000, "affected": []}]}"#
        )
        .is_err());
        assert!(from_json(
            r#"{"entries": [{"id": "CVE-2016-1", "published": 2000, "affected": ["nope"]}]}"#
        )
        .is_err());
        // Type confusion and structural damage are JSON-level errors.
        assert!(from_json(r#"{"entries": 3}"#).is_err());
        assert!(
            from_json(r#"{"entries": [{"id": 7, "published": 2000, "affected": []}]}"#).is_err()
        );
        assert!(from_json(r#"{"entries": []} trailing"#).is_err());
    }

    #[test]
    fn empty_feed() {
        let db = from_json(r#"{"entries": []}"#).unwrap();
        assert!(db.is_empty());
        let json = to_json(&db).unwrap();
        assert!(json.contains("entries"));
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let quoted = quote("a\"b\\c\nd\te");
        assert_eq!(quoted, r#""a\"b\\c\nd\te""#);
        let v = parse_value(&format!("[{quoted}]")).unwrap();
        match v {
            Value::Array(items) => match &items[0] {
                Value::String(s) => assert_eq!(s, "a\"b\\c\nd\te"),
                _ => panic!("expected string"),
            },
            _ => panic!("expected array"),
        }
    }
}
