//! The similarity tables the paper publishes, embedded as data.
//!
//! Section III of the paper tabulates pairwise Jaccard vulnerability
//! similarities computed from NVD over 1999–2016 for nine operating systems
//! (Table II) and eight web browsers (Table III). Reproducing those numbers
//! requires a byte-identical historical NVD snapshot, so this module embeds
//! the published values directly; the *pipeline* that produces such tables
//! from raw CVE data is exercised against the synthetic feeds in
//! [`crate::feed`].
//!
//! The case study additionally needs a database-server table whose numbers
//! the paper does not publish ("obtained in the same way"); [`db_table`]
//! supplies a synthetic table with the same qualitative structure:
//! same-vendor product lines overlap substantially, forked lineages
//! (MySQL/MariaDB) overlap moderately, and unrelated vendors share ≈ 0.

use crate::similarity::SimilarityTable;

/// Canonical product names for the paper's Table II (operating systems).
pub const OS_PRODUCTS: [&str; 9] = [
    "WinXP",
    "Win7",
    "Win8.1",
    "Win10",
    "Ubuntu14.04",
    "Debian8.0",
    "MacOS10.5",
    "Suse13.2",
    "Fedora",
];

/// Canonical product names for the paper's Table III (web browsers).
pub const BROWSER_PRODUCTS: [&str; 8] = [
    "IE8",
    "IE10",
    "Edge",
    "Chrome50",
    "Firefox",
    "Safari",
    "SeaMonkey",
    "Opera",
];

/// Product names for the synthetic database-server table used by the case
/// study (Table IV services `s3`).
pub const DB_PRODUCTS: [&str; 4] = ["MSSQL08", "MSSQL14", "MySQL5.5", "MariaDB10"];

/// Paper Table II: pairwise vulnerability similarity of nine common
/// operating systems, computed from NVD data 1999–2016.
///
/// Diagonal vulnerability totals and all off-diagonal similarities are the
/// published values.
///
/// ```
/// let os = nvd::datasets::os_table();
/// // Windows 10 shares no recorded vulnerability with Windows XP...
/// assert_eq!(os.get_by_name("Win10", "WinXP"), Some(0.0));
/// // ...but is highly similar to Windows 8.1.
/// assert_eq!(os.get_by_name("Win10", "Win8.1"), Some(0.697));
/// ```
pub fn os_table() -> SimilarityTable {
    let mut t = SimilarityTable::with_names(&OS_PRODUCTS);
    let counts = [479usize, 1028, 572, 453, 612, 519, 424, 492, 367];
    for (i, c) in counts.into_iter().enumerate() {
        t.set_vuln_count(i, c);
    }
    // (row, col, similarity) for every non-zero published pair.
    let pairs: &[(&str, &str, f64)] = &[
        ("Win7", "WinXP", 0.278),
        ("Win8.1", "WinXP", 0.009),
        ("Win8.1", "Win7", 0.228),
        ("Win10", "Win7", 0.124),
        ("Win10", "Win8.1", 0.697),
        ("Debian8.0", "Ubuntu14.04", 0.208),
        ("MacOS10.5", "Win7", 0.081),
        ("Suse13.2", "Ubuntu14.04", 0.170),
        ("Suse13.2", "Debian8.0", 0.112),
        ("Fedora", "Ubuntu14.04", 0.083),
        ("Fedora", "Debian8.0", 0.049),
        ("Fedora", "MacOS10.5", 0.001),
        ("Fedora", "Suse13.2", 0.116),
    ];
    for (a, b, s) in pairs {
        assert!(t.set_by_name(a, b, *s));
    }
    t
}

/// Paper Table III: pairwise vulnerability similarity of eight common web
/// browsers, computed from NVD data 1999–2016.
///
/// The Opera/SeaMonkey cell is unreadable in the published table (the PDF
/// extraction collides it with the SeaMonkey diagonal); we encode it as 0,
/// consistent with every other cross-engine pair in the row.
pub fn browser_table() -> SimilarityTable {
    let mut t = SimilarityTable::with_names(&BROWSER_PRODUCTS);
    let counts = [349usize, 513, 194, 1661, 1502, 766, 492, 225];
    for (i, c) in counts.into_iter().enumerate() {
        t.set_vuln_count(i, c);
    }
    let pairs: &[(&str, &str, f64)] = &[
        ("IE10", "IE8", 0.386),
        ("Edge", "IE8", 0.014),
        ("Edge", "IE10", 0.121),
        ("Chrome50", "Edge", 0.001),
        ("Firefox", "Edge", 0.001),
        ("Firefox", "Chrome50", 0.005),
        ("Safari", "Edge", 0.002),
        ("Safari", "Chrome50", 0.009),
        ("Safari", "Firefox", 0.003),
        ("SeaMonkey", "Chrome50", 0.001),
        ("SeaMonkey", "Firefox", 0.450),
        ("SeaMonkey", "Safari", 0.001),
        ("Opera", "Edge", 0.003),
        ("Opera", "Chrome50", 0.003),
        ("Opera", "Firefox", 0.004),
        ("Opera", "Safari", 0.004),
    ];
    for (a, b, s) in pairs {
        assert!(t.set_by_name(a, b, *s));
    }
    t
}

/// Synthetic database-server similarity table (see module docs).
///
/// Structure: the two Microsoft SQL Server releases overlap the way the
/// Windows releases in Table II do (adjacent releases of one code base);
/// MariaDB is a fork of MySQL so they overlap like Firefox/SeaMonkey do in
/// Table III (shared engine, diverging code bases); cross-vendor pairs are
/// ≈ 0 like every cross-vendor pair in the published tables.
pub fn db_table() -> SimilarityTable {
    let mut t = SimilarityTable::with_names(&DB_PRODUCTS);
    let counts = [96usize, 45, 412, 188];
    for (i, c) in counts.into_iter().enumerate() {
        t.set_vuln_count(i, c);
    }
    let pairs: &[(&str, &str, f64)] = &[
        ("MSSQL14", "MSSQL08", 0.24),
        ("MariaDB10", "MySQL5.5", 0.31),
        ("MySQL5.5", "MSSQL08", 0.002),
        ("MySQL5.5", "MSSQL14", 0.001),
        ("MariaDB10", "MSSQL08", 0.001),
        ("MariaDB10", "MSSQL14", 0.001),
    ];
    for (a, b, s) in pairs {
        assert!(t.set_by_name(a, b, *s));
    }
    t
}

/// The union table covering every product the Stuxnet case study (paper
/// Table IV) can assign: four OSes, three browsers and four database
/// servers. Cross-service similarities are 0 (an OS exploit does not apply
/// to a browser).
pub fn case_study_table() -> SimilarityTable {
    let os = os_table();
    let wb = browser_table();
    let db = db_table();
    // Restrict the published tables to the products Table IV offers.
    let os_sub = project(&os, &["WinXP", "Win7", "Ubuntu14.04", "Debian8.0"]);
    let wb_sub = project(&wb, &["IE8", "IE10", "Chrome50"]);
    os_sub.disjoint_union(&wb_sub).disjoint_union(&db)
}

/// Projects a table onto a subset of its products, preserving pairwise
/// similarities and vulnerability counts.
///
/// # Panics
///
/// Panics if a requested name is not present in `table`.
pub fn project(table: &SimilarityTable, names: &[&str]) -> SimilarityTable {
    let idx: Vec<usize> = names
        .iter()
        .map(|n| {
            table
                .index_of(n)
                .unwrap_or_else(|| panic!("unknown product {n:?}"))
        })
        .collect();
    let mut out = SimilarityTable::with_names(names);
    for (a, &i) in idx.iter().enumerate() {
        if let Some(c) = table.vuln_count(i) {
            out.set_vuln_count(a, c);
        }
        for (b, &j) in idx.iter().enumerate().skip(a + 1) {
            out.set(a, b, table.get(i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_table_matches_published_values() {
        let t = os_table();
        assert_eq!(t.len(), 9);
        assert_eq!(t.get_by_name("Win7", "WinXP"), Some(0.278));
        assert_eq!(t.get_by_name("WinXP", "Win7"), Some(0.278)); // symmetric
        assert_eq!(t.get_by_name("Win10", "Win8.1"), Some(0.697));
        assert_eq!(t.get_by_name("Win10", "WinXP"), Some(0.0));
        assert_eq!(t.get_by_name("Ubuntu14.04", "Win7"), Some(0.0));
        assert_eq!(t.get_by_name("Debian8.0", "Ubuntu14.04"), Some(0.208));
        assert_eq!(t.get_by_name("Fedora", "Suse13.2"), Some(0.116));
        assert_eq!(t.vuln_count(t.index_of("Win7").unwrap()), Some(1028));
    }

    #[test]
    fn browser_table_matches_published_values() {
        let t = browser_table();
        assert_eq!(t.len(), 8);
        assert_eq!(t.get_by_name("IE10", "IE8"), Some(0.386));
        assert_eq!(t.get_by_name("SeaMonkey", "Firefox"), Some(0.450));
        assert_eq!(t.get_by_name("Chrome50", "IE8"), Some(0.0));
        assert_eq!(t.get_by_name("Edge", "IE10"), Some(0.121));
        assert_eq!(t.vuln_count(t.index_of("Chrome50").unwrap()), Some(1661));
    }

    #[test]
    fn all_tables_are_valid_similarities() {
        for t in [os_table(), browser_table(), db_table(), case_study_table()] {
            for i in 0..t.len() {
                assert_eq!(t.get(i, i), 1.0);
                for j in 0..t.len() {
                    let s = t.get(i, j);
                    assert!((0.0..=1.0).contains(&s));
                    assert_eq!(s, t.get(j, i));
                }
            }
        }
    }

    #[test]
    fn db_table_structure() {
        let t = db_table();
        // Same-lineage pairs overlap, cross-vendor pairs are near zero.
        assert!(t.get_by_name("MSSQL14", "MSSQL08").unwrap() > 0.1);
        assert!(t.get_by_name("MariaDB10", "MySQL5.5").unwrap() > 0.1);
        assert!(t.get_by_name("MySQL5.5", "MSSQL08").unwrap() < 0.01);
    }

    #[test]
    fn case_study_table_covers_table_iv() {
        let t = case_study_table();
        assert_eq!(t.len(), 4 + 3 + 4);
        // Values survive projection and union.
        assert_eq!(t.get_by_name("Win7", "WinXP"), Some(0.278));
        assert_eq!(t.get_by_name("IE10", "IE8"), Some(0.386));
        // Cross-service similarity is zero.
        assert_eq!(t.get_by_name("Win7", "IE8"), Some(0.0));
        assert_eq!(t.get_by_name("Chrome50", "MySQL5.5"), Some(0.0));
    }

    #[test]
    fn project_preserves_counts() {
        let t = project(&os_table(), &["Win7", "Win10"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_by_name("Win7", "Win10"), Some(0.124));
        assert_eq!(t.vuln_count(0), Some(1028));
        assert_eq!(t.vuln_count(1), Some(453));
    }

    #[test]
    #[should_panic(expected = "unknown product")]
    fn project_rejects_unknown_names() {
        project(&os_table(), &["BeOS"]);
    }

    #[test]
    fn windows_family_is_more_similar_than_cross_vendor() {
        // The qualitative claim of Section III: same-vendor products overlap
        // far more than cross-vendor ones.
        let t = os_table();
        let same = t.get_by_name("Win7", "WinXP").unwrap();
        let cross = t.get_by_name("Win7", "Ubuntu14.04").unwrap();
        assert!(same > cross);
    }
}
