//! The indexed vulnerability store.
//!
//! [`VulnerabilityDatabase`] plays the role of the authors' CVE-SEARCH-based
//! tooling: it ingests CVE entries and answers the two queries the similarity
//! pipeline needs — *the vulnerability set of a product* (by CPE prefix
//! query) and *the Jaccard similarity of two products* (paper Definition 1).

use std::collections::{BTreeMap, BTreeSet};

use crate::cpe::Cpe;
use crate::cve::{CveEntry, CveId};
use crate::similarity::{jaccard, weighted_jaccard, SimilarityTable};

/// An in-memory NVD-like database indexed by product.
///
/// ```
/// use nvd::cpe::Cpe;
/// use nvd::cve::{CveEntry, CveId};
/// use nvd::database::VulnerabilityDatabase;
///
/// # fn main() -> Result<(), nvd::Error> {
/// let mut db = VulnerabilityDatabase::new();
/// let ie: Cpe = "cpe:/a:microsoft:internet_explorer:8".parse()?;
/// let edge: Cpe = "cpe:/a:microsoft:edge".parse()?;
/// db.insert(CveEntry::new(CveId::new(2016, 7153)?, 2016, vec![ie.clone(), edge.clone()]));
/// db.insert(CveEntry::new(CveId::new(2016, 3351)?, 2016, vec![ie.clone()]));
///
/// assert_eq!(db.vulnerabilities_of(&ie).len(), 2);
/// assert_eq!(db.shared_count(&ie, &edge), 1);
/// assert!((db.similarity(&ie, &edge) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct VulnerabilityDatabase {
    entries: BTreeMap<CveId, CveEntry>,
    // Exact-CPE inverted index: CPE as stored in entries -> CVE ids.
    by_cpe: BTreeMap<Cpe, BTreeSet<CveId>>,
}

impl VulnerabilityDatabase {
    /// Creates an empty database.
    pub fn new() -> VulnerabilityDatabase {
        VulnerabilityDatabase::default()
    }

    /// Builds a database from an iterator of entries.
    pub fn from_entries<I: IntoIterator<Item = CveEntry>>(entries: I) -> VulnerabilityDatabase {
        let mut db = VulnerabilityDatabase::new();
        db.extend(entries);
        db
    }

    /// Inserts an entry, replacing any previous entry with the same id.
    /// Returns the replaced entry, if any.
    pub fn insert(&mut self, entry: CveEntry) -> Option<CveEntry> {
        let prev = self.entries.remove(&entry.id());
        if let Some(old) = &prev {
            for cpe in old.affected() {
                if let Some(set) = self.by_cpe.get_mut(cpe) {
                    set.remove(&old.id());
                    if set.is_empty() {
                        self.by_cpe.remove(cpe);
                    }
                }
            }
        }
        for cpe in entry.affected() {
            self.by_cpe
                .entry(cpe.clone())
                .or_default()
                .insert(entry.id());
        }
        self.entries.insert(entry.id(), entry);
        prev
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: CveId) -> Option<&CveEntry> {
        self.entries.get(&id)
    }

    /// Iterates over all entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CveEntry> {
        self.entries.values()
    }

    /// The set of CVE ids whose affected list contains a CPE matched by
    /// `query` (prefix semantics — a version-less query aggregates all
    /// versions, exactly like the paper's CPE search buckets).
    pub fn vulnerabilities_of(&self, query: &Cpe) -> BTreeSet<CveId> {
        // Range over the inverted index: all stored CPEs sharing the
        // (part, vendor, product) triple sort contiguously because version
        // is the last sort key.
        let lo = query.product_key();
        self.by_cpe
            .range(lo.clone()..)
            .take_while(|(cpe, _)| cpe.product_key() == lo)
            .filter(|(cpe, _)| query.matches(cpe))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Number of vulnerabilities affecting `query`.
    pub fn vulnerability_count(&self, query: &Cpe) -> usize {
        self.vulnerabilities_of(query).len()
    }

    /// Number of vulnerabilities shared by two products.
    pub fn shared_count(&self, a: &Cpe, b: &Cpe) -> usize {
        let va = self.vulnerabilities_of(a);
        let vb = self.vulnerabilities_of(b);
        va.intersection(&vb).count()
    }

    /// The Jaccard vulnerability similarity of two products
    /// (paper Definition 1): `|Va ∩ Vb| / |Va ∪ Vb|`.
    ///
    /// Returns 0 when both products have empty vulnerability sets; the paper
    /// never divides by zero because it only tabulates products with CVEs,
    /// but a library must define the corner case.
    pub fn similarity(&self, a: &Cpe, b: &Cpe) -> f64 {
        let va = self.vulnerabilities_of(a);
        let vb = self.vulnerabilities_of(b);
        jaccard(&va, &vb)
    }

    /// CVSS-weighted vulnerability similarity: shared vulnerabilities count
    /// proportionally to their severity score (unscored entries weigh 0).
    /// See [`crate::similarity::weighted_jaccard`].
    pub fn weighted_similarity(&self, a: &Cpe, b: &Cpe) -> f64 {
        let va = self.vulnerabilities_of(a);
        let vb = self.vulnerabilities_of(b);
        let weights: std::collections::BTreeMap<CveId, f64> = va
            .union(&vb)
            .filter_map(|&id| self.get(id).and_then(|e| e.cvss()).map(|c| (id, c.score())))
            .collect();
        weighted_jaccard(&va, &vb, &weights)
    }

    /// Restricts the database to entries published in `[from, to]` inclusive
    /// — the paper uses the 1999–2016 window.
    pub fn filter_years(&self, from: u16, to: u16) -> VulnerabilityDatabase {
        VulnerabilityDatabase::from_entries(
            self.iter()
                .filter(|e| e.published() >= from && e.published() <= to)
                .cloned(),
        )
    }

    /// Builds a dense similarity table over the given products (named by
    /// display strings), the artifact the optimizer consumes. Product names
    /// are the CPE display strings unless `names` supplies shorter labels.
    pub fn similarity_table(&self, products: &[(String, Cpe)]) -> SimilarityTable {
        let names: Vec<String> = products.iter().map(|(n, _)| n.clone()).collect();
        let sets: Vec<BTreeSet<CveId>> = products
            .iter()
            .map(|(_, c)| self.vulnerabilities_of(c))
            .collect();
        let mut table = SimilarityTable::identity(&names);
        for i in 0..products.len() {
            for j in (i + 1)..products.len() {
                let s = jaccard(&sets[i], &sets[j]);
                table.set(i, j, s);
            }
        }
        for (i, set) in sets.iter().enumerate() {
            table.set_vuln_count(i, set.len());
        }
        table
    }
}

impl Extend<CveEntry> for VulnerabilityDatabase {
    fn extend<I: IntoIterator<Item = CveEntry>>(&mut self, entries: I) {
        for e in entries {
            self.insert(e);
        }
    }
}

impl FromIterator<CveEntry> for VulnerabilityDatabase {
    fn from_iter<I: IntoIterator<Item = CveEntry>>(entries: I) -> Self {
        VulnerabilityDatabase::from_entries(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cve::CveId;

    fn cpe(s: &str) -> Cpe {
        s.parse().unwrap()
    }

    fn entry(year: u16, seq: u32, affected: &[&str]) -> CveEntry {
        CveEntry::new(
            CveId::new(year, seq).unwrap(),
            year,
            affected.iter().map(|s| cpe(s)).collect(),
        )
    }

    #[test]
    fn empty_database() {
        let db = VulnerabilityDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:google:chrome")), 0);
        assert_eq!(
            db.similarity(&cpe("cpe:/a:google:chrome"), &cpe("cpe:/a:mozilla:firefox")),
            0.0
        );
    }

    #[test]
    fn insert_and_query() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(
            2016,
            1,
            &["cpe:/a:google:chrome:50.0", "cpe:/a:mozilla:firefox"],
        ));
        db.insert(entry(2016, 2, &["cpe:/a:google:chrome:49.0"]));
        // Version-less query aggregates versions.
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:google:chrome")), 2);
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:google:chrome:50.0")), 1);
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:mozilla:firefox")), 1);
    }

    #[test]
    fn reinsert_replaces_and_reindexes() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(2016, 1, &["cpe:/a:google:chrome"]));
        let prev = db.insert(entry(2016, 1, &["cpe:/a:mozilla:firefox"]));
        assert!(prev.is_some());
        assert_eq!(db.len(), 1);
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:google:chrome")), 0);
        assert_eq!(db.vulnerability_count(&cpe("cpe:/a:mozilla:firefox")), 1);
    }

    #[test]
    fn similarity_matches_hand_computation() {
        let mut db = VulnerabilityDatabase::new();
        // chrome: {1,2,3}; firefox: {2,3,4} -> intersection 2, union 4 -> 0.5
        db.insert(entry(2016, 1, &["cpe:/a:google:chrome"]));
        db.insert(entry(
            2016,
            2,
            &["cpe:/a:google:chrome", "cpe:/a:mozilla:firefox"],
        ));
        db.insert(entry(
            2016,
            3,
            &["cpe:/a:google:chrome", "cpe:/a:mozilla:firefox"],
        ));
        db.insert(entry(2016, 4, &["cpe:/a:mozilla:firefox"]));
        let s = db.similarity(&cpe("cpe:/a:google:chrome"), &cpe("cpe:/a:mozilla:firefox"));
        assert!((s - 0.5).abs() < 1e-12);
        assert_eq!(
            db.shared_count(&cpe("cpe:/a:google:chrome"), &cpe("cpe:/a:mozilla:firefox")),
            2
        );
    }

    #[test]
    fn similarity_is_symmetric_and_reflexive() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(
            2016,
            1,
            &["cpe:/a:google:chrome", "cpe:/a:apple:safari"],
        ));
        db.insert(entry(2016, 2, &["cpe:/a:google:chrome"]));
        let c = cpe("cpe:/a:google:chrome");
        let s = cpe("cpe:/a:apple:safari");
        assert_eq!(db.similarity(&c, &s), db.similarity(&s, &c));
        assert_eq!(db.similarity(&c, &c), 1.0);
    }

    #[test]
    fn filter_years_window() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(1998, 5, &["cpe:/o:microsoft:windows_xp"]));
        db.insert(entry(2005, 6, &["cpe:/o:microsoft:windows_xp"]));
        db.insert(entry(2020, 7, &["cpe:/o:microsoft:windows_xp"]));
        let windowed = db.filter_years(1999, 2016);
        assert_eq!(windowed.len(), 1);
        assert_eq!(
            windowed.vulnerability_count(&cpe("cpe:/o:microsoft:windows_xp")),
            1
        );
    }

    #[test]
    fn similarity_table_construction() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(2016, 1, &["cpe:/a:x:p1", "cpe:/a:x:p2"]));
        db.insert(entry(2016, 2, &["cpe:/a:x:p1"]));
        db.insert(entry(2016, 3, &["cpe:/a:x:p3"]));
        let products = vec![
            ("p1".to_owned(), cpe("cpe:/a:x:p1")),
            ("p2".to_owned(), cpe("cpe:/a:x:p2")),
            ("p3".to_owned(), cpe("cpe:/a:x:p3")),
        ];
        let table = db.similarity_table(&products);
        assert!((table.get_by_name("p1", "p2").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(table.get_by_name("p1", "p3").unwrap(), 0.0);
        assert_eq!(table.get_by_name("p1", "p1").unwrap(), 1.0);
        assert_eq!(table.vuln_count(0), Some(2));
        assert_eq!(table.vuln_count(2), Some(1));
    }

    #[test]
    fn weighted_similarity_emphasizes_severe_overlap() {
        let mut db = VulnerabilityDatabase::new();
        // Shared critical CVE, plus one low-severity exclusive each.
        db.insert(entry(2016, 1, &["cpe:/a:x:p1", "cpe:/a:x:p2"]).with_cvss(9.8));
        db.insert(entry(2016, 2, &["cpe:/a:x:p1"]).with_cvss(2.0));
        db.insert(entry(2016, 3, &["cpe:/a:x:p2"]).with_cvss(2.0));
        let p1 = cpe("cpe:/a:x:p1");
        let p2 = cpe("cpe:/a:x:p2");
        let plain = db.similarity(&p1, &p2);
        let weighted = db.weighted_similarity(&p1, &p2);
        assert!((plain - 1.0 / 3.0).abs() < 1e-12);
        assert!((weighted - 9.8 / 13.8).abs() < 1e-12);
        assert!(weighted > plain);
        // Symmetry is preserved.
        assert_eq!(weighted, db.weighted_similarity(&p2, &p1));
    }

    #[test]
    fn weighted_similarity_without_scores_is_zero() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(2016, 1, &["cpe:/a:x:p1", "cpe:/a:x:p2"]));
        assert_eq!(
            db.weighted_similarity(&cpe("cpe:/a:x:p1"), &cpe("cpe:/a:x:p2")),
            0.0
        );
    }

    #[test]
    fn prefix_query_does_not_leak_into_other_products() {
        let mut db = VulnerabilityDatabase::new();
        db.insert(entry(2016, 1, &["cpe:/o:microsoft:windows_7"]));
        db.insert(entry(2016, 2, &["cpe:/o:microsoft:windows_7:sp1"]));
        db.insert(entry(2016, 3, &["cpe:/o:microsoft:windows_8.1"]));
        assert_eq!(
            db.vulnerability_count(&cpe("cpe:/o:microsoft:windows_7")),
            2
        );
        assert_eq!(
            db.vulnerability_count(&cpe("cpe:/o:microsoft:windows_8.1")),
            1
        );
    }
}
