use std::fmt;

/// Errors produced while parsing or manipulating vulnerability data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A CPE URI string did not conform to the `cpe:/part:vendor:product[:version]` shape.
    ParseCpe {
        /// The offending input.
        input: String,
        /// Human-readable reason the parse failed.
        reason: &'static str,
    },
    /// A CVE identifier string did not conform to `CVE-YYYY-NNNN`.
    ParseCveId {
        /// The offending input.
        input: String,
        /// Human-readable reason the parse failed.
        reason: &'static str,
    },
    /// A CVE identifier had an out-of-range component (e.g. year before 1999).
    InvalidCveId {
        /// The year component.
        year: u16,
        /// The sequence component.
        sequence: u32,
    },
    /// A JSON feed could not be decoded.
    Json(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ParseCpe { input, reason } => {
                write!(f, "invalid CPE URI {input:?}: {reason}")
            }
            Error::ParseCveId { input, reason } => {
                write!(f, "invalid CVE identifier {input:?}: {reason}")
            }
            Error::InvalidCveId { year, sequence } => {
                write!(
                    f,
                    "CVE identifier out of range: year {year}, sequence {sequence}"
                )
            }
            Error::Json(msg) => write!(f, "invalid JSON feed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
