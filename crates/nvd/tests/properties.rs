//! Property-based tests for the vulnerability-data substrate.

use std::collections::BTreeSet;

use proptest::prelude::*;

use nvd::cpe::{Cpe, Part};
use nvd::cve::{CveEntry, CveId};
use nvd::database::VulnerabilityDatabase;
use nvd::feed::{FeedConfig, FeedGenerator};
use nvd::similarity::{jaccard, SimilarityTable};

fn component() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.]{0,12}"
}

fn arb_cpe() -> impl Strategy<Value = Cpe> {
    (
        prop_oneof![
            Just(Part::Application),
            Just(Part::OperatingSystem),
            Just(Part::Hardware)
        ],
        component(),
        component(),
        proptest::option::of(component()),
    )
        .prop_map(|(part, vendor, product, version)| {
            Cpe::new(part, &vendor, &product, version.as_deref())
        })
}

proptest! {
    /// CPE display → parse is the identity.
    #[test]
    fn cpe_roundtrips_through_display(cpe in arb_cpe()) {
        let reparsed: Cpe = cpe.to_string().parse().unwrap();
        prop_assert_eq!(cpe, reparsed);
    }

    /// Prefix matching is reflexive and the product key matches everything
    /// with the same triple.
    #[test]
    fn cpe_matching_laws(cpe in arb_cpe()) {
        prop_assert!(cpe.matches(&cpe));
        prop_assert!(cpe.product_key().matches(&cpe));
    }

    /// Jaccard is symmetric, bounded, and 1 exactly on equal non-empty sets.
    #[test]
    fn jaccard_laws(a in proptest::collection::btree_set(0u32..50, 0..20),
                    b in proptest::collection::btree_set(0u32..50, 0..20)) {
        let ab = jaccard(&a, &b);
        let ba = jaccard(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert!((0.0..=1.0).contains(&ab));
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
        }
        // Disjoint non-empty sets score 0.
        let disjoint: BTreeSet<u32> = a.iter().map(|x| x + 1000).collect();
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &disjoint), 0.0);
        }
    }

    /// Similarity-table writes are symmetric and clamped; the diagonal is
    /// immutable.
    #[test]
    fn similarity_table_laws(
        n in 2usize..8,
        i in 0usize..8,
        j in 0usize..8,
        value in -1.0f64..2.0,
    ) {
        let names: Vec<String> = (0..n).map(|k| format!("p{k}")).collect();
        let mut t = SimilarityTable::identity(&names);
        let (i, j) = (i % n, j % n);
        t.set(i, j, value);
        prop_assert_eq!(t.get(i, j), t.get(j, i));
        prop_assert!((0.0..=1.0).contains(&t.get(i, j)));
        prop_assert_eq!(t.get(i, i), 1.0);
    }

    /// Database similarity equals the set-level Jaccard of the per-product
    /// CVE id sets, for arbitrary small corpora.
    #[test]
    fn database_similarity_matches_set_jaccard(
        assignments in proptest::collection::vec(
            (1u32..40, proptest::collection::btree_set(0usize..4, 1..4)), 1..25),
    ) {
        let products: Vec<Cpe> = (0..4)
            .map(|i| Cpe::application("vendor", &format!("prod{i}")))
            .collect();
        let mut db = VulnerabilityDatabase::new();
        let mut sets: Vec<BTreeSet<CveId>> = vec![BTreeSet::new(); 4];
        for (seq, affected) in &assignments {
            let id = CveId::new(2016, *seq).unwrap();
            let cpes: Vec<Cpe> = affected.iter().map(|&i| products[i].clone()).collect();
            db.insert(CveEntry::new(id, 2016, cpes));
            // Rebuild the oracle from scratch below (inserts may overwrite).
        }
        for entry in db.iter() {
            for cpe in entry.affected() {
                let idx = products.iter().position(|p| p == cpe).unwrap();
                sets[idx].insert(entry.id());
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                let expected = jaccard(&sets[i], &sets[j]);
                let got = db.similarity(&products[i], &products[j]);
                prop_assert!((expected - got).abs() < 1e-12);
            }
        }
    }

    /// Feed generation is a pure function of (config, seed).
    #[test]
    fn feed_is_deterministic(seed in 0u64..500, entries in 1usize..60) {
        let cfg = FeedConfig { entries, ..FeedConfig::default() };
        let a = FeedGenerator::new(cfg.clone(), seed).generate();
        let b = FeedGenerator::new(cfg, seed).generate();
        prop_assert_eq!(a, b);
    }
}
