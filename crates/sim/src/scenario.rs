//! Simulation scenarios: who attacks what, with which parameters.

use serde::{Deserialize, Serialize};

use netmodel::HostId;

use crate::attacker::AttackerStrategy;

/// The attack scenario of one simulation campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The initially compromised host.
    pub entry: HostId,
    /// The host whose compromise ends a run.
    pub target: HostId,
    /// Exploit-selection strategy.
    pub attacker: AttackerStrategy,
    /// Success probability of re-using an exploit across identical products
    /// (`sim = 1`); per-service success scales linearly with similarity.
    /// Matches the BN evaluation's `exploit_success`.
    pub exploit_success: f64,
    /// Residual zero-day success rate against fully dissimilar products:
    /// per-service success is
    /// `baseline_rate + (1 − baseline_rate) · exploit_success · sim`.
    /// Matches the BN evaluation's `baseline_rate`.
    pub baseline_rate: f64,
    /// Tick budget after which a run is recorded as censored (the worm
    /// failed to reach the target; e.g. all paths were cut by diversity).
    pub max_ticks: u32,
}

impl Scenario {
    /// Creates a scenario with the paper's sophisticated attacker and
    /// default parameters (`exploit_success = 0.9`, 10 000-tick budget).
    pub fn new(entry: HostId, target: HostId) -> Scenario {
        Scenario {
            entry,
            target,
            attacker: AttackerStrategy::Sophisticated,
            exploit_success: 0.9,
            baseline_rate: 0.1,
            max_ticks: 10_000,
        }
    }

    /// Replaces the entry host (re-pointing a campaign as a network churns).
    pub fn with_entry(mut self, entry: HostId) -> Scenario {
        self.entry = entry;
        self
    }

    /// Replaces the target host.
    pub fn with_target(mut self, target: HostId) -> Scenario {
        self.target = target;
        self
    }

    /// Replaces the attacker strategy.
    pub fn with_attacker(mut self, attacker: AttackerStrategy) -> Scenario {
        self.attacker = attacker;
        self
    }

    /// Replaces the exploit success scale.
    pub fn with_exploit_success(mut self, p: f64) -> Scenario {
        self.exploit_success = p.clamp(0.0, 1.0);
        self
    }

    /// Replaces the residual zero-day baseline rate.
    pub fn with_baseline_rate(mut self, p: f64) -> Scenario {
        self.baseline_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Replaces the tick budget.
    pub fn with_max_ticks(mut self, max_ticks: u32) -> Scenario {
        self.max_ticks = max_ticks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let s = Scenario::new(HostId(7), HostId(9))
            .with_entry(HostId(1))
            .with_target(HostId(2))
            .with_attacker(AttackerStrategy::Uniform)
            .with_exploit_success(0.5)
            .with_max_ticks(99);
        assert_eq!(s.entry, HostId(1));
        assert_eq!(s.target, HostId(2));
        assert_eq!(s.attacker, AttackerStrategy::Uniform);
        assert_eq!(s.exploit_success, 0.5);
        assert_eq!(s.max_ticks, 99);
    }

    #[test]
    fn exploit_success_is_clamped() {
        let s = Scenario::new(HostId(0), HostId(1)).with_exploit_success(7.0);
        assert_eq!(s.exploit_success, 1.0);
    }
}
