//! Agent-based malware-propagation simulation and mean-time-to-compromise.
//!
//! Section VII-C2 of the DSN 2020 paper *"Scalable Approach to Enhancing ICS
//! Resilience by Network Diversity"* evaluates diversified deployments with
//! a NetLogo simulation: a worm starts at an entry host and, tick by tick,
//! attempts to spread to neighbors using the zero-day exploits the attacker
//! holds (one per service type); the per-attempt success probability is
//! driven by the vulnerability similarity of the products facing each other
//! across the edge. The **mean time to compromise (MTTC)** of a target host
//! over many runs measures the resilience an assignment provides.
//!
//! This crate is a native replacement for that NetLogo model:
//!
//! * [`scenario`] — what is being simulated: entry, target, attack model
//!   parameters, tick budget.
//! * [`attacker`] — exploit-selection strategies: the paper's
//!   *sophisticated* attacker (reconnaissance first, always picks the
//!   highest-success exploit) and a *uniform* attacker ("evenly choose one")
//!   as used by the BN evaluation.
//! * [`engine`] — the seeded, deterministic tick loop with optional event
//!   traces.
//! * [`mttc`] — batched MTTC estimation, parallelized across threads.
//!
//! # Quick start
//!
//! ```
//! use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
//! use netmodel::strategies::mono_assignment;
//! use netmodel::HostId;
//! use sim::mttc::{estimate_mttc, MttcOptions};
//! use sim::scenario::Scenario;
//!
//! let g = generate(&RandomNetworkConfig {
//!     hosts: 12, mean_degree: 3, services: 2, products_per_service: 3,
//!     vendors_per_service: 2, topology: TopologyKind::Random,
//! }, 7);
//! let scenario = Scenario::new(HostId(0), HostId(11));
//! let assignment = mono_assignment(&g.network);
//! let est = estimate_mttc(
//!     &g.network, &assignment, &g.similarity, &scenario,
//!     &MttcOptions { runs: 200, ..MttcOptions::default() },
//! );
//! assert!(est.mean_ticks().unwrap() > 0.0);
//! ```

pub mod attacker;
pub mod engine;
pub mod mttc;
pub mod scenario;
