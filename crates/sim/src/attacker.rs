//! Exploit-selection strategies.
//!
//! At each propagation attempt the attacker holds one zero-day exploit per
//! service type and must pick which one to fire across an edge. The paper's
//! NetLogo evaluation models "sophisticated attackers who conduct
//! reconnaissance activities before launching attacks, and hence at each
//! step ... always choose the exploits with the highest success rate"; its
//! BN evaluation instead has attackers "evenly choose one" among feasible
//! exploits. Both strategies are provided.

use serde::{Deserialize, Serialize};

/// How the attacker picks an exploit when several services are shared
/// across an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackerStrategy {
    /// Reconnaissance first: always fire the exploit with the highest
    /// success probability (paper §VII-C2).
    Sophisticated,
    /// Pick uniformly at random among services with non-zero success
    /// (paper §VI's "evenly choose one to use").
    Uniform,
    /// Partial-knowledge reconnaissance — the paper's future-work
    /// "adversarial perspective, subject to different levels of attacker's
    /// knowledge about the network configuration": the attacker ranks
    /// exploits by success probability *perturbed* by uniform noise of the
    /// given amplitude (in thousandths; 0 ≡ `Sophisticated`, large values
    /// approach `Uniform`).
    NoisyRecon {
        /// Noise amplitude in thousandths of probability (e.g. 300 = ±0.3).
        noise_permille: u16,
    },
}

impl AttackerStrategy {
    /// Selects from per-candidate success probabilities; returns the index
    /// of the chosen candidate and its success probability, or `None` when
    /// no candidate gives any chance at all.
    ///
    /// `pick_uniform` supplies the randomness as an index into the eligible
    /// candidates (callers pass `rng.gen_range(0..count)`; the two-phase
    /// shape keeps this function deterministic and testable). The
    /// sophisticated attacker uses it to break ties among equally-good
    /// exploits — without random tie-breaking a mono-culture neighborhood
    /// would always be attacked in index order.
    ///
    /// [`AttackerStrategy::NoisyRecon`] additionally needs per-candidate
    /// noise; use [`AttackerStrategy::choose_noisy`] for it (calling
    /// `choose` on it degrades to the noiseless `Sophisticated` pick).
    pub fn choose(
        self,
        success: &[f64],
        pick_uniform: impl FnOnce(usize) -> usize,
    ) -> Option<(usize, f64)> {
        match self {
            AttackerStrategy::NoisyRecon { .. } => {
                AttackerStrategy::Sophisticated.choose(success, pick_uniform)
            }
            AttackerStrategy::Sophisticated => {
                let best = success
                    .iter()
                    .copied()
                    .filter(|p| *p > 0.0)
                    .fold(f64::NEG_INFINITY, f64::max);
                if !best.is_finite() {
                    return None;
                }
                let tied: Vec<usize> = success
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| **p == best)
                    .map(|(i, _)| i)
                    .collect();
                let pick = tied[pick_uniform(tied.len()) % tied.len()];
                Some((pick, best))
            }
            AttackerStrategy::Uniform => {
                let candidates: Vec<(usize, f64)> = success
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(_, p)| *p > 0.0)
                    .collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[pick_uniform(candidates.len()) % candidates.len()])
                }
            }
        }
    }
}

impl AttackerStrategy {
    /// Full selection including reconnaissance noise: `sample` supplies
    /// uniform draws in `[0, 1)` (one per candidate plus one for
    /// tie-breaking). For the noiseless strategies this delegates to
    /// [`AttackerStrategy::choose`].
    pub fn choose_noisy(
        self,
        success: &[f64],
        mut sample: impl FnMut() -> f64,
    ) -> Option<(usize, f64)> {
        match self {
            AttackerStrategy::NoisyRecon { noise_permille } => {
                let amplitude = noise_permille as f64 / 1000.0;
                let mut best: Option<(usize, f64, f64)> = None; // (idx, p, score)
                for (i, &p) in success.iter().enumerate() {
                    if p <= 0.0 {
                        continue;
                    }
                    let score = p + amplitude * (sample() - 0.5);
                    match best {
                        Some((_, _, s)) if s >= score => {}
                        _ => best = Some((i, p, score)),
                    }
                }
                best.map(|(i, p, _)| (i, p))
            }
            other => {
                let n = success.len().max(1);
                other.choose(success, |count| {
                    (sample() * count as f64) as usize % n.max(1)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sophisticated_picks_the_best() {
        let chosen = AttackerStrategy::Sophisticated.choose(&[0.1, 0.7, 0.3], |_| 0);
        assert_eq!(chosen, Some((1, 0.7)));
    }

    #[test]
    fn sophisticated_ignores_zero_entries() {
        let chosen = AttackerStrategy::Sophisticated.choose(&[0.0, 0.0, 0.2], |_| 0);
        assert_eq!(chosen, Some((2, 0.2)));
        assert_eq!(
            AttackerStrategy::Sophisticated.choose(&[0.0, 0.0], |_| 0),
            None
        );
        assert_eq!(AttackerStrategy::Sophisticated.choose(&[], |_| 0), None);
    }

    #[test]
    fn noisy_recon_degrades_with_amplitude() {
        // Zero noise: identical to sophisticated.
        let zero = AttackerStrategy::NoisyRecon { noise_permille: 0 };
        let mut k = 0usize;
        let mut sample = || {
            k += 1;
            0.5
        };
        assert_eq!(
            zero.choose_noisy(&[0.1, 0.7, 0.3], &mut sample),
            Some((1, 0.7))
        );
        // Huge noise with adversarially chosen draws can flip the ranking.
        let loud = AttackerStrategy::NoisyRecon {
            noise_permille: 1000,
        };
        let mut draws = [0.99f64, 0.0, 0.0].into_iter();
        let chosen = loud.choose_noisy(&[0.1, 0.7, 0.3], || draws.next().unwrap());
        // Candidate 0 scored 0.1 + 1.0*(0.49) = 0.59; candidate 1 scored
        // 0.7 - 0.5 = 0.2; candidate 2 scored 0.3 - 0.5 -> candidate 0 wins.
        assert_eq!(chosen, Some((0, 0.1)));
        // No feasible candidate: None.
        assert_eq!(loud.choose_noisy(&[0.0, 0.0], || 0.5), None);
        // choose() on a noisy strategy degrades to the noiseless pick.
        assert_eq!(
            AttackerStrategy::NoisyRecon {
                noise_permille: 500
            }
            .choose(&[0.2, 0.9], |_| 0),
            Some((1, 0.9))
        );
    }

    #[test]
    fn choose_noisy_delegates_for_noiseless_strategies() {
        let mut draws = [0.0f64].into_iter();
        assert_eq!(
            AttackerStrategy::Sophisticated.choose_noisy(&[0.2, 0.9], || draws.next().unwrap()),
            Some((1, 0.9))
        );
        let mut draws = [0.6f64].into_iter();
        // Uniform with draw 0.6 over 2 candidates -> index 1.
        assert_eq!(
            AttackerStrategy::Uniform.choose_noisy(&[0.2, 0.9], || draws.next().unwrap()),
            Some((1, 0.9))
        );
    }

    #[test]
    fn uniform_picks_among_nonzero() {
        // Candidates are (0, 0.5) and (2, 0.25); index 1 selects the second.
        let chosen = AttackerStrategy::Uniform.choose(&[0.5, 0.0, 0.25], |n| {
            assert_eq!(n, 2);
            1
        });
        assert_eq!(chosen, Some((2, 0.25)));
        assert_eq!(AttackerStrategy::Uniform.choose(&[0.0], |_| 0), None);
    }
}
