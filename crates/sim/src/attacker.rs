//! Exploit-selection strategies.
//!
//! At each propagation attempt the attacker holds one zero-day exploit per
//! service type and must pick which one to fire across an edge. The paper's
//! NetLogo evaluation models "sophisticated attackers who conduct
//! reconnaissance activities before launching attacks, and hence at each
//! step ... always choose the exploits with the highest success rate"; its
//! BN evaluation instead has attackers "evenly choose one" among feasible
//! exploits. Both strategies are provided.

use netmodel::assignment::Assignment;
use netmodel::network::Network;
use netmodel::HostId;
use serde::{Deserialize, Serialize};

/// How the attacker picks an exploit when several services are shared
/// across an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackerStrategy {
    /// Reconnaissance first: always fire the exploit with the highest
    /// success probability (paper §VII-C2).
    Sophisticated,
    /// Pick uniformly at random among services with non-zero success
    /// (paper §VI's "evenly choose one to use").
    Uniform,
    /// Partial-knowledge reconnaissance — the paper's future-work
    /// "adversarial perspective, subject to different levels of attacker's
    /// knowledge about the network configuration": the attacker ranks
    /// exploits by success probability *perturbed* by uniform noise of the
    /// given amplitude (in thousandths; 0 ≡ `Sophisticated`, large values
    /// approach `Uniform`).
    NoisyRecon {
        /// Noise amplitude in thousandths of probability (e.g. 300 = ±0.3).
        noise_permille: u16,
    },
    /// Adversary-in-the-loop: at the edge level this behaves like
    /// [`AttackerStrategy::Sophisticated`], but the scenario driver
    /// re-derives entry and target from the *current* committed
    /// assignment's largest monoculture cluster before every churn step
    /// (see [`adaptive_entry_target`]), so the attack co-evolves with the
    /// defender's re-optimization.
    Adaptive,
}

impl AttackerStrategy {
    /// Selects from per-candidate success probabilities; returns the index
    /// of the chosen candidate and its success probability, or `None` when
    /// no candidate gives any chance at all.
    ///
    /// `pick_uniform` supplies the randomness as an index into the eligible
    /// candidates (callers pass `rng.gen_range(0..count)`; the two-phase
    /// shape keeps this function deterministic and testable). The
    /// sophisticated attacker uses it to break ties among equally-good
    /// exploits — without random tie-breaking a mono-culture neighborhood
    /// would always be attacked in index order.
    ///
    /// [`AttackerStrategy::NoisyRecon`] additionally needs per-candidate
    /// noise; use [`AttackerStrategy::choose_noisy`] for it (calling
    /// `choose` on it degrades to the noiseless `Sophisticated` pick).
    pub fn choose(
        self,
        success: &[f64],
        pick_uniform: impl FnOnce(usize) -> usize,
    ) -> Option<(usize, f64)> {
        match self {
            AttackerStrategy::NoisyRecon { .. } | AttackerStrategy::Adaptive => {
                AttackerStrategy::Sophisticated.choose(success, pick_uniform)
            }
            AttackerStrategy::Sophisticated => {
                let best = success
                    .iter()
                    .copied()
                    .filter(|p| *p > 0.0)
                    .fold(f64::NEG_INFINITY, f64::max);
                if !best.is_finite() {
                    return None;
                }
                let tied: Vec<usize> = success
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| **p == best)
                    .map(|(i, _)| i)
                    .collect();
                let pick = tied[pick_uniform(tied.len()) % tied.len()];
                Some((pick, best))
            }
            AttackerStrategy::Uniform => {
                let candidates: Vec<(usize, f64)> = success
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(_, p)| *p > 0.0)
                    .collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[pick_uniform(candidates.len()) % candidates.len()])
                }
            }
        }
    }
}

impl AttackerStrategy {
    /// Full selection including reconnaissance noise: `sample` supplies
    /// uniform draws in `[0, 1)` (one per candidate plus one for
    /// tie-breaking). For the noiseless strategies this delegates to
    /// [`AttackerStrategy::choose`].
    pub fn choose_noisy(
        self,
        success: &[f64],
        mut sample: impl FnMut() -> f64,
    ) -> Option<(usize, f64)> {
        match self {
            AttackerStrategy::NoisyRecon { noise_permille } if noise_permille > 0 => {
                let amplitude = noise_permille as f64 / 1000.0;
                let mut best: Option<(usize, f64, f64)> = None; // (idx, p, score)
                for (i, &p) in success.iter().enumerate() {
                    if p <= 0.0 {
                        continue;
                    }
                    let score = p + amplitude * (sample() - 0.5);
                    match best {
                        Some((_, _, s)) if s >= score => {}
                        _ => best = Some((i, p, score)),
                    }
                }
                best.map(|(i, p, _)| (i, p))
            }
            // `NoisyRecon { noise_permille: 0 }` falls through: with zero
            // amplitude the perturbed ranking would keep the *first* tied
            // maximum while `choose` tie-breaks uniformly — delegating makes
            // noise=0 ≡ `choose` even on monoculture ties.
            other => other.choose(success, |count| (sample() * count as f64) as usize),
        }
    }
}

/// The monoculture clusters of a committed assignment: connected components
/// of the subgraph keeping only links whose endpoints run at least one
/// common service with the *same* assigned product — the paths a single
/// zero-day can ride without changing exploits.
///
/// Returns the clusters largest-first (ties broken by smallest member id);
/// members are sorted ascending. Hosts on no monoculture link form
/// singleton clusters; removed hosts are skipped entirely.
pub fn monoculture_clusters(network: &Network, assignment: &Assignment) -> Vec<Vec<HostId>> {
    let n = network.host_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(a, b) in network.links() {
        if monoculture_link(network, assignment, a, b) {
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }
    }
    let mut clusters: std::collections::BTreeMap<u32, Vec<HostId>> =
        std::collections::BTreeMap::new();
    for (id, host) in network.iter_hosts() {
        if host.is_removed() {
            continue;
        }
        clusters
            .entry(find(&mut parent, id.0))
            .or_default()
            .push(id);
    }
    let mut out: Vec<Vec<HostId>> = clusters.into_values().collect();
    // BTreeMap iteration already sorts members ascending (roots are minima
    // of their components); order clusters largest-first, ties by min id.
    out.sort_by(|x, y| y.len().cmp(&x.len()).then(x[0].0.cmp(&y[0].0)));
    out
}

/// Whether the link `(a, b)` carries at least one shared service assigned
/// the same product on both ends.
fn monoculture_link(network: &Network, assignment: &Assignment, a: HostId, b: HostId) -> bool {
    network
        .host(a)
        .ok()
        .map(|host| {
            host.services().iter().any(|inst| {
                let s = inst.service();
                match (
                    assignment.product_for(network, a, s),
                    assignment.product_for(network, b, s),
                ) {
                    (Some(pa), Some(pb)) => pa == pb,
                    _ => false,
                }
            })
        })
        .unwrap_or(false)
}

/// Picks the adaptive attacker's entry and target from the committed
/// assignment: entry is the lowest-id host of the largest monoculture
/// cluster (see [`monoculture_clusters`]); the target is the host farthest
/// from the entry *within that cluster* by monoculture-edge BFS — i.e. the
/// deepest point a single exploit chain can reach. When the largest cluster
/// is a singleton (no monoculture edges anywhere), the target falls back to
/// the farthest live host from the entry over the full link graph.
///
/// Fully deterministic. Returns `None` when the network has fewer than two
/// live hosts.
pub fn adaptive_entry_target(
    network: &Network,
    assignment: &Assignment,
) -> Option<(HostId, HostId)> {
    let clusters = monoculture_clusters(network, assignment);
    let largest = clusters.first()?;
    let entry = *largest.first()?;
    let restrict = largest.len() > 1;
    // BFS from the entry; when the cluster is non-trivial, ride only
    // monoculture edges so depth measures the single-exploit chain.
    let mut depth = vec![u32::MAX; network.host_count()];
    depth[entry.index()] = 0;
    let mut queue = std::collections::VecDeque::from([entry]);
    let mut farthest = entry;
    while let Some(u) = queue.pop_front() {
        for &v in network.neighbors(u) {
            if restrict && !monoculture_link(network, assignment, u, v) {
                continue;
            }
            if depth[v.index()] == u32::MAX {
                depth[v.index()] = depth[u.index()] + 1;
                // Deterministic: strictly-deeper wins; ties keep the first
                // (lowest-id at that depth, since neighbors are sorted).
                if depth[v.index()] > depth[farthest.index()] {
                    farthest = v;
                }
                queue.push_back(v);
            }
        }
    }
    if farthest == entry {
        // Singleton cluster or isolated entry: fall back to any other live
        // host, nearest-by-id, so the scenario still measures a traversal.
        farthest = network
            .iter_hosts()
            .filter(|(id, host)| !host.is_removed() && *id != entry)
            .map(|(id, _)| id)
            .next()?;
    }
    Some((entry, farthest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sophisticated_picks_the_best() {
        let chosen = AttackerStrategy::Sophisticated.choose(&[0.1, 0.7, 0.3], |_| 0);
        assert_eq!(chosen, Some((1, 0.7)));
    }

    #[test]
    fn sophisticated_ignores_zero_entries() {
        let chosen = AttackerStrategy::Sophisticated.choose(&[0.0, 0.0, 0.2], |_| 0);
        assert_eq!(chosen, Some((2, 0.2)));
        assert_eq!(
            AttackerStrategy::Sophisticated.choose(&[0.0, 0.0], |_| 0),
            None
        );
        assert_eq!(AttackerStrategy::Sophisticated.choose(&[], |_| 0), None);
    }

    #[test]
    fn noisy_recon_degrades_with_amplitude() {
        // Zero noise: identical to sophisticated.
        let zero = AttackerStrategy::NoisyRecon { noise_permille: 0 };
        let mut k = 0usize;
        let mut sample = || {
            k += 1;
            0.5
        };
        assert_eq!(
            zero.choose_noisy(&[0.1, 0.7, 0.3], &mut sample),
            Some((1, 0.7))
        );
        // Huge noise with adversarially chosen draws can flip the ranking.
        let loud = AttackerStrategy::NoisyRecon {
            noise_permille: 1000,
        };
        let mut draws = [0.99f64, 0.0, 0.0].into_iter();
        let chosen = loud.choose_noisy(&[0.1, 0.7, 0.3], || draws.next().unwrap());
        // Candidate 0 scored 0.1 + 1.0*(0.49) = 0.59; candidate 1 scored
        // 0.7 - 0.5 = 0.2; candidate 2 scored 0.3 - 0.5 -> candidate 0 wins.
        assert_eq!(chosen, Some((0, 0.1)));
        // No feasible candidate: None.
        assert_eq!(loud.choose_noisy(&[0.0, 0.0], || 0.5), None);
        // choose() on a noisy strategy degrades to the noiseless pick.
        assert_eq!(
            AttackerStrategy::NoisyRecon {
                noise_permille: 500
            }
            .choose(&[0.2, 0.9], |_| 0),
            Some((1, 0.9))
        );
    }

    #[test]
    fn choose_noisy_delegates_for_noiseless_strategies() {
        let mut draws = [0.0f64].into_iter();
        assert_eq!(
            AttackerStrategy::Sophisticated.choose_noisy(&[0.2, 0.9], || draws.next().unwrap()),
            Some((1, 0.9))
        );
        let mut draws = [0.6f64].into_iter();
        // Uniform with draw 0.6 over 2 candidates -> index 1.
        assert_eq!(
            AttackerStrategy::Uniform.choose_noisy(&[0.2, 0.9], || draws.next().unwrap()),
            Some((1, 0.9))
        );
    }

    #[test]
    fn noise_zero_equals_choose_even_on_ties() {
        // A monoculture tie: candidates 0 and 2 share the maximum. `choose`
        // tie-breaks uniformly; noise=0 must do exactly the same, for every
        // draw value.
        let zero = AttackerStrategy::NoisyRecon { noise_permille: 0 };
        let success = [0.7, 0.1, 0.7, 0.0];
        for draw in [0.0, 0.3, 0.5, 0.9, 0.999] {
            let noisy = zero.choose_noisy(&success, || draw);
            let plain = zero.choose(&success, |count| (draw * count as f64) as usize);
            assert_eq!(noisy, plain, "draw {draw}");
        }
        // Both tied indices are reachable (first-max-only would pin index 0).
        assert_eq!(zero.choose_noisy(&success, || 0.0), Some((0, 0.7)));
        assert_eq!(zero.choose_noisy(&success, || 0.9), Some((2, 0.7)));
    }

    #[test]
    fn noise_only_perturbs_within_the_candidate_set() {
        // Whatever the draws, the chosen index must have success > 0 and the
        // reported probability must be the *unperturbed* entry.
        let strategies = [
            AttackerStrategy::NoisyRecon { noise_permille: 0 },
            AttackerStrategy::NoisyRecon {
                noise_permille: 400,
            },
            AttackerStrategy::NoisyRecon {
                noise_permille: 1000,
            },
        ];
        let success = [0.0, 0.4, 0.0, 0.2, 0.9, 0.0];
        for strategy in strategies {
            for step in 0..20 {
                let mut k = step;
                let mut sample = move || {
                    k = (k * 7 + 3) % 20;
                    k as f64 / 20.0
                };
                let (idx, p) = strategy
                    .choose_noisy(&success, &mut sample)
                    .expect("feasible candidates exist");
                assert!(success[idx] > 0.0, "{strategy:?} picked zero-success {idx}");
                assert_eq!(p, success[idx], "reported probability is unperturbed");
            }
            // No feasible candidate: never invents one.
            assert_eq!(strategy.choose_noisy(&[0.0, 0.0], || 0.5), None);
        }
    }

    #[test]
    fn adaptive_edge_choice_matches_sophisticated() {
        let success = [0.1, 0.7, 0.3];
        assert_eq!(
            AttackerStrategy::Adaptive.choose(&success, |_| 0),
            AttackerStrategy::Sophisticated.choose(&success, |_| 0)
        );
        assert_eq!(
            AttackerStrategy::Adaptive.choose_noisy(&success, || 0.2),
            Some((1, 0.7))
        );
    }

    #[test]
    fn monoculture_clusters_and_adaptive_targeting() {
        use netmodel::network::NetworkBuilder;
        let mut catalog = netmodel::catalog::Catalog::new();
        let sid = catalog.add_service("svc");
        let p0 = catalog.add_product("p0", sid).unwrap();
        let p1 = catalog.add_product("p1", sid).unwrap();
        let mut builder = NetworkBuilder::new();
        for i in 0..5 {
            let h = builder.add_host(&format!("h{i}"));
            builder.add_service(h, sid, vec![p0, p1]).unwrap();
        }
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (0, 4)] {
            builder.add_link(HostId(a), HostId(b)).unwrap();
        }
        let network = builder.build(&catalog).unwrap();
        // Products: 0,1,2 run p0 (monoculture chain); 3 and 4 run p1.
        let assignment =
            Assignment::from_slots(vec![vec![p0], vec![p0], vec![p0], vec![p1], vec![p1]]);
        let clusters = monoculture_clusters(&network, &assignment);
        // {0,1,2} via monoculture links; 3 and 4 are singletons (their links
        // cross products).
        assert_eq!(clusters[0], vec![HostId(0), HostId(1), HostId(2)]);
        assert_eq!(clusters.len(), 3);
        // Entry = lowest id of the largest cluster; target = deepest host on
        // the monoculture chain.
        assert_eq!(
            adaptive_entry_target(&network, &assignment),
            Some((HostId(0), HostId(2)))
        );
        // Fully diverse assignment: all singletons; entry 0, fallback target.
        let diverse =
            Assignment::from_slots(vec![vec![p0], vec![p1], vec![p0], vec![p1], vec![p0]]);
        let (entry, target) = adaptive_entry_target(&network, &diverse).unwrap();
        assert_eq!(entry, HostId(0));
        assert_ne!(target, entry);
    }

    #[test]
    fn uniform_picks_among_nonzero() {
        // Candidates are (0, 0.5) and (2, 0.25); index 1 selects the second.
        let chosen = AttackerStrategy::Uniform.choose(&[0.5, 0.0, 0.25], |n| {
            assert_eq!(n, 2);
            1
        });
        assert_eq!(chosen, Some((2, 0.25)));
        assert_eq!(AttackerStrategy::Uniform.choose(&[0.0], |_| 0), None);
    }
}
