//! Mean-time-to-compromise estimation over batched runs.
//!
//! Table VI of the paper reports, for each (assignment, entry point) pair,
//! the MTTC in ticks averaged over 1 000 NetLogo runs. [`estimate_mttc`]
//! reproduces that: `runs` independent seeded simulations (seeds derived
//! from a master seed), aggregated into mean / standard deviation / success
//! rate, parallelized across threads with deterministic results regardless
//! of thread count.

use netmodel::assignment::Assignment;
use netmodel::catalog::ProductSimilarity;
use netmodel::network::Network;

use crate::engine::Simulation;
use crate::scenario::Scenario;

/// Batch options for MTTC estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct MttcOptions {
    /// Number of independent runs (the paper uses 1 000).
    pub runs: usize,
    /// Master seed; run `i` uses `master_seed ⊕ splitmix(i)`.
    pub master_seed: u64,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
}

impl Default for MttcOptions {
    fn default() -> MttcOptions {
        MttcOptions {
            runs: 1000,
            master_seed: 0x1C5_D1FF,
            threads: 4,
        }
    }
}

/// Aggregated MTTC statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MttcEstimate {
    runs: usize,
    successes: usize,
    mean: f64,
    std_dev: f64,
    min: Option<u32>,
    max: Option<u32>,
}

impl MttcEstimate {
    /// Assembles an estimate from aggregate parts — synthetic estimates for
    /// tests and tooling ([`estimate_mttc`] is the real producer). The
    /// spread and extrema are left empty.
    pub fn from_parts(runs: usize, successes: usize, mean: f64) -> MttcEstimate {
        MttcEstimate {
            runs,
            successes,
            mean,
            std_dev: 0.0,
            min: None,
            max: None,
        }
    }

    /// Total runs executed.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Runs in which the target was compromised within the tick budget.
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Fraction of successful runs.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.successes as f64 / self.runs as f64
        }
    }

    /// Mean ticks to compromise over successful runs; `None` if the target
    /// was never compromised.
    pub fn mean_ticks(&self) -> Option<f64> {
        (self.successes > 0).then_some(self.mean)
    }

    /// Sample standard deviation over successful runs (0 for < 2 samples).
    pub fn std_dev_ticks(&self) -> f64 {
        self.std_dev
    }

    /// Fastest observed compromise.
    pub fn min_ticks(&self) -> Option<u32> {
        self.min
    }

    /// Slowest observed compromise.
    pub fn max_ticks(&self) -> Option<u32> {
        self.max
    }
}

/// SplitMix64 — decorrelates per-run seeds from the master seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs the batch and aggregates (see module docs).
pub fn estimate_mttc(
    network: &Network,
    assignment: &Assignment,
    similarity: &ProductSimilarity,
    scenario: &Scenario,
    options: &MttcOptions,
) -> MttcEstimate {
    let sim = Simulation::new(network, assignment, similarity, scenario);
    let runs = options.runs;
    let threads = options.threads.max(1).min(runs.max(1));
    let mut ticks: Vec<Option<u32>> = vec![None; runs];
    if threads <= 1 || runs < 8 {
        for (i, slot) in ticks.iter_mut().enumerate() {
            *slot = sim
                .run(options.master_seed ^ splitmix(i as u64))
                .compromised_at;
        }
    } else {
        let chunk = runs.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in ticks.chunks_mut(chunk).enumerate() {
                let sim = &sim;
                let master = options.master_seed;
                scope.spawn(move || {
                    for (j, slot) in slice.iter_mut().enumerate() {
                        let i = t * chunk + j;
                        *slot = sim.run(master ^ splitmix(i as u64)).compromised_at;
                    }
                });
            }
        });
    }
    let successes: Vec<u32> = ticks.iter().flatten().copied().collect();
    let count = successes.len();
    let mean = if count > 0 {
        successes.iter().map(|&t| t as f64).sum::<f64>() / count as f64
    } else {
        0.0
    };
    let std_dev = if count > 1 {
        let var = successes
            .iter()
            .map(|&t| (t as f64 - mean).powi(2))
            .sum::<f64>()
            / (count - 1) as f64;
        var.sqrt()
    } else {
        0.0
    };
    MttcEstimate {
        runs,
        successes: count,
        mean,
        std_dev,
        min: successes.iter().min().copied(),
        max: successes.iter().max().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::catalog::Catalog;
    use netmodel::network::NetworkBuilder;
    use netmodel::{HostId, ProductId};

    fn line(n: usize, sim01: f64) -> (Network, ProductSimilarity) {
        let mut c = Catalog::new();
        let s = c.add_service("os");
        let p0 = c.add_product("p0", s).unwrap();
        let p1 = c.add_product("p1", s).unwrap();
        let mut b = NetworkBuilder::new();
        let hosts: Vec<HostId> = (0..n).map(|i| b.add_host(&format!("h{i}"))).collect();
        for &h in &hosts {
            b.add_service(h, s, vec![p0, p1]).unwrap();
        }
        for w in hosts.windows(2) {
            b.add_link(w[0], w[1]).unwrap();
        }
        (
            b.build(&c).unwrap(),
            ProductSimilarity::from_dense(2, vec![1.0, sim01, sim01, 1.0]),
        )
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let (net, sim) = line(6, 0.5);
        let a = Assignment::from_slots(vec![vec![ProductId(0)]; 6]);
        let scenario = Scenario::new(HostId(0), HostId(5)).with_exploit_success(0.6);
        let opts1 = MttcOptions {
            runs: 200,
            threads: 1,
            ..MttcOptions::default()
        };
        let opts4 = MttcOptions {
            runs: 200,
            threads: 4,
            ..MttcOptions::default()
        };
        let e1 = estimate_mttc(&net, &a, &sim, &scenario, &opts1);
        let e4 = estimate_mttc(&net, &a, &sim, &scenario, &opts4);
        assert_eq!(e1, e4, "thread count must not change results");
        let e1b = estimate_mttc(&net, &a, &sim, &scenario, &opts1);
        assert_eq!(e1, e1b);
    }

    #[test]
    fn certain_propagation_yields_exact_distance() {
        let (net, sim) = line(4, 1.0);
        let a = Assignment::from_slots(vec![vec![ProductId(0)]; 4]);
        let scenario = Scenario::new(HostId(0), HostId(3)).with_exploit_success(1.0);
        let est = estimate_mttc(
            &net,
            &a,
            &sim,
            &scenario,
            &MttcOptions {
                runs: 50,
                ..MttcOptions::default()
            },
        );
        assert_eq!(est.successes(), 50);
        assert_eq!(est.mean_ticks(), Some(3.0));
        assert_eq!(est.std_dev_ticks(), 0.0);
        assert_eq!(est.min_ticks(), Some(3));
        assert_eq!(est.max_ticks(), Some(3));
        assert_eq!(est.success_rate(), 1.0);
    }

    #[test]
    fn censored_runs_are_counted() {
        let (net, sim) = line(3, 0.0);
        let a = Assignment::from_slots(vec![
            vec![ProductId(0)],
            vec![ProductId(1)],
            vec![ProductId(0)],
        ]);
        let scenario = Scenario::new(HostId(0), HostId(2))
            .with_max_ticks(20)
            .with_baseline_rate(0.0);
        let est = estimate_mttc(
            &net,
            &a,
            &sim,
            &scenario,
            &MttcOptions {
                runs: 30,
                ..MttcOptions::default()
            },
        );
        assert_eq!(est.successes(), 0);
        assert_eq!(est.mean_ticks(), None);
        assert_eq!(est.success_rate(), 0.0);
        assert_eq!(est.min_ticks(), None);
    }

    #[test]
    fn lower_similarity_increases_mttc() {
        let a6 = Assignment::from_slots(
            (0..6)
                .map(|i| vec![ProductId((i % 2) as u16)])
                .collect::<Vec<_>>(),
        );
        let scenario = Scenario::new(HostId(0), HostId(5))
            .with_exploit_success(1.0)
            .with_baseline_rate(0.0);
        let opts = MttcOptions {
            runs: 400,
            ..MttcOptions::default()
        };
        let (net_hi, sim_hi) = line(6, 0.8);
        let (_, sim_lo) = line(6, 0.3);
        let hi = estimate_mttc(&net_hi, &a6, &sim_hi, &scenario, &opts);
        let lo = estimate_mttc(&net_hi, &a6, &sim_lo, &scenario, &opts);
        assert!(
            lo.mean_ticks().unwrap() > hi.mean_ticks().unwrap(),
            "lower similarity must slow the worm: {:?} vs {:?}",
            lo.mean_ticks(),
            hi.mean_ticks()
        );
    }
}
