//! The tick-based propagation engine.
//!
//! State: the set of compromised hosts, initially `{entry}`. Each tick,
//! every compromised host attempts each of its clean neighbors once: the
//! attacker picks one exploit per neighbor per its strategy (see
//! [`crate::attacker`]) and a Bernoulli draw with success probability
//! `baseline_rate + (1 − baseline_rate) × exploit_success × sim(α(u,s), α(v,s))`
//! (the same floored similarity model the BN evaluation uses) decides the
//! attempt. Infections land simultaneously at the end of the tick
//! (synchronous update, as in the NetLogo model). A run ends when the
//! target is compromised or the tick budget is exhausted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netmodel::assignment::Assignment;
use netmodel::catalog::ProductSimilarity;
use netmodel::network::Network;
use netmodel::HostId;

use crate::scenario::Scenario;

/// One infection event in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfectionEvent {
    /// Tick at which the infection landed.
    pub tick: u32,
    /// The newly compromised host.
    pub host: HostId,
    /// The host the worm came from.
    pub from: HostId,
    /// Index of the exploited service in the *victim's* service list.
    pub service_slot: usize,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Tick at which the target fell, or `None` if the run was censored.
    pub compromised_at: Option<u32>,
    /// Number of hosts compromised by the end of the run (including entry).
    pub infected_count: usize,
    /// Infection events, only recorded by [`Simulation::run_traced`].
    pub events: Vec<InfectionEvent>,
}

impl RunOutcome {
    /// Whether the target was compromised.
    pub fn succeeded(&self) -> bool {
        self.compromised_at.is_some()
    }
}

/// A configured simulation, reusable across seeded runs.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    network: &'a Network,
    assignment: &'a Assignment,
    similarity: &'a ProductSimilarity,
    scenario: &'a Scenario,
}

impl<'a> Simulation<'a> {
    /// Binds a simulation to its inputs.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's entry or target host is out of range.
    pub fn new(
        network: &'a Network,
        assignment: &'a Assignment,
        similarity: &'a ProductSimilarity,
        scenario: &'a Scenario,
    ) -> Simulation<'a> {
        assert!(
            scenario.entry.index() < network.host_count(),
            "entry host out of range"
        );
        assert!(
            scenario.target.index() < network.host_count(),
            "target host out of range"
        );
        Simulation {
            network,
            assignment,
            similarity,
            scenario,
        }
    }

    /// Runs once with the given seed (deterministic per seed).
    pub fn run(&self, seed: u64) -> RunOutcome {
        self.run_inner(seed, false)
    }

    /// Runs once, recording every infection event.
    pub fn run_traced(&self, seed: u64) -> RunOutcome {
        self.run_inner(seed, true)
    }

    fn run_inner(&self, seed: u64, traced: bool) -> RunOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.network.host_count();
        let mut infected = vec![false; n];
        infected[self.scenario.entry.index()] = true;
        let mut frontier: Vec<HostId> = vec![self.scenario.entry];
        let mut infected_count = 1usize;
        let mut events = Vec::new();
        if self.scenario.entry == self.scenario.target {
            return RunOutcome {
                compromised_at: Some(0),
                infected_count,
                events,
            };
        }
        // Per-attempt success probabilities are scratch, reused per neighbor.
        let mut success: Vec<f64> = Vec::new();
        let mut newly: Vec<(HostId, HostId, usize)> = Vec::new();
        for tick in 1..=self.scenario.max_ticks {
            newly.clear();
            for &u in &frontier {
                for &v in self.network.neighbors(u) {
                    if infected[v.index()] {
                        continue;
                    }
                    let victim = self.network.host(v).expect("neighbor exists");
                    success.clear();
                    success.extend(victim.services().iter().map(|inst| {
                        match (
                            self.assignment.product_for(self.network, u, inst.service()),
                            self.assignment.product_for(self.network, v, inst.service()),
                        ) {
                            (Some(pu), Some(pv)) => {
                                self.scenario.baseline_rate
                                    + (1.0 - self.scenario.baseline_rate)
                                        * self.scenario.exploit_success
                                        * self.similarity.get(pu, pv)
                            }
                            _ => 0.0,
                        }
                    }));
                    let chosen = self
                        .scenario
                        .attacker
                        .choose_noisy(&success, || rng.gen::<f64>());
                    if let Some((slot, p)) = chosen {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            newly.push((v, u, slot));
                        }
                    }
                }
            }
            let mut target_hit = false;
            for &(v, from, slot) in &newly {
                if !infected[v.index()] {
                    infected[v.index()] = true;
                    infected_count += 1;
                    frontier.push(v);
                    if traced {
                        events.push(InfectionEvent {
                            tick,
                            host: v,
                            from,
                            service_slot: slot,
                        });
                    }
                    if v == self.scenario.target {
                        target_hit = true;
                    }
                }
            }
            if target_hit {
                return RunOutcome {
                    compromised_at: Some(tick),
                    infected_count,
                    events,
                };
            }
            // Prune fully-surrounded hosts lazily: keep frontier as-is; the
            // inner loop already skips infected neighbors.
        }
        RunOutcome {
            compromised_at: None,
            infected_count,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::AttackerStrategy;
    use netmodel::catalog::Catalog;
    use netmodel::network::NetworkBuilder;
    use netmodel::ProductId;

    /// Line of `n` hosts, one service, two products with given similarity.
    fn line(n: usize, sim01: f64) -> (Network, ProductSimilarity) {
        let mut c = Catalog::new();
        let s = c.add_service("os");
        let p0 = c.add_product("p0", s).unwrap();
        let p1 = c.add_product("p1", s).unwrap();
        let mut b = NetworkBuilder::new();
        let hosts: Vec<HostId> = (0..n).map(|i| b.add_host(&format!("h{i}"))).collect();
        for &h in &hosts {
            b.add_service(h, s, vec![p0, p1]).unwrap();
        }
        for w in hosts.windows(2) {
            b.add_link(w[0], w[1]).unwrap();
        }
        let net = b.build(&c).unwrap();
        let sim = ProductSimilarity::from_dense(2, vec![1.0, sim01, sim01, 1.0]);
        (net, sim)
    }

    fn mono(n: usize) -> Assignment {
        Assignment::from_slots(vec![vec![ProductId(0)]; n])
    }

    #[test]
    fn certain_infection_takes_distance_ticks() {
        let (net, sim) = line(5, 0.5);
        let a = mono(5);
        let scenario = Scenario::new(HostId(0), HostId(4)).with_exploit_success(1.0);
        let s = Simulation::new(&net, &a, &sim, &scenario);
        // Identical products and success 1.0: one hop per tick.
        let out = s.run(1);
        assert_eq!(out.compromised_at, Some(4));
        assert_eq!(out.infected_count, 5);
    }

    #[test]
    fn entry_equals_target() {
        let (net, sim) = line(2, 0.5);
        let a = mono(2);
        let scenario = Scenario::new(HostId(0), HostId(0));
        let s = Simulation::new(&net, &a, &sim, &scenario);
        assert_eq!(s.run(1).compromised_at, Some(0));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (net, sim) = line(6, 0.4);
        let a = mono(6);
        let scenario = Scenario::new(HostId(0), HostId(5)).with_exploit_success(0.5);
        let s = Simulation::new(&net, &a, &sim, &scenario);
        assert_eq!(s.run(42), s.run(42));
        // Different seeds usually differ.
        let distinct: std::collections::HashSet<_> =
            (0..10).map(|seed| s.run(seed).compromised_at).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn zero_similarity_censors_the_run() {
        let (net, sim) = line(3, 0.0);
        // Alternating products: every edge has similarity 0 -> impassable.
        let a = Assignment::from_slots(vec![
            vec![ProductId(0)],
            vec![ProductId(1)],
            vec![ProductId(0)],
        ]);
        let scenario = Scenario::new(HostId(0), HostId(2))
            .with_max_ticks(50)
            .with_baseline_rate(0.0);
        let s = Simulation::new(&net, &a, &sim, &scenario);
        let out = s.run(7);
        assert_eq!(out.compromised_at, None);
        assert_eq!(out.infected_count, 1);
        assert!(!out.succeeded());
    }

    #[test]
    fn diverse_assignment_slows_the_worm() {
        let (net, sim) = line(6, 0.2);
        let mono_a = mono(6);
        let diverse =
            Assignment::from_slots((0..6).map(|i| vec![ProductId((i % 2) as u16)]).collect());
        let scenario = Scenario::new(HostId(0), HostId(5))
            .with_exploit_success(0.9)
            .with_baseline_rate(0.0);
        let runs = 300;
        let mean = |a: &Assignment| -> f64 {
            let s = Simulation::new(&net, a, &sim, &scenario);
            let mut total = 0u64;
            let mut ok = 0u64;
            for seed in 0..runs {
                if let Some(t) = s.run(seed).compromised_at {
                    total += t as u64;
                    ok += 1;
                }
            }
            total as f64 / ok.max(1) as f64
        };
        let m_mono = mean(&mono_a);
        let m_div = mean(&diverse);
        assert!(
            m_div > 2.0 * m_mono,
            "diverse MTTC {m_div} should far exceed mono {m_mono}"
        );
    }

    #[test]
    fn sophisticated_attacker_is_at_least_as_fast_as_uniform() {
        // Two-service network where one service is far more similar: the
        // sophisticated attacker always fires the good exploit.
        let mut c = Catalog::new();
        let s1 = c.add_service("os");
        let s2 = c.add_service("db");
        let o0 = c.add_product("o0", s1).unwrap();
        let o1 = c.add_product("o1", s1).unwrap();
        let d0 = c.add_product("d0", s2).unwrap();
        let d1 = c.add_product("d1", s2).unwrap();
        let mut b = NetworkBuilder::new();
        let hosts: Vec<HostId> = (0..5).map(|i| b.add_host(&format!("h{i}"))).collect();
        for &h in &hosts {
            b.add_service(h, s1, vec![o0, o1]).unwrap();
            b.add_service(h, s2, vec![d0, d1]).unwrap();
        }
        for w in hosts.windows(2) {
            b.add_link(w[0], w[1]).unwrap();
        }
        let net = b.build(&c).unwrap();
        // os pair sim 0.9; db pair sim 0.1.
        let mut vals = vec![0.0; 16];
        for i in 0..4 {
            vals[i * 4 + i] = 1.0;
        }
        vals[o0.index() * 4 + o1.index()] = 0.9;
        vals[o1.index() * 4 + o0.index()] = 0.9;
        vals[d0.index() * 4 + d1.index()] = 0.1;
        vals[d1.index() * 4 + d0.index()] = 0.1;
        let sim = ProductSimilarity::from_dense(4, vals);
        // Alternate both services.
        let a = Assignment::from_slots(
            (0..5)
                .map(|i| {
                    if i % 2 == 0 {
                        vec![o0, d0]
                    } else {
                        vec![o1, d1]
                    }
                })
                .collect(),
        );
        let mean = |strategy: AttackerStrategy| -> f64 {
            let scenario = Scenario::new(HostId(0), HostId(4))
                .with_attacker(strategy)
                .with_exploit_success(1.0);
            let s = Simulation::new(&net, &a, &sim, &scenario);
            let mut total = 0u64;
            let mut ok = 0u64;
            for seed in 0..400 {
                if let Some(t) = s.run(seed).compromised_at {
                    total += t as u64;
                    ok += 1;
                }
            }
            total as f64 / ok.max(1) as f64
        };
        let fast = mean(AttackerStrategy::Sophisticated);
        let slow = mean(AttackerStrategy::Uniform);
        assert!(
            fast < slow,
            "sophisticated MTTC {fast} should beat uniform {slow}"
        );
    }

    #[test]
    fn noisy_recon_is_no_faster_than_perfect_recon() {
        // Two services with very different similarities: imperfect
        // reconnaissance sometimes fires the weak exploit, so the noisy
        // attacker cannot beat the fully-informed one on average.
        let mut c = Catalog::new();
        let s1 = c.add_service("os");
        let s2 = c.add_service("db");
        let o0 = c.add_product("o0", s1).unwrap();
        let o1 = c.add_product("o1", s1).unwrap();
        let d0 = c.add_product("d0", s2).unwrap();
        let d1 = c.add_product("d1", s2).unwrap();
        let mut b = NetworkBuilder::new();
        let hosts: Vec<HostId> = (0..6).map(|i| b.add_host(&format!("h{i}"))).collect();
        for &h in &hosts {
            b.add_service(h, s1, vec![o0, o1]).unwrap();
            b.add_service(h, s2, vec![d0, d1]).unwrap();
        }
        for w in hosts.windows(2) {
            b.add_link(w[0], w[1]).unwrap();
        }
        let net = b.build(&c).unwrap();
        let mut vals = vec![0.0; 16];
        for i in 0..4 {
            vals[i * 4 + i] = 1.0;
        }
        vals[o0.index() * 4 + o1.index()] = 0.8;
        vals[o1.index() * 4 + o0.index()] = 0.8;
        vals[d0.index() * 4 + d1.index()] = 0.05;
        vals[d1.index() * 4 + d0.index()] = 0.05;
        let sim = ProductSimilarity::from_dense(4, vals);
        let a = Assignment::from_slots(
            (0..6)
                .map(|i| {
                    if i % 2 == 0 {
                        vec![o0, d0]
                    } else {
                        vec![o1, d1]
                    }
                })
                .collect(),
        );
        let mean = |strategy: AttackerStrategy| -> f64 {
            let scenario = Scenario::new(HostId(0), HostId(5))
                .with_attacker(strategy)
                .with_exploit_success(1.0)
                .with_baseline_rate(0.0);
            let s = Simulation::new(&net, &a, &sim, &scenario);
            let mut total = 0u64;
            let mut ok = 0u64;
            for seed in 0..400 {
                if let Some(t) = s.run(seed).compromised_at {
                    total += t as u64;
                    ok += 1;
                }
            }
            total as f64 / ok.max(1) as f64
        };
        let perfect = mean(AttackerStrategy::Sophisticated);
        let noisy = mean(AttackerStrategy::NoisyRecon {
            noise_permille: 900,
        });
        assert!(
            noisy >= perfect,
            "noisy recon MTTC {noisy} should not beat perfect recon {perfect}"
        );
    }

    #[test]
    fn trace_records_a_causal_chain() {
        let (net, sim) = line(4, 1.0);
        let a = mono(4);
        let scenario = Scenario::new(HostId(0), HostId(3)).with_exploit_success(1.0);
        let s = Simulation::new(&net, &a, &sim, &scenario);
        let out = s.run_traced(3);
        assert_eq!(out.events.len(), 3);
        // Events are in tick order and each source was infected earlier.
        let mut infected: Vec<HostId> = vec![HostId(0)];
        for e in &out.events {
            assert!(
                infected.contains(&e.from),
                "source must already be infected"
            );
            infected.push(e.host);
        }
        // Untraced runs record no events.
        assert!(s.run(3).events.is_empty());
    }

    #[test]
    #[should_panic(expected = "target host out of range")]
    fn bad_target_panics() {
        let (net, sim) = line(2, 0.5);
        let a = mono(2);
        let scenario = Scenario::new(HostId(0), HostId(9));
        Simulation::new(&net, &a, &sim, &scenario);
    }
}
