//! Property-based tests for the MRF solvers: random small models, checked
//! against the brute-force oracle.

use proptest::prelude::*;

use mrf::bp::{Bp, BpOptions};
use mrf::elimination::Elimination;
use mrf::exhaustive::Exhaustive;
use mrf::icm::{Icm, IcmOptions};
use mrf::ils::Ils;
use mrf::model::{MrfBuilder, MrfModel};
use mrf::solver::{MapSolver, SolveControl};
use mrf::trws::{Trws, TrwsOptions};

/// A random model with ≤7 variables of 2–3 labels and random edges —
/// small enough for the exhaustive oracle.
fn arb_model() -> impl Strategy<Value = MrfModel> {
    (
        2usize..7,
        proptest::collection::vec(0.0f64..3.0, 7 * 3),
        proptest::collection::vec(0.0f64..2.0, 21 * 9),
        proptest::collection::vec(any::<bool>(), 21),
        proptest::collection::vec(2usize..4, 7),
    )
        .prop_map(|(n, unaries, pairwise, edge_mask, cards)| {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..n).map(|i| b.add_variable(cards[i])).collect();
            for (i, &v) in vars.iter().enumerate() {
                let costs = unaries[i * 3..i * 3 + cards[i]].to_vec();
                b.set_unary(v, costs).unwrap();
            }
            let mut k = 0usize;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edge_mask[k % edge_mask.len()] {
                        let need = cards[i] * cards[j];
                        let costs = pairwise[k * 9..k * 9 + need].to_vec();
                        b.add_edge_dense(vars[i], vars[j], costs).unwrap();
                    }
                    k += 1;
                }
            }
            b.build()
        })
}

/// A random tree-structured model: every variable past the first attaches
/// to a random earlier parent, so elimination is exact and min-sum BP must
/// converge to the optimum.
fn arb_tree_model() -> impl Strategy<Value = MrfModel> {
    (
        2usize..8,
        proptest::collection::vec(0.0f64..3.0, 8 * 3),
        proptest::collection::vec(0.0f64..2.0, 8 * 9),
        proptest::collection::vec(2usize..4, 8),
        proptest::collection::vec(0usize..8, 8),
    )
        .prop_map(|(n, unaries, pairwise, cards, parents)| {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..n).map(|i| b.add_variable(cards[i])).collect();
            for (i, &v) in vars.iter().enumerate() {
                b.set_unary(v, unaries[i * 3..i * 3 + cards[i]].to_vec())
                    .unwrap();
            }
            for i in 1..n {
                let p = parents[i] % i;
                let need = cards[p] * cards[i];
                let costs = pairwise[i * 9..i * 9 + need].to_vec();
                b.add_edge_dense(vars[p], vars[i], costs).unwrap();
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bucket elimination is exact: always equals the brute-force optimum.
    #[test]
    fn elimination_is_exact(model in arb_model()) {
        let exact = Elimination::default().solve_exact(&model, &SolveControl::new()).unwrap();
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        prop_assert!((exact.energy() - brute.energy()).abs() < 1e-9,
            "elimination {} vs brute {}", exact.energy(), brute.energy());
        prop_assert!(exact.is_certified_optimal(1e-9));
    }

    /// The TRW-S lower bound never exceeds the true optimum, and its
    /// decoded energy never beats it.
    #[test]
    fn trws_bound_brackets_the_optimum(model in arb_model()) {
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        let s = Trws::new(TrwsOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!(s.lower_bound().unwrap() <= brute.energy() + 1e-7,
            "bound {} exceeds optimum {}", s.lower_bound().unwrap(), brute.energy());
        prop_assert!(s.energy() >= brute.energy() - 1e-9);
        // Energy evaluation must agree with the labels returned.
        prop_assert!((model.energy(s.labels()) - s.energy()).abs() < 1e-9);
    }

    /// ICM monotonically improves any starting labeling.
    #[test]
    fn icm_never_increases_energy(model in arb_model(), seed in 0u64..100) {
        // Derive a deterministic pseudo-random start from the seed.
        let start: Vec<usize> = (0..model.var_count())
            .map(|i| ((seed as usize).wrapping_mul(31).wrapping_add(i * 7))
                % model.labels(mrf::VarId(i)))
            .collect();
        let start_energy = model.energy(&start);
        let s = Icm::default().solve_from(&model, start, &SolveControl::new());
        prop_assert!(s.energy() <= start_energy + 1e-12);
    }

    /// ILS refinement never yields something worse than ICM alone.
    #[test]
    fn ils_refines_at_least_as_well_as_icm(model in arb_model()) {
        let start = model.unary_argmin();
        let icm = Icm::default().solve_from(&model, start.clone(), &SolveControl::new());
        let ils = Ils::default().refine(&model, start, &SolveControl::new());
        prop_assert!(ils.energy() <= icm.energy() + 1e-12);
    }

    /// BP decodes a labeling whose energy the model confirms.
    #[test]
    fn bp_energy_is_consistent(model in arb_model()) {
        let s = Bp::new(BpOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!((model.energy(s.labels()) - s.energy()).abs() < 1e-9);
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        prop_assert!(s.energy() >= brute.energy() - 1e-9);
    }

    /// The colored sweep schedule is thread-count-invariant: running the
    /// class-major schedule across scoped threads produces bit-identical
    /// labels and energy to running the same schedule sequentially, for
    /// both BP (message sweeps) and ICM (move sweeps).
    #[test]
    fn colored_parallel_sweeps_match_sequential(model in arb_model()) {
        let ctl = SolveControl::new();
        // threshold 0 forces the scoped-thread path; usize::MAX runs the
        // identical colored schedule on one thread.
        let bp_par = Bp::new(BpOptions {
            threads: 4, parallel_threshold: 0, ..BpOptions::default()
        }).solve(&model, &ctl);
        let bp_seq = Bp::new(BpOptions {
            threads: 1, ..BpOptions::default()
        }).solve(&model, &ctl);
        prop_assert_eq!(bp_par.labels(), bp_seq.labels());
        prop_assert_eq!(bp_par.energy(), bp_seq.energy());
        let icm_par = Icm::new(IcmOptions {
            threads: 4, parallel_threshold: 0, ..IcmOptions::default()
        }).solve(&model, &ctl);
        let icm_seq = Icm::new(IcmOptions {
            threads: 4, parallel_threshold: usize::MAX, ..IcmOptions::default()
        }).solve(&model, &ctl);
        prop_assert_eq!(icm_par.labels(), icm_seq.labels());
        prop_assert_eq!(icm_par.energy(), icm_seq.energy());
    }

    /// On tree-structured models min-sum BP is exact: its decoded energy
    /// agrees with bucket elimination's certified optimum.
    #[test]
    fn bp_matches_elimination_on_trees(model in arb_tree_model()) {
        let exact = Elimination::default()
            .solve_exact(&model, &SolveControl::new())
            .unwrap();
        let s = Bp::new(BpOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!((s.energy() - exact.energy()).abs() < 1e-6,
            "bp {} vs elimination {}", s.energy(), exact.energy());
    }

    /// On tree-structured models TRW-S closes its duality gap: the decoded
    /// energy agrees with elimination and the bound certifies it.
    #[test]
    fn trws_matches_elimination_on_trees(model in arb_tree_model()) {
        let exact = Elimination::default()
            .solve_exact(&model, &SolveControl::new())
            .unwrap();
        let s = Trws::new(TrwsOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!((s.energy() - exact.energy()).abs() < 1e-6,
            "trws {} vs elimination {}", s.energy(), exact.energy());
        prop_assert!(s.lower_bound().unwrap() <= exact.energy() + 1e-7);
    }

    /// f32 message kernels stay within loose tolerance of the f64 decode.
    /// Tree models pin both precisions to the same (exact) fixed point, so
    /// the gap reduces to rounding at near-ties; on loopy graphs a single
    /// flipped argmin can legitimately change the whole trajectory, which
    /// is why this property is stated on trees.
    #[test]
    fn f32_messages_track_f64(model in arb_tree_model()) {
        let ctl = SolveControl::new();
        for (wide, narrow) in [
            (
                Trws::new(TrwsOptions::default()).solve(&model, &ctl).energy(),
                Trws::new(TrwsOptions { f32_messages: true, ..TrwsOptions::default() })
                    .solve(&model, &ctl).energy(),
            ),
            (
                Bp::new(BpOptions::default()).solve(&model, &ctl).energy(),
                Bp::new(BpOptions { f32_messages: true, ..BpOptions::default() })
                    .solve(&model, &ctl).energy(),
            ),
        ] {
            prop_assert!((wide - narrow).abs() <= 1e-3 * wide.abs().max(1.0),
                "f64 {wide} vs f32 {narrow}");
        }
    }

    /// All solvers respect label domains.
    #[test]
    fn solvers_respect_domains(model in arb_model()) {
        for labels in [
            Trws::new(TrwsOptions::default()).solve(&model, &SolveControl::new()).labels().to_vec(),
            Bp::new(BpOptions::default()).solve(&model, &SolveControl::new()).labels().to_vec(),
            Icm::default().solve(&model, &SolveControl::new()).labels().to_vec(),
            Elimination::default().solve_exact(&model, &SolveControl::new()).unwrap().labels().to_vec(),
        ] {
            prop_assert_eq!(labels.len(), model.var_count());
            for (i, &l) in labels.iter().enumerate() {
                prop_assert!(l < model.labels(mrf::VarId(i)));
            }
        }
    }
}
