//! Property-based tests for the MRF solvers: random small models, checked
//! against the brute-force oracle.

use proptest::prelude::*;

use mrf::bp::{Bp, BpOptions};
use mrf::elimination::Elimination;
use mrf::exhaustive::Exhaustive;
use mrf::icm::Icm;
use mrf::ils::Ils;
use mrf::model::{MrfBuilder, MrfModel};
use mrf::solver::{MapSolver, SolveControl};
use mrf::trws::{Trws, TrwsOptions};

/// A random model with ≤7 variables of 2–3 labels and random edges —
/// small enough for the exhaustive oracle.
fn arb_model() -> impl Strategy<Value = MrfModel> {
    (
        2usize..7,
        proptest::collection::vec(0.0f64..3.0, 7 * 3),
        proptest::collection::vec(0.0f64..2.0, 21 * 9),
        proptest::collection::vec(any::<bool>(), 21),
        proptest::collection::vec(2usize..4, 7),
    )
        .prop_map(|(n, unaries, pairwise, edge_mask, cards)| {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..n).map(|i| b.add_variable(cards[i])).collect();
            for (i, &v) in vars.iter().enumerate() {
                let costs = unaries[i * 3..i * 3 + cards[i]].to_vec();
                b.set_unary(v, costs).unwrap();
            }
            let mut k = 0usize;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edge_mask[k % edge_mask.len()] {
                        let need = cards[i] * cards[j];
                        let costs = pairwise[k * 9..k * 9 + need].to_vec();
                        b.add_edge_dense(vars[i], vars[j], costs).unwrap();
                    }
                    k += 1;
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bucket elimination is exact: always equals the brute-force optimum.
    #[test]
    fn elimination_is_exact(model in arb_model()) {
        let exact = Elimination::default().solve_exact(&model, &SolveControl::new()).unwrap();
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        prop_assert!((exact.energy() - brute.energy()).abs() < 1e-9,
            "elimination {} vs brute {}", exact.energy(), brute.energy());
        prop_assert!(exact.is_certified_optimal(1e-9));
    }

    /// The TRW-S lower bound never exceeds the true optimum, and its
    /// decoded energy never beats it.
    #[test]
    fn trws_bound_brackets_the_optimum(model in arb_model()) {
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        let s = Trws::new(TrwsOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!(s.lower_bound().unwrap() <= brute.energy() + 1e-7,
            "bound {} exceeds optimum {}", s.lower_bound().unwrap(), brute.energy());
        prop_assert!(s.energy() >= brute.energy() - 1e-9);
        // Energy evaluation must agree with the labels returned.
        prop_assert!((model.energy(s.labels()) - s.energy()).abs() < 1e-9);
    }

    /// ICM monotonically improves any starting labeling.
    #[test]
    fn icm_never_increases_energy(model in arb_model(), seed in 0u64..100) {
        // Derive a deterministic pseudo-random start from the seed.
        let start: Vec<usize> = (0..model.var_count())
            .map(|i| ((seed as usize).wrapping_mul(31).wrapping_add(i * 7))
                % model.labels(mrf::VarId(i)))
            .collect();
        let start_energy = model.energy(&start);
        let s = Icm::default().solve_from(&model, start, &SolveControl::new());
        prop_assert!(s.energy() <= start_energy + 1e-12);
    }

    /// ILS refinement never yields something worse than ICM alone.
    #[test]
    fn ils_refines_at_least_as_well_as_icm(model in arb_model()) {
        let start = model.unary_argmin();
        let icm = Icm::default().solve_from(&model, start.clone(), &SolveControl::new());
        let ils = Ils::default().refine(&model, start, &SolveControl::new());
        prop_assert!(ils.energy() <= icm.energy() + 1e-12);
    }

    /// BP decodes a labeling whose energy the model confirms.
    #[test]
    fn bp_energy_is_consistent(model in arb_model()) {
        let s = Bp::new(BpOptions::default()).solve(&model, &SolveControl::new());
        prop_assert!((model.energy(s.labels()) - s.energy()).abs() < 1e-9);
        let brute = Exhaustive::new().solve(&model, &SolveControl::new());
        prop_assert!(s.energy() >= brute.energy() - 1e-9);
    }

    /// All solvers respect label domains.
    #[test]
    fn solvers_respect_domains(model in arb_model()) {
        for labels in [
            Trws::new(TrwsOptions::default()).solve(&model, &SolveControl::new()).labels().to_vec(),
            Bp::new(BpOptions::default()).solve(&model, &SolveControl::new()).labels().to_vec(),
            Icm::default().solve(&model, &SolveControl::new()).labels().to_vec(),
            Elimination::default().solve_exact(&model, &SolveControl::new()).unwrap().labels().to_vec(),
        ] {
            prop_assert_eq!(labels.len(), model.var_count());
            for (i, &l) in labels.iter().enumerate() {
                prop_assert!(l < model.labels(mrf::VarId(i)));
            }
        }
    }
}
