//! Frontier-restricted refinement: re-solve only the region a change can
//! plausibly reach.
//!
//! After a localized model change (one host's domain, one link), the
//! previous MAP labeling is near-optimal everywhere except around the
//! change. [`MapSolver::refine_local`] exploits that: the caller supplies a
//! *frontier* — the variables inside a k-hop ball around the change — and
//! the solver restricts its sweeps to that active region, **expanding** the
//! region through a variable's neighbors whenever the variable flips label
//! (a flip can propagate pressure one hop further), and **falling back to a
//! full sweep** when the active region stops being local (it grows past
//! half the model — at that point masked bookkeeping costs more than it
//! saves).
//!
//! Two real implementations exist:
//!
//! * **ICM** sweeps the active set directly with the same coordinate
//!   descent as [`crate::icm::Icm::solve_from`], activating neighbors of
//!   every flipped variable.
//! * **TRW-S** runs message passing on a *conditioned submodel*: active
//!   variables keep their domains, edges to inactive variables fold into
//!   unaries at the inactive side's current label, and the sub-solution is
//!   spliced back (kept only if it improves the full-model energy).
//!   Boundary flips expand the region and the conditioning repeats.
//!
//! Every other solver inherits the default [`MapSolver::refine_local`],
//! which ignores the frontier and runs a full [`MapSolver::refine`] — the
//! conservative, always-correct behavior.
//!
//! The conditioning step itself — freeze a set of variables at given
//! labels, fold the frozen edges into the unaries of the free side, and get
//! a submodel whose energy differences equal the full model's — is exposed
//! as [`condition_submodel`] for callers that orchestrate partial solves
//! themselves (the sharded engine's boundary coordination in
//! `ics-diversity` is built on it).
//!
//! [`MapSolver::refine_local`]: crate::solver::MapSolver::refine_local
//! [`MapSolver::refine`]: crate::solver::MapSolver::refine

use crate::model::{MrfBuilder, MrfModel, VarId};
use crate::solution::Solution;

/// The outcome of a frontier-restricted refinement
/// ([`crate::solver::MapSolver::refine_local`]): the solution plus the
/// locality telemetry serving layers surface as "did the sweep stay local".
#[derive(Debug, Clone, PartialEq)]
pub struct LocalRefine {
    /// The refined solution. Its energy is never worse than the start
    /// labeling's (same contract as [`crate::solver::MapSolver::refine`]).
    pub solution: Solution,
    /// Variables inside the final active region (equals the model's
    /// variable count when the refinement fell back to a full sweep).
    pub swept_vars: usize,
    /// How many times the active region expanded beyond the initial
    /// frontier ball.
    pub expansions: usize,
    /// Whether the refinement abandoned locality and swept the full model.
    pub full_sweep: bool,
}

impl LocalRefine {
    /// Wraps a full-model refinement outcome (the default-impl and fallback
    /// path).
    pub fn full(solution: Solution, var_count: usize) -> LocalRefine {
        LocalRefine {
            solution,
            swept_vars: var_count,
            expansions: 0,
            full_sweep: true,
        }
    }

    /// The empty-frontier outcome: nothing to sweep, `start` returned
    /// unchanged as a converged solution.
    pub fn noop(model: &MrfModel, start: Vec<usize>) -> LocalRefine {
        let energy = model.energy(&start);
        LocalRefine {
            solution: Solution::new(start, energy, None, 0, true),
            swept_vars: 0,
            expansions: 0,
            full_sweep: false,
        }
    }
}

/// The mutable active-region state shared by the masked refiners: a dense
/// membership mask plus the expansion counters the telemetry reports.
pub(crate) struct ActiveRegion {
    pub(crate) mask: Vec<bool>,
    pub(crate) count: usize,
    pub(crate) expansions: usize,
}

impl ActiveRegion {
    /// Seeds the region with the frontier ball. Out-of-range and
    /// tombstoned frontier entries are ignored — they can only come from a
    /// stale caller and there is nothing local to sweep for them.
    pub(crate) fn new(model: &MrfModel, frontier: &[VarId]) -> ActiveRegion {
        let mut mask = vec![false; model.var_count()];
        let mut count = 0;
        for &v in frontier {
            if !model.is_live(v) {
                continue;
            }
            if !mask[v.0] {
                mask[v.0] = true;
                count += 1;
            }
        }
        ActiveRegion {
            mask,
            count,
            expansions: 0,
        }
    }

    /// Activates every neighbor of `v`; returns how many were new.
    pub(crate) fn activate_neighbors(&mut self, model: &MrfModel, v: usize) -> usize {
        let mut added = 0;
        for &eidx in model.incident_edges(VarId(v)) {
            let e = model.edges()[eidx as usize];
            let other = if e.a().0 == v { e.b().0 } else { e.a().0 };
            if !self.mask[other] {
                self.mask[other] = true;
                self.count += 1;
                added += 1;
            }
        }
        added
    }

    /// Whether the region has grown past the point where locality pays:
    /// more than half the model active means a masked sweep does nearly
    /// the work of a full one while still risking further expansions.
    /// (Measured against the slot count; a fragmented model trips slightly
    /// later, which only errs on the side of staying local.)
    pub(crate) fn should_fall_back(&self) -> bool {
        2 * self.count > self.mask.len()
    }
}

/// Builds the submodel conditioned on `labels` outside `active`: one
/// variable per active variable (same label count, ascending original
/// order), unaries augmented with the pairwise cost against each inactive
/// neighbor's current label, and a dense edge per original edge whose
/// endpoints are both active. Returns the submodel and the map from
/// sub-variable index to original variable index.
///
/// For any labeling `x` that agrees with `labels` outside `active`,
/// `E_full(x) = E_sub(x|active) + C` for a constant `C` (the inactive
/// unaries and inactive-inactive edges) — so minimizing the submodel
/// minimizes the full model over the active coordinates.
///
/// This is the boundary-freezing mechanism behind the TRW-S
/// [`crate::solver::MapSolver::refine_local`] implementation, exposed for
/// callers that coordinate partial solves themselves — e.g. a shard
/// coordinator that freezes the neighboring shards' boundary labels, solves
/// its own region, and splices the result back (keeping it only if the full
/// energy improved).
///
/// # Panics
///
/// Panics (in debug builds) if `labels` or `active` do not match the
/// model's variable count, and for out-of-range labels at inactive
/// variables adjacent to active ones.
///
/// ```
/// use mrf::local::condition_submodel;
/// use mrf::model::MrfBuilder;
///
/// # fn main() -> Result<(), mrf::Error> {
/// // A 3-chain: x0 — x1 — x2, each edge preferring agreement.
/// let mut b = MrfBuilder::new();
/// let vars: Vec<_> = (0..3).map(|_| b.add_variable(2)).collect();
/// for w in vars.windows(2) {
///     b.add_edge_dense(w[0], w[1], vec![0.0, 1.0, 1.0, 0.0])?;
/// }
/// let model = b.build();
///
/// // Freeze x0 = 1 and x2 = 1; condition the middle variable on them.
/// let labels = vec![1, 0, 1];
/// let active = vec![false, true, false];
/// let (sub, map) = condition_submodel(&model, &labels, &active);
/// assert_eq!(map, vec![1]);
/// assert_eq!(sub.var_count(), 1);
/// // Disagreeing with both frozen neighbors costs 2, agreeing costs 0 —
/// // the frozen edges were folded into x1's unary.
/// assert_eq!(sub.unary(mrf::VarId(0)), &[2.0, 0.0]);
/// // Energy differences transfer exactly: E_full(x) - E_sub(x|active) is
/// // constant over labelings agreeing with `labels` outside `active`.
/// let e_sub = |l: usize| sub.energy(&[l]);
/// let e_full = |l: usize| model.energy(&[1, l, 1]);
/// assert_eq!(e_full(1) - e_full(0), e_sub(1) - e_sub(0));
/// # Ok(())
/// # }
/// ```
pub fn condition_submodel(
    model: &MrfModel,
    labels: &[usize],
    active: &[bool],
) -> (MrfModel, Vec<usize>) {
    debug_assert_eq!(labels.len(), model.var_count());
    debug_assert_eq!(active.len(), model.var_count());
    let mut sub_index = vec![usize::MAX; model.var_count()];
    let mut map = Vec::new();
    let mut builder = MrfBuilder::new();
    for i in 0..model.var_count() {
        // Tombstoned slots are conditioned out like inactive variables;
        // they contribute no energy at any label.
        if !active[i] || !model.is_live(VarId(i)) {
            continue;
        }
        sub_index[i] = map.len();
        map.push(i);
        let v = builder.add_variable(model.labels(VarId(i)));
        let mut unary = model.unary(VarId(i)).to_vec();
        for &eidx in model.incident_edges(VarId(i)) {
            let e = model.edges()[eidx as usize];
            let (other, i_is_a) = if e.a().0 == i {
                (e.b().0, true)
            } else {
                (e.a().0, false)
            };
            if active[other] {
                continue; // becomes a sub-edge below
            }
            let xo = labels[other];
            for (x, u) in unary.iter_mut().enumerate() {
                *u += if i_is_a {
                    model.edge_cost(&e, x, xo)
                } else {
                    model.edge_cost(&e, xo, x)
                };
            }
        }
        builder
            .set_unary(v, unary)
            .expect("fresh variable accepts its own arity");
    }
    for e in model.edges() {
        if !e.is_live() {
            continue;
        }
        let (a, b) = (e.a().0, e.b().0);
        if !active[a] || !active[b] {
            continue;
        }
        let (la, lb) = (model.labels(e.a()), model.labels(e.b()));
        let mut costs = Vec::with_capacity(la * lb);
        for xa in 0..la {
            for xb in 0..lb {
                costs.push(model.edge_cost(e, xa, xb));
            }
        }
        builder
            .add_edge_dense(VarId(sub_index[a]), VarId(sub_index[b]), costs)
            .expect("active endpoints were added in order");
    }
    (builder.build(), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icm::Icm;
    use crate::solver::{MapSolver, SolveControl};
    use crate::trws::Trws;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    /// An attractive (Potts) chain whose optimum is all-ones: var 0 is
    /// strongly biased to 1, every other variable weakly so, and adjacent
    /// variables pay 1.0 for disagreeing. From an all-zeros start each flip
    /// *strictly* improves its successor's conditional energy, so a
    /// correction wave propagates one hop per activation — the expansion
    /// workload (strict, so greedy descent cannot stall on a tie).
    fn biased_chain(n: usize) -> MrfModel {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..n).map(|_| b.add_variable(2)).collect();
        b.set_unary(vars[0], vec![10.0, 0.0]).unwrap();
        for &v in &vars[1..] {
            b.set_unary(v, vec![0.1, 0.0]).unwrap();
        }
        for w in vars.windows(2) {
            b.add_edge_dense(w[0], w[1], vec![0.0, 1.0, 1.0, 0.0])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn conditioned_submodel_preserves_energy_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..8).map(|_| b.add_variable(3)).collect();
        for &v in &vars {
            b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..2.0)).collect())
                .unwrap();
        }
        for i in 0..8 {
            b.add_edge_dense(
                vars[i],
                vars[(i + 1) % 8],
                (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
            )
            .unwrap();
        }
        let m = b.build();
        let labels: Vec<usize> = (0..8).map(|_| rng.gen_range(0..3)).collect();
        let mut active = vec![false; 8];
        for i in [2usize, 3, 4] {
            active[i] = true;
        }
        let (sub, map) = condition_submodel(&m, &labels, &active);
        assert_eq!(map, vec![2, 3, 4]);
        assert_eq!(sub.var_count(), 3);
        // E_full and E_sub must differ by the same constant for any two
        // labelings that agree outside the active set.
        let sub_labels_a: Vec<usize> = map.iter().map(|&i| labels[i]).collect();
        let mut labels_b = labels.clone();
        labels_b[3] = (labels[3] + 1) % 3;
        let sub_labels_b: Vec<usize> = map.iter().map(|&i| labels_b[i]).collect();
        let diff_full = m.energy(&labels_b) - m.energy(&labels);
        let diff_sub = sub.energy(&sub_labels_b) - sub.energy(&sub_labels_a);
        assert!((diff_full - diff_sub).abs() < 1e-12);
    }

    #[test]
    fn icm_local_expands_until_the_wave_settles() {
        // Start from all-zeros (bad: var 0 pays the 10.0 bias and every
        // variable its weak bias). Frontier = var 0 only; fixing it flips
        // var 1, which flips var 2, … the expansion must carry the wave
        // (and, the wave covering the whole chain, eventually hand off to
        // the full-sweep fallback).
        let n = 12;
        let m = biased_chain(n);
        let start = vec![0usize; n];
        let out = Icm::default().refine_local(&m, start.clone(), &[VarId(0)], &ctl());
        assert!(out.solution.energy() < m.energy(&start));
        assert_eq!(out.solution.energy(), 0.0, "optimum is all-ones");
        assert!(out.expansions > 0, "the wave must have expanded the region");
        assert!(out.solution.labels().iter().all(|&l| l == 1));
    }

    #[test]
    fn icm_local_stays_local_when_the_change_is_contained() {
        // A long chain that is already optimal except at the far end: the
        // active region must not grow to cover the model.
        let n = 40;
        let m = biased_chain(n);
        let mut start = vec![1usize; n];
        start[n - 1] = 0; // one local defect
        let out = Icm::default().refine_local(&m, start, &[VarId(n - 1)], &ctl());
        assert_eq!(out.solution.energy(), 0.0);
        assert!(!out.full_sweep);
        assert!(
            out.swept_vars < n / 2,
            "swept {} of {} vars for a one-variable defect",
            out.swept_vars,
            n
        );
    }

    #[test]
    fn local_refiners_never_return_worse_than_start() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let n = 10;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..2.0)).collect())
                    .unwrap();
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.3) {
                        b.add_edge_dense(
                            vars[i],
                            vars[j],
                            (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
                        )
                        .unwrap();
                    }
                }
            }
            let m = b.build();
            let start: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            let start_energy = m.energy(&start);
            let frontier = [VarId(rng.gen_range(0..n))];
            for solver in [&Icm::default() as &dyn MapSolver, &Trws::default()] {
                let out = solver.refine_local(&m, start.clone(), &frontier, &ctl());
                assert!(
                    out.solution.energy() <= start_energy + 1e-12,
                    "trial {trial}: {} worsened the start",
                    solver.name()
                );
                assert_eq!(out.solution.labels().len(), n);
            }
        }
    }

    #[test]
    fn oversized_frontier_falls_back_to_a_full_sweep() {
        let n = 6;
        let m = biased_chain(n);
        let frontier: Vec<VarId> = (0..n).map(VarId).collect();
        let start = vec![0usize; n];
        let out = Icm::default().refine_local(&m, start, &frontier, &ctl());
        assert!(out.full_sweep);
        assert_eq!(out.swept_vars, n);
        assert_eq!(out.solution.energy(), 0.0);
    }

    #[test]
    fn trws_local_fixes_a_defect_through_conditioning() {
        let n = 30;
        let m = biased_chain(n);
        let mut start = vec![1usize; n];
        start[14] = 0; // defect mid-chain
        let out = Trws::default().refine_local(&m, start, &[VarId(14)], &ctl());
        assert_eq!(out.solution.energy(), 0.0);
        assert!(!out.full_sweep, "a mid-chain defect must be fixed locally");
        assert!(out.swept_vars < n);
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let m = biased_chain(5);
        let start = vec![0usize; 5];
        let out = Icm::default().refine_local(&m, start.clone(), &[], &ctl());
        assert_eq!(out.solution.labels(), &start[..]);
        assert_eq!(out.swept_vars, 0);
        assert!(!out.full_sweep);
    }

    #[test]
    fn sealed_variables_never_move() {
        // The all-ones wave from var 0 must stop dead at the sealed var 6:
        // everything before it flips, everything at and after it stays.
        let n = 12;
        let m = biased_chain(n);
        let start = vec![0usize; n];
        for solver in [&Icm::default() as &dyn MapSolver, &Trws::default()] {
            let out =
                solver.refine_local_sealed(&m, start.clone(), &[VarId(0)], &[VarId(6)], &ctl());
            assert_eq!(
                out.solution.labels()[6],
                0,
                "{}: sealed variable moved",
                solver.name()
            );
            assert!(
                out.solution.energy() <= m.energy(&start) + 1e-12,
                "{}: energy contract broken",
                solver.name()
            );
            // The wave reached the seal from the left...
            assert!(out.solution.labels()[..6].iter().all(|&l| l == 1));
            // ...and could not jump it: var 7 pays 1.0 to disagree with the
            // frozen var 6 but only saves its 0.1 bias, so it stays 0.
            assert!(out.solution.labels()[7..].iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn sealed_refinement_survives_the_widening_fallback() {
        // An oversized frontier forces the ICM override onto its widened
        // (all-unsealed) path immediately; the seal must still hold.
        let n = 8;
        let m = biased_chain(n);
        let frontier: Vec<VarId> = (0..n).map(VarId).collect();
        let start = vec![0usize; n];
        let out = Icm::default().refine_local_sealed(&m, start, &frontier, &[VarId(3)], &ctl());
        assert!(out.full_sweep);
        assert_eq!(out.swept_vars, n - 1, "everything but the sealed var");
        assert_eq!(out.solution.labels()[3], 0);
        assert!(out.solution.labels()[..3].iter().all(|&l| l == 1));
    }

    #[test]
    fn empty_seal_matches_refine_local() {
        let n = 10;
        let m = biased_chain(n);
        let start = vec![0usize; n];
        let sealed =
            Icm::default().refine_local_sealed(&m, start.clone(), &[VarId(0)], &[], &ctl());
        let unsealed = Icm::default().refine_local(&m, start, &[VarId(0)], &ctl());
        assert_eq!(sealed.solution.labels(), unsealed.solution.labels());
        assert_eq!(sealed.solution.energy(), unsealed.solution.energy());
    }
}
