//! The pairwise-MRF energy function (paper Eq. 1) — a *mutable* model with
//! stable variable handles.
//!
//! `E(x) = Σ_i φ_i(x_i) + Σ_(i,j) ψ_ij(x_i, x_j)` over variables with finite
//! label sets. Pairwise potentials are stored once and *referenced* by edges:
//! in the diversity problem every inter-host edge for a given service uses
//! the same similarity submatrix, so sharing reduces memory from
//! O(edges · L²) to O(edges + services · L²).
//!
//! # Mutability and handle stability
//!
//! Incremental pipelines edit a model in place instead of reassembling it:
//! after a localized change (one host's candidate domain, one link), 99% of
//! the variables and factors are untouched, and rebuilding them linearly is
//! the dominant cost of absorbing the change. [`MrfModel`] therefore keeps
//! a **slot array with tombstones and a free list**, mirroring the host
//! layer's design in `netmodel`:
//!
//! * [`MrfModel::add_var`] returns a [`VarId`] that stays valid across any
//!   later mutation of *other* variables — removing a variable never
//!   reindexes its survivors.
//! * [`MrfModel::remove_var`] tombstones the slot (label count 0, incident
//!   edges removed) and recycles it through a free list, so a churning
//!   model's slot count stays bounded by its peak size.
//! * Labelings are indexed by slot: their arity is [`MrfModel::var_count`]
//!   (slots, including tombstones), and entries at dead slots are ignored
//!   by [`MrfModel::energy`]. Live variables are enumerated with
//!   [`MrfModel::live_vars`]; solvers sweep those only.
//! * Edges have their own slots, handles ([`EdgeId`]) and free list;
//!   [`MrfModel::incident_edges`] lists live edges only, so traversal never
//!   sees a tombstone.
//! * Mutations referencing a tombstoned slot **error**
//!   ([`crate::Error::UnknownVariable`] / [`crate::Error::UnknownEdge`])
//!   instead of corrupting the model.
//!
//! Slot recycling keeps fragmentation bounded under steady churn; a model
//! that *shrinks* (many removals, few additions) accretes dead slots and
//! unreferenced potentials instead. [`MrfModel::fragmentation`] measures
//! that share and [`MrfModel::should_compact`] reports when it crosses the
//! built-in threshold; [`MrfModel::compact`] then rewrites the model dense
//! again, returning the slot remap (the one operation that moves handles —
//! callers holding [`VarId`]s apply the remap or rebuild their index).
//!
//! ```
//! use mrf::model::MrfModel;
//!
//! # fn main() -> Result<(), mrf::Error> {
//! let mut m = MrfModel::new();
//! let x = m.add_var(2)?;
//! let y = m.add_var(2)?;
//! let z = m.add_var(2)?;
//! m.add_pairwise_dense(x, y, vec![1.0, 0.0, 0.0, 1.0])?;
//! let yz = m.add_pairwise_dense(y, z, vec![1.0, 0.0, 0.0, 1.0])?;
//!
//! // Remove y: x and z keep their handles, y's edges go with it.
//! m.remove_var(y)?;
//! assert_eq!(m.live_var_count(), 2);
//! assert_eq!(m.edge_count(), 0);
//! assert_eq!(m.labels(x), 2);
//!
//! // Mutations against the tombstone error instead of corrupting.
//! assert!(m.set_unary(y, vec![0.0, 0.0]).is_err());
//! assert!(m.remove_pairwise(yz).is_err());
//!
//! // The slot is recycled: the next add_var reuses y's index.
//! let w = m.add_var(3)?;
//! assert_eq!(w, y);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Handle to a variable in an [`MrfModel`].
///
/// Stable across mutations of other variables: only removing the variable
/// itself (which tombstones and eventually recycles the slot) or a
/// [`MrfModel::compact`] invalidates a handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Handle to a shared pairwise potential in an [`MrfModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PotentialId(pub usize);

/// Handle to an edge slot in an [`MrfModel`], as returned by
/// [`MrfModel::add_pairwise`] and accepted by [`MrfModel::remove_pairwise`].
/// Same stability contract as [`VarId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// A shared pairwise cost matrix (row-major; `rows` labels of the first
/// endpoint × `cols` labels of the second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Potential {
    rows: usize,
    cols: usize,
    costs: Vec<f64>,
}

impl Potential {
    /// The (rows, cols) shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The cost for labels `(la, lb)`.
    #[inline]
    pub fn cost(&self, la: usize, lb: usize) -> f64 {
        debug_assert!(la < self.rows && lb < self.cols);
        self.costs[la * self.cols + lb]
    }
}

/// Sentinel potential index marking a tombstoned edge slot.
const EDGE_TOMBSTONE: u32 = u32::MAX;

/// One edge: endpoints, the shared potential, and whether the potential is
/// applied transposed (its rows index `b`'s labels instead of `a`'s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    a: u32,
    b: u32,
    potential: u32,
    transposed: bool,
}

impl Edge {
    /// The lower-indexed endpoint.
    pub fn a(&self) -> VarId {
        VarId(self.a as usize)
    }

    /// The higher-indexed endpoint.
    pub fn b(&self) -> VarId {
        VarId(self.b as usize)
    }

    /// Whether this edge slot is live (vs. tombstoned by
    /// [`MrfModel::remove_pairwise`] / [`MrfModel::remove_var`]). Dead
    /// slots linger in [`MrfModel::edges`] until recycled or compacted;
    /// full-edge iterations must skip them (or use
    /// [`MrfModel::live_edges`]).
    #[inline]
    pub fn is_live(&self) -> bool {
        self.potential != EDGE_TOMBSTONE
    }

    /// Index of the shared potential backing this edge. Crate-internal:
    /// solver scratch structures resolve potentials into flat tables and
    /// need the identity, not just [`MrfModel::edge_cost`] lookups.
    #[inline]
    pub(crate) fn potential_index(&self) -> usize {
        self.potential as usize
    }

    /// Whether the potential applies transposed (its rows index `b`'s
    /// labels instead of `a`'s).
    #[inline]
    pub(crate) fn is_transposed(&self) -> bool {
        self.transposed
    }
}

/// A pairwise MRF, mutable with stable handles (module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrfModel {
    /// Labels per variable slot; 0 marks a tombstone.
    label_counts: Vec<u32>,
    /// Unary cost vector per variable slot (empty at tombstones).
    unary: Vec<Vec<f64>>,
    /// Shared potentials, append-only between compactions.
    potentials: Vec<Potential>,
    /// Live-edge reference count per potential.
    pot_refs: Vec<u32>,
    /// Edge slots; dead slots carry the [`EDGE_TOMBSTONE`] potential.
    edges: Vec<Edge>,
    /// Recyclable edge slots.
    free_edges: Vec<u32>,
    /// Live incident edge slots per variable slot.
    incident: Vec<Vec<u32>>,
    /// Recyclable variable slots.
    free_vars: Vec<u32>,
    /// Number of live edges.
    live_edges: usize,
}

impl Default for MrfModel {
    fn default() -> MrfModel {
        MrfModel::new()
    }
}

impl MrfModel {
    /// An empty model; grow it with [`MrfModel::add_var`] and the pairwise
    /// mutators, or assemble one in bulk through [`MrfBuilder`].
    pub fn new() -> MrfModel {
        MrfModel {
            label_counts: Vec::new(),
            unary: Vec::new(),
            potentials: Vec::new(),
            pot_refs: Vec::new(),
            edges: Vec::new(),
            free_edges: Vec::new(),
            incident: Vec::new(),
            free_vars: Vec::new(),
            live_edges: 0,
        }
    }

    /// Number of variable *slots*, including tombstones — the arity of
    /// labelings for this model (entries at dead slots are ignored). See
    /// [`MrfModel::live_var_count`] for the number of actual variables.
    pub fn var_count(&self) -> usize {
        self.label_counts.len()
    }

    /// Number of live (non-tombstoned) variables.
    pub fn live_var_count(&self) -> usize {
        self.label_counts.len() - self.free_vars.len()
    }

    /// Whether `v` names a live variable (false for tombstoned slots and
    /// out-of-range ids).
    #[inline]
    pub fn is_live(&self, v: VarId) -> bool {
        self.label_counts.get(v.0).is_some_and(|&c| c > 0)
    }

    /// Iterates over the live variables in slot order.
    pub fn live_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.label_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| VarId(i))
    }

    /// Number of live edges. See [`MrfModel::edge_slots`] for the raw slot
    /// count (message buffers indexed by edge slot need that).
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of edge *slots*, including tombstones.
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Number of labels of variable `v` (0 for a tombstoned slot).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn labels(&self, v: VarId) -> usize {
        self.label_counts[v.0] as usize
    }

    /// The label count of the largest domain (0 for an empty model).
    pub fn max_labels(&self) -> usize {
        self.label_counts.iter().copied().max().unwrap_or(0) as usize
    }

    /// The unary cost vector of variable `v` (empty for tombstoned slots).
    #[inline]
    pub fn unary(&self, v: VarId) -> &[f64] {
        &self.unary[v.0]
    }

    /// The edge slot array, normalized so that `a < b`. **Includes dead
    /// slots** — full iterations must skip entries failing
    /// [`Edge::is_live`], or use [`MrfModel::live_edges`]; indexed accesses
    /// through [`MrfModel::incident_edges`] only ever see live slots.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the live edges as `(slot index, edge)`.
    pub fn live_edges(&self) -> impl Iterator<Item = (usize, &Edge)> + '_ {
        self.edges.iter().enumerate().filter(|(_, e)| e.is_live())
    }

    /// The shared potential at `idx`. Crate-internal: lets solver scratch
    /// structures materialize flat per-orientation cost tables once per
    /// solve instead of going through [`MrfModel::edge_cost`]'s indirect
    /// lookup in the hot loops.
    #[inline]
    pub(crate) fn potential(&self, idx: usize) -> &Potential {
        &self.potentials[idx]
    }

    /// Slot indices of live edges incident to `v` (empty for tombstones).
    pub fn incident_edges(&self, v: VarId) -> &[u32] {
        &self.incident[v.0]
    }

    /// The pairwise cost of edge `e` for labels `(la, lb)` of its `(a, b)`
    /// endpoints.
    #[inline]
    pub fn edge_cost(&self, e: &Edge, la: usize, lb: usize) -> f64 {
        debug_assert!(e.is_live(), "edge_cost on a tombstoned edge");
        let p = &self.potentials[e.potential as usize];
        if e.transposed {
            p.cost(lb, la)
        } else {
            p.cost(la, lb)
        }
    }

    /// Evaluates the energy of a complete labeling. Entries at tombstoned
    /// slots are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong arity ([`MrfModel::var_count`]) or
    /// a live variable's label is out of range.
    pub fn energy(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.var_count(), "labeling arity mismatch");
        let mut total = 0.0;
        for (i, &l) in labels.iter().enumerate() {
            if self.label_counts[i] == 0 {
                continue;
            }
            let u = &self.unary[i];
            assert!(l < u.len(), "label {l} out of range for variable {i}");
            total += u[l];
        }
        for e in &self.edges {
            if !e.is_live() {
                continue;
            }
            total += self.edge_cost(e, labels[e.a as usize], labels[e.b as usize]);
        }
        total
    }

    /// The labeling that independently minimizes each unary term — the
    /// natural ICM / BP starting point. Tombstoned slots get label 0.
    pub fn unary_argmin(&self) -> Vec<usize> {
        self.unary
            .iter()
            .map(|u| {
                u.iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(l, _)| l)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total size of the labeling space as f64 (to detect brute-forceable
    /// instances without overflow). Tombstoned slots contribute factor 1.
    pub fn search_space(&self) -> f64 {
        self.label_counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| c as f64)
            .product()
    }

    // --- Mutation -------------------------------------------------------

    /// Adds a variable with `labels` possible labels (unary costs default
    /// to zero), recycling a tombstoned slot when one is free, and returns
    /// its handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyDomain`] if `labels == 0`.
    pub fn add_var(&mut self, labels: usize) -> Result<VarId> {
        if labels == 0 {
            return Err(Error::EmptyDomain(VarId(self.label_counts.len())));
        }
        match self.free_vars.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.label_counts[i] = labels as u32;
                self.unary[i] = vec![0.0; labels];
                debug_assert!(self.incident[i].is_empty());
                Ok(VarId(i))
            }
            None => {
                let id = VarId(self.label_counts.len());
                self.label_counts.push(labels as u32);
                self.unary.push(vec![0.0; labels]);
                self.incident.push(Vec::new());
                Ok(id)
            }
        }
    }

    /// Tombstones variable `v`, removing its incident edges (shared
    /// potentials losing their last reference become reclaimable by the
    /// next compaction). All other handles stay valid; the slot is recycled
    /// by a later [`MrfModel::add_var`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for out-of-range or already
    /// tombstoned variables.
    pub fn remove_var(&mut self, v: VarId) -> Result<()> {
        if !self.is_live(v) {
            return Err(Error::UnknownVariable(v));
        }
        for eidx in std::mem::take(&mut self.incident[v.0]) {
            self.drop_edge_slot(eidx, Some(v));
        }
        self.label_counts[v.0] = 0;
        self.unary[v.0] = Vec::new();
        self.free_vars.push(v.0 as u32);
        Ok(())
    }

    /// Sets the unary cost vector of `v` (replacing any previous costs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] (out of range or tombstoned) or
    /// [`Error::UnaryArity`].
    pub fn set_unary(&mut self, v: VarId, costs: Vec<f64>) -> Result<()> {
        if !self.is_live(v) {
            return Err(Error::UnknownVariable(v));
        }
        let labels = self.label_counts[v.0] as usize;
        if costs.len() != labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: costs.len(),
            });
        }
        self.unary[v.0] = costs;
        Ok(())
    }

    /// Adds `delta` to one unary entry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] (out of range or tombstoned) or
    /// [`Error::UnaryArity`] (label out of range).
    pub fn add_unary(&mut self, v: VarId, label: usize, delta: f64) -> Result<()> {
        if !self.is_live(v) {
            return Err(Error::UnknownVariable(v));
        }
        let labels = self.label_counts[v.0] as usize;
        if label >= labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: label + 1,
            });
        }
        self.unary[v.0][label] += delta;
        Ok(())
    }

    /// Registers a shared `rows × cols` potential (row-major costs).
    /// Potential ids are stable until [`MrfModel::compact`]; potentials no
    /// live edge references linger until then.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CostLength`] if `costs.len() != rows * cols`.
    pub fn add_potential(
        &mut self,
        rows: usize,
        cols: usize,
        costs: Vec<f64>,
    ) -> Result<PotentialId> {
        if costs.len() != rows * cols {
            return Err(Error::CostLength {
                expected: rows * cols,
                got: costs.len(),
            });
        }
        let id = PotentialId(self.potentials.len());
        self.potentials.push(Potential { rows, cols, costs });
        self.pot_refs.push(0);
        Ok(id)
    }

    /// Adds an edge between `a` and `b` using a shared potential whose rows
    /// index `a`'s labels and columns `b`'s labels, recycling a tombstoned
    /// edge slot when one is free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] (out of range or tombstoned),
    /// [`Error::UnknownPotential`], [`Error::SelfEdge`] or
    /// [`Error::PotentialShape`].
    pub fn add_pairwise(&mut self, a: VarId, b: VarId, potential: PotentialId) -> Result<EdgeId> {
        if !self.is_live(a) {
            return Err(Error::UnknownVariable(a));
        }
        if !self.is_live(b) {
            return Err(Error::UnknownVariable(b));
        }
        if a == b {
            return Err(Error::SelfEdge(a));
        }
        let (la, lb) = (self.labels(a), self.labels(b));
        let p = self
            .potentials
            .get(potential.0)
            .ok_or(Error::UnknownPotential(potential))?;
        if p.shape() != (la, lb) {
            return Err(Error::PotentialShape {
                a,
                b,
                expected: (la, lb),
                got: p.shape(),
            });
        }
        // Normalize to a < b; the potential was given in (a, b) orientation,
        // so flipping endpoints transposes it.
        let (lo, hi, transposed) = if a.0 < b.0 {
            (a, b, false)
        } else {
            (b, a, true)
        };
        let edge = Edge {
            a: lo.0 as u32,
            b: hi.0 as u32,
            potential: potential.0 as u32,
            transposed,
        };
        let idx = match self.free_edges.pop() {
            Some(slot) => {
                self.edges[slot as usize] = edge;
                slot
            }
            None => {
                self.edges.push(edge);
                (self.edges.len() - 1) as u32
            }
        };
        self.incident[lo.0].push(idx);
        self.incident[hi.0].push(idx);
        self.pot_refs[potential.0] += 1;
        self.live_edges += 1;
        Ok(EdgeId(idx as usize))
    }

    /// Adds an edge with its own dense cost matrix (`labels(a) × labels(b)`,
    /// row-major).
    ///
    /// # Errors
    ///
    /// See [`MrfModel::add_pairwise`] and [`MrfModel::add_potential`].
    pub fn add_pairwise_dense(&mut self, a: VarId, b: VarId, costs: Vec<f64>) -> Result<EdgeId> {
        // Validate everything add_pairwise would reject *before* registering
        // the potential — a failed edit must leave the model untouched, not
        // leak an orphan potential.
        if !self.is_live(a) {
            return Err(Error::UnknownVariable(a));
        }
        if !self.is_live(b) {
            return Err(Error::UnknownVariable(b));
        }
        if a == b {
            return Err(Error::SelfEdge(a));
        }
        let p = self.add_potential(self.labels(a), self.labels(b), costs)?;
        self.add_pairwise(a, b, p)
    }

    /// Tombstones edge `e`; the slot is recycled by a later
    /// [`MrfModel::add_pairwise`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEdge`] for out-of-range or already
    /// tombstoned edges.
    pub fn remove_pairwise(&mut self, e: EdgeId) -> Result<()> {
        if self.edges.get(e.0).is_none_or(|edge| !edge.is_live()) {
            return Err(Error::UnknownEdge(e));
        }
        self.drop_edge_slot(e.0 as u32, None);
        Ok(())
    }

    /// Tombstones a live edge slot, unlinking it from both incident lists
    /// (`skip`'s list is left alone — its owner is being cleared wholesale
    /// by [`MrfModel::remove_var`]).
    fn drop_edge_slot(&mut self, eidx: u32, skip: Option<VarId>) {
        let edge = self.edges[eidx as usize];
        debug_assert!(edge.is_live());
        for endpoint in [edge.a(), edge.b()] {
            if Some(endpoint) == skip {
                continue;
            }
            let list = &mut self.incident[endpoint.0];
            if let Some(pos) = list.iter().position(|&i| i == eidx) {
                list.swap_remove(pos);
            }
        }
        self.pot_refs[edge.potential as usize] -= 1;
        self.edges[eidx as usize] = Edge {
            a: 0,
            b: 0,
            potential: EDGE_TOMBSTONE,
            transposed: false,
        };
        self.free_edges.push(eidx);
        self.live_edges -= 1;
    }

    // --- Compaction -----------------------------------------------------

    /// The share of storage held by tombstones and unreferenced potentials:
    /// the maximum over dead variable slots, dead edge slots, and dead
    /// potentials, each as a fraction of their slot array. 0.0 for a dense
    /// model.
    pub fn fragmentation(&self) -> f64 {
        let frac = |dead: usize, total: usize| {
            if total == 0 {
                0.0
            } else {
                dead as f64 / total as f64
            }
        };
        let dead_pots = self.pot_refs.iter().filter(|&&r| r == 0).count();
        frac(self.free_vars.len(), self.label_counts.len())
            .max(frac(self.free_edges.len(), self.edges.len()))
            .max(frac(dead_pots, self.potentials.len()))
    }

    /// Dead slots a compaction would reclaim before the threshold trips.
    /// Slot recycling keeps steady churn fragmentation-free; only a model
    /// that shrank (or churned its shared potentials) accretes enough dead
    /// weight to cross this.
    const COMPACT_MIN_DEAD: usize = 32;

    /// Whether fragmentation crossed the compaction threshold: at least 32
    /// dead slots in some array *and* more than half of that array dead.
    /// Callers owning handle indexes react by calling
    /// [`MrfModel::compact`] (and remapping) or rebuilding.
    pub fn should_compact(&self) -> bool {
        let dead_pots = self.pot_refs.iter().filter(|&&r| r == 0).count();
        let trips = |dead: usize, total: usize| dead >= Self::COMPACT_MIN_DEAD && 2 * dead > total;
        trips(self.free_vars.len(), self.label_counts.len())
            || trips(self.free_edges.len(), self.edges.len())
            || trips(dead_pots, self.potentials.len())
    }

    /// Rewrites the model dense: drops tombstoned variable and edge slots
    /// and unreferenced potentials, renumbering the survivors in slot
    /// order. Returns the variable remap, indexed by old slot:
    /// `remap[old.0] == Some(new)` for surviving variables, `None` for
    /// tombstones. **This is the one operation that invalidates handles** —
    /// all previously issued [`VarId`]s, [`EdgeId`]s and [`PotentialId`]s
    /// refer to the new layout only through the remap.
    pub fn compact(&mut self) -> Vec<Option<VarId>> {
        let old_vars = self.label_counts.len();
        let mut remap = vec![None; old_vars];
        let mut next = 0usize;
        for (i, &c) in self.label_counts.iter().enumerate() {
            if c > 0 {
                remap[i] = Some(VarId(next));
                next += 1;
            }
        }
        let mut pot_remap = vec![u32::MAX; self.potentials.len()];
        let mut live_pots = Vec::new();
        let mut live_refs = Vec::new();
        for (i, pot) in self.potentials.drain(..).enumerate() {
            if self.pot_refs[i] > 0 {
                pot_remap[i] = live_pots.len() as u32;
                live_refs.push(self.pot_refs[i]);
                live_pots.push(pot);
            }
        }
        self.potentials = live_pots;
        self.pot_refs = live_refs;

        let mut live_edges = Vec::with_capacity(self.live_edges);
        for e in self.edges.drain(..) {
            if !e.is_live() {
                continue;
            }
            // The remap is monotone in slot order, so a < b is preserved.
            live_edges.push(Edge {
                a: remap[e.a as usize].expect("live edge endpoint").0 as u32,
                b: remap[e.b as usize].expect("live edge endpoint").0 as u32,
                potential: pot_remap[e.potential as usize],
                transposed: e.transposed,
            });
        }
        self.edges = live_edges;
        self.free_edges.clear();
        self.free_vars.clear();

        let mut label_counts = Vec::with_capacity(next);
        let mut unary = Vec::with_capacity(next);
        for (i, &c) in self.label_counts.iter().enumerate() {
            if c > 0 {
                label_counts.push(c);
                unary.push(std::mem::take(&mut self.unary[i]));
            }
        }
        self.label_counts = label_counts;
        self.unary = unary;

        self.incident = vec![Vec::new(); next];
        for (idx, e) in self.edges.iter().enumerate() {
            self.incident[e.a as usize].push(idx as u32);
            self.incident[e.b as usize].push(idx as u32);
        }
        self.live_edges = self.edges.len();
        remap
    }
}

/// Bulk builder for [`MrfModel`] — the classic assemble-then-solve path.
///
/// Produces a dense model (no tombstones); incremental pipelines keep
/// mutating it afterwards through the [`MrfModel`] mutators.
#[derive(Debug, Clone, Default)]
pub struct MrfBuilder {
    label_counts: Vec<u32>,
    unary: Vec<Vec<f64>>,
    potentials: Vec<Potential>,
    edges: Vec<Edge>,
}

impl MrfBuilder {
    /// Creates an empty builder.
    pub fn new() -> MrfBuilder {
        MrfBuilder::default()
    }

    /// Adds a variable with `labels` possible labels (unary costs default to
    /// zero) and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `labels == 0`; empty domains make the model infeasible.
    pub fn add_variable(&mut self, labels: usize) -> VarId {
        assert!(labels > 0, "variables need at least one label");
        let id = VarId(self.label_counts.len());
        self.label_counts.push(labels as u32);
        self.unary.push(vec![0.0; labels]);
        id
    }

    /// Sets the unary cost vector of `v` (replacing any previous costs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or [`Error::UnaryArity`].
    pub fn set_unary(&mut self, v: VarId, costs: Vec<f64>) -> Result<()> {
        let labels = *self
            .label_counts
            .get(v.0)
            .ok_or(Error::UnknownVariable(v))? as usize;
        if costs.len() != labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: costs.len(),
            });
        }
        self.unary[v.0] = costs;
        Ok(())
    }

    /// Adds `delta` to one unary entry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or [`Error::UnaryArity`] (label out
    /// of range).
    pub fn add_unary(&mut self, v: VarId, label: usize, delta: f64) -> Result<()> {
        let labels = *self
            .label_counts
            .get(v.0)
            .ok_or(Error::UnknownVariable(v))? as usize;
        if label >= labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: label + 1,
            });
        }
        self.unary[v.0][label] += delta;
        Ok(())
    }

    /// Registers a shared `rows × cols` potential (row-major costs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CostLength`] if `costs.len() != rows * cols`.
    pub fn add_potential(
        &mut self,
        rows: usize,
        cols: usize,
        costs: Vec<f64>,
    ) -> Result<PotentialId> {
        if costs.len() != rows * cols {
            return Err(Error::CostLength {
                expected: rows * cols,
                got: costs.len(),
            });
        }
        let id = PotentialId(self.potentials.len());
        self.potentials.push(Potential { rows, cols, costs });
        Ok(id)
    }

    /// Adds an edge between `a` and `b` using a shared potential whose rows
    /// index `a`'s labels and columns `b`'s labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`], [`Error::UnknownPotential`],
    /// [`Error::SelfEdge`] or [`Error::PotentialShape`].
    pub fn add_edge(&mut self, a: VarId, b: VarId, potential: PotentialId) -> Result<()> {
        let la = *self
            .label_counts
            .get(a.0)
            .ok_or(Error::UnknownVariable(a))? as usize;
        let lb = *self
            .label_counts
            .get(b.0)
            .ok_or(Error::UnknownVariable(b))? as usize;
        if a == b {
            return Err(Error::SelfEdge(a));
        }
        let p = self
            .potentials
            .get(potential.0)
            .ok_or(Error::UnknownPotential(potential))?;
        if p.shape() != (la, lb) {
            return Err(Error::PotentialShape {
                a,
                b,
                expected: (la, lb),
                got: p.shape(),
            });
        }
        // Normalize to a < b; the potential was given in (a, b) orientation,
        // so flipping endpoints transposes it.
        let (lo, hi, transposed) = if a.0 < b.0 {
            (a, b, false)
        } else {
            (b, a, true)
        };
        self.edges.push(Edge {
            a: lo.0 as u32,
            b: hi.0 as u32,
            potential: potential.0 as u32,
            transposed,
        });
        Ok(())
    }

    /// Adds an edge with its own dense cost matrix (`labels(a) × labels(b)`,
    /// row-major).
    ///
    /// # Errors
    ///
    /// See [`MrfBuilder::add_edge`] and [`MrfBuilder::add_potential`].
    pub fn add_edge_dense(&mut self, a: VarId, b: VarId, costs: Vec<f64>) -> Result<()> {
        let la = *self
            .label_counts
            .get(a.0)
            .ok_or(Error::UnknownVariable(a))? as usize;
        let lb = *self
            .label_counts
            .get(b.0)
            .ok_or(Error::UnknownVariable(b))? as usize;
        let p = self.add_potential(la, lb, costs)?;
        self.add_edge(a, b, p)
    }

    /// Number of variables added so far.
    pub fn var_count(&self) -> usize {
        self.label_counts.len()
    }

    /// Freezes the bulk phase, producing a dense [`MrfModel`] (which stays
    /// mutable through its own slot-recycling mutators).
    pub fn build(self) -> MrfModel {
        let n = self.label_counts.len();
        let mut incident = vec![Vec::new(); n];
        let mut pot_refs = vec![0u32; self.potentials.len()];
        for (idx, e) in self.edges.iter().enumerate() {
            incident[e.a as usize].push(idx as u32);
            incident[e.b as usize].push(idx as u32);
            pot_refs[e.potential as usize] += 1;
        }
        let live_edges = self.edges.len();
        MrfModel {
            label_counts: self.label_counts,
            unary: self.unary,
            potentials: self.potentials,
            pot_refs,
            edges: self.edges,
            free_edges: Vec::new(),
            incident,
            free_vars: Vec::new(),
            live_edges,
        }
    }
}

/// Reusable apply/revert overlay of additive unary adjustments.
///
/// Dual-decomposition coordinators repeatedly perturb a shard model's
/// boundary unaries with Lagrange-multiplier addons, solve, and put the
/// model back. Cloning the model per iteration would dominate the loop;
/// this overlay instead saves the touched rows into an internal arena,
/// adds the addons in place, and on [`UnaryOverlay::revert`] copies the
/// saved rows back **bitwise** — restoration is exact, not an
/// add-then-subtract that could leave floating-point residue. The arena
/// is retained across apply/revert cycles, so a warm loop allocates
/// nothing (the same idea as [`crate::SolveScratch`]).
///
/// ```
/// use mrf::model::{MrfModel, UnaryOverlay};
///
/// # fn main() -> Result<(), mrf::Error> {
/// let mut model = MrfModel::new();
/// let v = model.add_var(2)?;
/// model.set_unary(v, vec![0.3, 0.1])?;
///
/// let mut overlay = UnaryOverlay::new();
/// overlay.apply(&mut model, [(v, &[10.0, -10.0][..])])?;
/// assert_eq!(model.unary(v), &[10.3, -9.9]);
/// overlay.revert(&mut model);
/// assert_eq!(model.unary(v), &[0.3, 0.1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct UnaryOverlay {
    /// One entry per adjusted row: variable, offset and length of its
    /// saved original in `saved`.
    applied: Vec<(VarId, u32, u32)>,
    saved: Vec<f64>,
}

impl UnaryOverlay {
    /// Creates an empty overlay.
    pub fn new() -> UnaryOverlay {
        UnaryOverlay::default()
    }

    /// Whether the overlay currently holds saved rows (applied and not
    /// yet reverted).
    pub fn is_applied(&self) -> bool {
        !self.applied.is_empty()
    }

    /// Adds `addons` element-wise into the unaries of the named
    /// variables, saving the original rows for [`UnaryOverlay::revert`].
    /// A variable may appear more than once; addons stack, and revert
    /// still restores the original row.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] (out of range or tombstoned) or
    /// [`Error::UnaryArity`] (addon length ≠ label count). On error the
    /// model is left exactly as it was: rows applied before the offending
    /// entry are reverted.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is already applied — each apply must be
    /// paired with a revert against the same model.
    pub fn apply<'a, I>(&mut self, model: &mut MrfModel, addons: I) -> Result<()>
    where
        I: IntoIterator<Item = (VarId, &'a [f64])>,
    {
        assert!(
            self.applied.is_empty(),
            "UnaryOverlay::apply called while already applied; revert first"
        );
        for (v, extra) in addons {
            if !model.is_live(v) {
                self.revert(model);
                return Err(Error::UnknownVariable(v));
            }
            let labels = model.label_counts[v.0] as usize;
            if extra.len() != labels {
                self.revert(model);
                return Err(Error::UnaryArity {
                    var: v,
                    labels,
                    got: extra.len(),
                });
            }
            let offset = self.saved.len() as u32;
            self.saved.extend_from_slice(&model.unary[v.0]);
            self.applied.push((v, offset, labels as u32));
            for (u, e) in model.unary[v.0].iter_mut().zip(extra) {
                *u += e;
            }
        }
        Ok(())
    }

    /// Restores every adjusted row to its exact pre-apply contents and
    /// empties the overlay (keeping its arena capacity). Rows are
    /// restored newest-first so repeated entries for one variable unwind
    /// to the original. A no-op when nothing is applied.
    pub fn revert(&mut self, model: &mut MrfModel) {
        for &(v, offset, len) in self.applied.iter().rev() {
            let saved = &self.saved[offset as usize..(offset + len) as usize];
            model.unary[v.0].copy_from_slice(saved);
        }
        self.applied.clear();
        self.saved.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate_energy() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        b.set_unary(x, vec![1.0, 2.0]).unwrap();
        b.set_unary(y, vec![0.0, 5.0, 1.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        let m = b.build();
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.edge_count(), 1);
        // E(x=1, y=2) = 2.0 + 1.0 + cost(1,2)=5.0 -> 8.0
        assert_eq!(m.energy(&[1, 2]), 8.0);
        assert_eq!(m.energy(&[0, 0]), 1.0);
    }

    #[test]
    fn shared_potentials_are_reused() {
        let mut b = MrfBuilder::new();
        let vars: Vec<VarId> = (0..4).map(|_| b.add_variable(2)).collect();
        let pot = b.add_potential(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        for w in vars.windows(2) {
            b.add_edge(w[0], w[1], pot).unwrap();
        }
        let m = b.build();
        assert_eq!(m.edge_count(), 3);
        // Alternating labels cost 0; uniform labels cost 3.
        assert_eq!(m.energy(&[0, 1, 0, 1]), 0.0);
        assert_eq!(m.energy(&[0, 0, 0, 0]), 3.0);
    }

    #[test]
    fn reversed_edge_is_transposed() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        // Register the potential in (y, x) orientation: 3 rows, 2 cols.
        let costs = vec![
            0.0, 1.0, // y=0
            2.0, 3.0, // y=1
            4.0, 5.0, // y=2
        ];
        b.add_edge_dense(y, x, costs).unwrap();
        let m = b.build();
        // Edge is normalized to (x, y); cost(x=1, y=2) must equal cost(y=2, x=1)=5.
        let e = &m.edges()[0];
        assert_eq!(e.a(), x);
        assert_eq!(e.b(), y);
        assert_eq!(m.edge_cost(e, 1, 2), 5.0);
        assert_eq!(m.energy(&[1, 2]), 5.0);
    }

    #[test]
    fn incident_edges_cover_both_endpoints() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        b.add_edge_dense(x, y, vec![0.0; 4]).unwrap();
        b.add_edge_dense(y, z, vec![0.0; 4]).unwrap();
        let m = b.build();
        assert_eq!(m.incident_edges(x), &[0]);
        assert_eq!(m.incident_edges(y), &[0, 1]);
        assert_eq!(m.incident_edges(z), &[1]);
    }

    #[test]
    fn unary_argmin() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![2.0, 0.5, 1.0]).unwrap();
        let y = b.add_variable(2);
        b.set_unary(y, vec![0.0, -1.0]).unwrap();
        let m = b.build();
        assert_eq!(m.unary_argmin(), vec![1, 1]);
    }

    #[test]
    fn add_unary_accumulates() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        b.add_unary(x, 0, 1.5).unwrap();
        b.add_unary(x, 0, 2.0).unwrap();
        let m = b.build();
        assert_eq!(m.unary(x), &[3.5, 0.0]);
    }

    #[test]
    fn builder_errors() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        assert!(matches!(
            b.set_unary(x, vec![0.0; 3]),
            Err(Error::UnaryArity { .. })
        ));
        assert!(matches!(
            b.set_unary(VarId(9), vec![0.0]),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            b.add_edge_dense(x, x, vec![0.0; 4]),
            Err(Error::SelfEdge(_))
        ));
        let y = b.add_variable(3);
        assert!(matches!(
            b.add_edge_dense(x, y, vec![0.0; 4]),
            Err(Error::CostLength { .. })
        ));
        let pot = b.add_potential(2, 2, vec![0.0; 4]).unwrap();
        assert!(matches!(
            b.add_edge(x, y, pot),
            Err(Error::PotentialShape { .. })
        ));
        assert!(matches!(
            b.add_edge(x, VarId(7), pot),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            b.add_edge(x, y, PotentialId(9)),
            Err(Error::UnknownPotential(_))
        ));
        assert!(matches!(
            b.add_unary(x, 5, 1.0),
            Err(Error::UnaryArity { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_label_variable_panics() {
        MrfBuilder::new().add_variable(0);
    }

    #[test]
    fn search_space() {
        let mut b = MrfBuilder::new();
        b.add_variable(3);
        b.add_variable(4);
        let m = b.build();
        assert_eq!(m.search_space(), 12.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn energy_rejects_wrong_arity() {
        let mut b = MrfBuilder::new();
        b.add_variable(2);
        b.build().energy(&[]);
    }

    // --- Mutable-model tests -------------------------------------------

    /// A 4-chain with agreement-punishing edges; the workhorse fixture.
    fn chain() -> (MrfModel, Vec<VarId>) {
        let mut m = MrfModel::new();
        let vars: Vec<VarId> = (0..4).map(|_| m.add_var(2).unwrap()).collect();
        for w in vars.windows(2) {
            m.add_pairwise_dense(w[0], w[1], vec![1.0, 0.0, 0.0, 1.0])
                .unwrap();
        }
        (m, vars)
    }

    #[test]
    fn remove_var_tombstones_and_drops_incident_edges() {
        let (mut m, vars) = chain();
        assert_eq!(m.live_var_count(), 4);
        assert_eq!(m.edge_count(), 3);
        m.remove_var(vars[1]).unwrap();
        assert_eq!(m.var_count(), 4, "slot array keeps its size");
        assert_eq!(m.live_var_count(), 3);
        assert_eq!(m.edge_count(), 1, "both edges at v1 went with it");
        assert!(!m.is_live(vars[1]));
        assert_eq!(m.labels(vars[1]), 0);
        assert!(m.incident_edges(vars[1]).is_empty());
        assert!(m.incident_edges(vars[0]).is_empty());
        // Energy ignores the tombstone's entry entirely.
        assert_eq!(m.energy(&[0, 0, 0, 1]), 0.0);
        assert_eq!(m.energy(&[0, 1, 0, 0]), 1.0, "only the v2-v3 edge counts");
        // Live iteration skips it.
        let live: Vec<VarId> = m.live_vars().collect();
        assert_eq!(live, vec![vars[0], vars[2], vars[3]]);
        assert_eq!(m.search_space(), 8.0);
    }

    #[test]
    fn mutations_on_tombstones_error_not_corrupt() {
        let (mut m, vars) = chain();
        let e = m
            .add_pairwise_dense(vars[0], vars[2], vec![0.0; 4])
            .unwrap();
        m.remove_var(vars[0]).unwrap();
        let snapshot = m.clone();
        assert!(matches!(
            m.set_unary(vars[0], vec![0.0, 0.0]),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            m.add_unary(vars[0], 0, 1.0),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            m.remove_var(vars[0]),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            m.add_pairwise_dense(vars[0], vars[2], vec![0.0; 4]),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(m.remove_pairwise(e), Err(Error::UnknownEdge(_))));
        assert!(matches!(
            m.remove_pairwise(EdgeId(99)),
            Err(Error::UnknownEdge(_))
        ));
        assert!(matches!(
            m.add_pairwise_dense(vars[2], vars[2], vec![0.0; 4]),
            Err(Error::SelfEdge(_))
        ));
        assert!(matches!(
            m.add_pairwise_dense(vars[2], vars[3], vec![0.0; 3]),
            Err(Error::CostLength { .. })
        ));
        assert_eq!(m, snapshot, "failed mutations must leave the model as-is");
    }

    #[test]
    fn slots_are_recycled() {
        let (mut m, vars) = chain();
        m.remove_var(vars[2]).unwrap();
        let fresh = m.add_var(5).unwrap();
        assert_eq!(fresh, vars[2], "the tombstoned slot is reused");
        assert_eq!(m.var_count(), 4, "no slot growth under churn");
        assert_eq!(m.labels(fresh), 5);
        assert_eq!(m.unary(fresh), &[0.0; 5]);
        assert!(m.incident_edges(fresh).is_empty());
        // Edge slots recycle too.
        let slots_before = m.edge_slots();
        let e = m
            .add_pairwise_dense(vars[0], vars[1], vec![0.0; 4])
            .unwrap();
        m.remove_pairwise(e).unwrap();
        let e2 = m.add_pairwise_dense(vars[0], fresh, vec![0.0; 10]).unwrap();
        assert_eq!(e2, e, "the tombstoned edge slot is reused");
        assert_eq!(m.edge_slots(), slots_before);
    }

    #[test]
    fn stable_handles_survive_neighbor_churn() {
        let (mut m, vars) = chain();
        m.set_unary(vars[3], vec![0.25, 0.75]).unwrap();
        for _ in 0..10 {
            let lowest = m.live_vars().next().unwrap();
            m.remove_var(lowest).unwrap();
            let v = m.add_var(2).unwrap();
            let peer = m.live_vars().find(|&w| w != v).unwrap();
            m.add_pairwise_dense(v, peer, vec![0.0; 4]).unwrap();
        }
        // vars[3] was churned away at some point? No: we always remove the
        // lowest live slot, and vars[3] is the highest — it must have
        // survived every round with its unary intact.
        assert!(m.is_live(vars[3]));
        assert_eq!(m.unary(vars[3]), &[0.25, 0.75]);
    }

    #[test]
    fn remove_pairwise_leaves_endpoints() {
        let (mut m, vars) = chain();
        let shared = m.add_potential(2, 2, vec![0.5; 4]).unwrap();
        let e = m.add_pairwise(vars[0], vars[3], shared).unwrap();
        assert_eq!(m.edge_count(), 4);
        m.remove_pairwise(e).unwrap();
        assert_eq!(m.edge_count(), 3);
        assert!(m.is_live(vars[0]) && m.is_live(vars[3]));
        assert_eq!(m.energy(&[0, 1, 0, 1]), 0.0);
        // Double removal errors.
        assert!(matches!(m.remove_pairwise(e), Err(Error::UnknownEdge(_))));
    }

    #[test]
    fn live_edges_iterator_skips_tombstones() {
        let (mut m, vars) = chain();
        m.remove_var(vars[1]).unwrap();
        let live: Vec<usize> = m.live_edges().map(|(i, _)| i).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(m.edges().len(), 3, "dead slots linger until recycled");
        assert!(m.edges()[live[0]].is_live());
    }

    #[test]
    fn incremental_equals_bulk_assembly() {
        // The same model assembled through the builder and through the
        // mutable API must agree everywhere the solvers look.
        let mut b = MrfBuilder::new();
        let bx = b.add_variable(2);
        let by = b.add_variable(3);
        b.set_unary(bx, vec![1.0, 2.0]).unwrap();
        b.set_unary(by, vec![0.0, 5.0, 1.0]).unwrap();
        b.add_edge_dense(bx, by, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        let bulk = b.build();

        let mut m = MrfModel::new();
        let x = m.add_var(2).unwrap();
        let y = m.add_var(3).unwrap();
        m.set_unary(x, vec![1.0, 2.0]).unwrap();
        m.set_unary(y, vec![0.0, 5.0, 1.0]).unwrap();
        m.add_pairwise_dense(x, y, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();

        assert_eq!(bulk, m);
        assert_eq!(m.energy(&[1, 2]), 8.0);
    }

    #[test]
    fn fragmentation_and_compaction() {
        let mut m = MrfModel::new();
        let vars: Vec<VarId> = (0..100).map(|_| m.add_var(2).unwrap()).collect();
        for w in vars.windows(2) {
            m.add_pairwise_dense(w[0], w[1], vec![1.0, 0.0, 0.0, 1.0])
                .unwrap();
        }
        assert_eq!(m.fragmentation(), 0.0);
        assert!(!m.should_compact());
        // Shrink: remove 70 of the 100 variables.
        for &v in &vars[30..] {
            m.remove_var(v).unwrap();
        }
        assert!(m.fragmentation() > 0.5);
        assert!(m.should_compact());
        let energy_before = {
            let labels: Vec<usize> = (0..m.var_count()).map(|i| i % 2).collect();
            m.energy(&labels)
        };
        let remap = m.compact();
        assert_eq!(m.var_count(), 30);
        assert_eq!(m.live_var_count(), 30);
        assert_eq!(m.edge_count(), 29);
        assert_eq!(m.edge_slots(), 29);
        assert_eq!(m.fragmentation(), 0.0);
        assert!(!m.should_compact());
        // The remap maps survivors in order and drops tombstones.
        for (old, new) in remap.iter().enumerate() {
            if old < 30 {
                assert_eq!(*new, Some(VarId(old)));
            } else {
                assert_eq!(*new, None);
            }
        }
        // Same energy through the remapped labeling.
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        assert_eq!(m.energy(&labels), energy_before);
    }

    #[test]
    fn compact_reclaims_dead_potentials() {
        let mut m = MrfModel::new();
        let x = m.add_var(2).unwrap();
        let y = m.add_var(2).unwrap();
        let keep = m.add_potential(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        m.add_pairwise(x, y, keep).unwrap();
        for _ in 0..40 {
            let e = m.add_pairwise_dense(x, y, vec![0.5; 4]).unwrap();
            m.remove_pairwise(e).unwrap();
        }
        assert!(m.should_compact(), "40 dead potentials against 1 live");
        m.compact();
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.energy(&[0, 1]), 0.0);
        assert_eq!(m.energy(&[1, 1]), 1.0);
    }

    #[test]
    fn add_var_rejects_empty_domains() {
        let mut m = MrfModel::new();
        assert!(matches!(m.add_var(0), Err(Error::EmptyDomain(_))));
    }

    #[test]
    fn unary_overlay_round_trip_is_exact() {
        let mut m = MrfModel::new();
        let x = m.add_var(2).unwrap();
        let y = m.add_var(3).unwrap();
        // Values chosen so add-then-subtract would NOT restore bitwise.
        m.set_unary(x, vec![0.1, 0.3]).unwrap();
        m.set_unary(y, vec![1e16, -2.5, 0.0]).unwrap();
        let (orig_x, orig_y) = (m.unary(x).to_vec(), m.unary(y).to_vec());

        let mut ov = UnaryOverlay::new();
        ov.apply(&mut m, [(x, &[0.2, -0.2][..]), (y, &[1.0, 1.0, 1.0][..])])
            .unwrap();
        assert!(ov.is_applied());
        assert_eq!(m.unary(x), &[0.1 + 0.2, 0.3 - 0.2]);
        ov.revert(&mut m);
        assert!(!ov.is_applied());
        assert_eq!(m.unary(x), &orig_x[..]);
        assert_eq!(m.unary(y), &orig_y[..]);

        // The overlay is reusable: a second cycle behaves identically.
        ov.apply(&mut m, [(y, &[-1.0, 0.0, 2.0][..])]).unwrap();
        ov.revert(&mut m);
        assert_eq!(m.unary(y), &orig_y[..]);
    }

    #[test]
    fn unary_overlay_stacks_repeated_variables() {
        let mut m = MrfModel::new();
        let x = m.add_var(2).unwrap();
        m.set_unary(x, vec![1.0, 2.0]).unwrap();
        let mut ov = UnaryOverlay::new();
        ov.apply(&mut m, [(x, &[0.5, 0.0][..]), (x, &[0.25, 0.0][..])])
            .unwrap();
        assert_eq!(m.unary(x), &[1.75, 2.0]);
        ov.revert(&mut m);
        assert_eq!(m.unary(x), &[1.0, 2.0]);
    }

    #[test]
    fn unary_overlay_errors_leave_the_model_untouched() {
        let mut m = MrfModel::new();
        let x = m.add_var(2).unwrap();
        let y = m.add_var(2).unwrap();
        m.set_unary(x, vec![1.0, 2.0]).unwrap();
        m.remove_var(y).unwrap();

        let mut ov = UnaryOverlay::new();
        // Arity mismatch after a successful first entry: x is reverted.
        let err = ov
            .apply(&mut m, [(x, &[9.0, 9.0][..]), (x, &[1.0][..])])
            .unwrap_err();
        assert!(matches!(err, Error::UnaryArity { .. }));
        assert!(!ov.is_applied());
        assert_eq!(m.unary(x), &[1.0, 2.0]);

        // Tombstoned variable is rejected.
        let err = ov.apply(&mut m, [(y, &[0.0, 0.0][..])]).unwrap_err();
        assert!(matches!(err, Error::UnknownVariable(v) if v == y));
        assert_eq!(m.unary(x), &[1.0, 2.0]);
    }
}
