//! The pairwise-MRF energy function (paper Eq. 1).
//!
//! `E(x) = Σ_i φ_i(x_i) + Σ_(i,j) ψ_ij(x_i, x_j)` over variables with finite
//! label sets. Pairwise potentials are stored once and *referenced* by edges:
//! in the diversity problem every inter-host edge for a given service uses
//! the same similarity submatrix, so sharing reduces memory from
//! O(edges · L²) to O(edges + services · L²).

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Handle to a variable in an [`MrfModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Handle to a shared pairwise potential in an [`MrfModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PotentialId(pub usize);

/// A shared pairwise cost matrix (row-major; `rows` labels of the first
/// endpoint × `cols` labels of the second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Potential {
    rows: usize,
    cols: usize,
    costs: Vec<f64>,
}

impl Potential {
    /// The (rows, cols) shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The cost for labels `(la, lb)`.
    #[inline]
    pub fn cost(&self, la: usize, lb: usize) -> f64 {
        debug_assert!(la < self.rows && lb < self.cols);
        self.costs[la * self.cols + lb]
    }
}

/// One edge: endpoints, the shared potential, and whether the potential is
/// applied transposed (its rows index `b`'s labels instead of `a`'s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    a: u32,
    b: u32,
    potential: u32,
    transposed: bool,
}

impl Edge {
    /// The lower-indexed endpoint.
    pub fn a(&self) -> VarId {
        VarId(self.a as usize)
    }

    /// The higher-indexed endpoint.
    pub fn b(&self) -> VarId {
        VarId(self.b as usize)
    }
}

/// An immutable pairwise MRF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrfModel {
    label_counts: Vec<u32>,
    unary_offsets: Vec<usize>,
    unary: Vec<f64>,
    potentials: Vec<Potential>,
    edges: Vec<Edge>,
    // CSR of incident edge indices per variable.
    incident_offsets: Vec<usize>,
    incident: Vec<u32>,
}

impl MrfModel {
    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.label_counts.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of labels of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn labels(&self, v: VarId) -> usize {
        self.label_counts[v.0] as usize
    }

    /// The label count of the largest domain (0 for an empty model).
    pub fn max_labels(&self) -> usize {
        self.label_counts.iter().copied().max().unwrap_or(0) as usize
    }

    /// The unary cost vector of variable `v`.
    #[inline]
    pub fn unary(&self, v: VarId) -> &[f64] {
        &self.unary[self.unary_offsets[v.0]..self.unary_offsets[v.0 + 1]]
    }

    /// The edges, normalized so that `a < b`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Indices of edges incident to `v`.
    pub fn incident_edges(&self, v: VarId) -> &[u32] {
        &self.incident[self.incident_offsets[v.0]..self.incident_offsets[v.0 + 1]]
    }

    /// The pairwise cost of edge `e` for labels `(la, lb)` of its `(a, b)`
    /// endpoints.
    #[inline]
    pub fn edge_cost(&self, e: &Edge, la: usize, lb: usize) -> f64 {
        let p = &self.potentials[e.potential as usize];
        if e.transposed {
            p.cost(lb, la)
        } else {
            p.cost(la, lb)
        }
    }

    /// Evaluates the energy of a complete labeling.
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong arity or a label is out of range.
    pub fn energy(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.var_count(), "labeling arity mismatch");
        let mut total = 0.0;
        for (i, &l) in labels.iter().enumerate() {
            let u = self.unary(VarId(i));
            assert!(l < u.len(), "label {l} out of range for variable {i}");
            total += u[l];
        }
        for e in &self.edges {
            total += self.edge_cost(e, labels[e.a as usize], labels[e.b as usize]);
        }
        total
    }

    /// The labeling that independently minimizes each unary term — the
    /// natural ICM / BP starting point.
    pub fn unary_argmin(&self) -> Vec<usize> {
        (0..self.var_count())
            .map(|i| {
                self.unary(VarId(i))
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(l, _)| l)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Total size of the labeling space as f64 (to detect brute-forceable
    /// instances without overflow).
    pub fn search_space(&self) -> f64 {
        self.label_counts.iter().map(|&c| c as f64).product()
    }
}

/// Incremental builder for [`MrfModel`].
#[derive(Debug, Clone, Default)]
pub struct MrfBuilder {
    label_counts: Vec<u32>,
    unary: Vec<Vec<f64>>,
    potentials: Vec<Potential>,
    edges: Vec<Edge>,
}

impl MrfBuilder {
    /// Creates an empty builder.
    pub fn new() -> MrfBuilder {
        MrfBuilder::default()
    }

    /// Adds a variable with `labels` possible labels (unary costs default to
    /// zero) and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `labels == 0`; empty domains make the model infeasible.
    pub fn add_variable(&mut self, labels: usize) -> VarId {
        assert!(labels > 0, "variables need at least one label");
        let id = VarId(self.label_counts.len());
        self.label_counts.push(labels as u32);
        self.unary.push(vec![0.0; labels]);
        id
    }

    /// Sets the unary cost vector of `v` (replacing any previous costs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or [`Error::UnaryArity`].
    pub fn set_unary(&mut self, v: VarId, costs: Vec<f64>) -> Result<()> {
        let labels = *self
            .label_counts
            .get(v.0)
            .ok_or(Error::UnknownVariable(v))? as usize;
        if costs.len() != labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: costs.len(),
            });
        }
        self.unary[v.0] = costs;
        Ok(())
    }

    /// Adds `delta` to one unary entry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or [`Error::UnaryArity`] (label out
    /// of range).
    pub fn add_unary(&mut self, v: VarId, label: usize, delta: f64) -> Result<()> {
        let labels = *self
            .label_counts
            .get(v.0)
            .ok_or(Error::UnknownVariable(v))? as usize;
        if label >= labels {
            return Err(Error::UnaryArity {
                var: v,
                labels,
                got: label + 1,
            });
        }
        self.unary[v.0][label] += delta;
        Ok(())
    }

    /// Registers a shared `rows × cols` potential (row-major costs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CostLength`] if `costs.len() != rows * cols`.
    pub fn add_potential(
        &mut self,
        rows: usize,
        cols: usize,
        costs: Vec<f64>,
    ) -> Result<PotentialId> {
        if costs.len() != rows * cols {
            return Err(Error::CostLength {
                expected: rows * cols,
                got: costs.len(),
            });
        }
        let id = PotentialId(self.potentials.len());
        self.potentials.push(Potential { rows, cols, costs });
        Ok(id)
    }

    /// Adds an edge between `a` and `b` using a shared potential whose rows
    /// index `a`'s labels and columns `b`'s labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`], [`Error::UnknownPotential`],
    /// [`Error::SelfEdge`] or [`Error::PotentialShape`].
    pub fn add_edge(&mut self, a: VarId, b: VarId, potential: PotentialId) -> Result<()> {
        let la = *self
            .label_counts
            .get(a.0)
            .ok_or(Error::UnknownVariable(a))? as usize;
        let lb = *self
            .label_counts
            .get(b.0)
            .ok_or(Error::UnknownVariable(b))? as usize;
        if a == b {
            return Err(Error::SelfEdge(a));
        }
        let p = self
            .potentials
            .get(potential.0)
            .ok_or(Error::UnknownPotential(potential))?;
        if p.shape() != (la, lb) {
            return Err(Error::PotentialShape {
                a,
                b,
                expected: (la, lb),
                got: p.shape(),
            });
        }
        // Normalize to a < b; the potential was given in (a, b) orientation,
        // so flipping endpoints transposes it.
        let (lo, hi, transposed) = if a.0 < b.0 {
            (a, b, false)
        } else {
            (b, a, true)
        };
        self.edges.push(Edge {
            a: lo.0 as u32,
            b: hi.0 as u32,
            potential: potential.0 as u32,
            transposed,
        });
        Ok(())
    }

    /// Adds an edge with its own dense cost matrix (`labels(a) × labels(b)`,
    /// row-major).
    ///
    /// # Errors
    ///
    /// See [`MrfBuilder::add_edge`] and [`MrfBuilder::add_potential`].
    pub fn add_edge_dense(&mut self, a: VarId, b: VarId, costs: Vec<f64>) -> Result<()> {
        let la = *self
            .label_counts
            .get(a.0)
            .ok_or(Error::UnknownVariable(a))? as usize;
        let lb = *self
            .label_counts
            .get(b.0)
            .ok_or(Error::UnknownVariable(b))? as usize;
        let p = self.add_potential(la, lb, costs)?;
        self.add_edge(a, b, p)
    }

    /// Number of variables added so far.
    pub fn var_count(&self) -> usize {
        self.label_counts.len()
    }

    /// Freezes the model, building flat unary storage and the incidence CSR.
    pub fn build(self) -> MrfModel {
        let n = self.label_counts.len();
        let mut unary_offsets = Vec::with_capacity(n + 1);
        let mut unary = Vec::new();
        unary_offsets.push(0);
        for u in &self.unary {
            unary.extend_from_slice(u);
            unary_offsets.push(unary.len());
        }
        let mut deg = vec![0usize; n];
        for e in &self.edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        let mut incident_offsets = vec![0usize; n + 1];
        for i in 0..n {
            incident_offsets[i + 1] = incident_offsets[i] + deg[i];
        }
        let mut incident = vec![0u32; incident_offsets[n]];
        let mut cursor = incident_offsets[..n].to_vec();
        for (idx, e) in self.edges.iter().enumerate() {
            incident[cursor[e.a as usize]] = idx as u32;
            cursor[e.a as usize] += 1;
            incident[cursor[e.b as usize]] = idx as u32;
            cursor[e.b as usize] += 1;
        }
        MrfModel {
            label_counts: self.label_counts,
            unary_offsets,
            unary,
            potentials: self.potentials,
            edges: self.edges,
            incident_offsets,
            incident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate_energy() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        b.set_unary(x, vec![1.0, 2.0]).unwrap();
        b.set_unary(y, vec![0.0, 5.0, 1.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        let m = b.build();
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.edge_count(), 1);
        // E(x=1, y=2) = 2.0 + 1.0 + cost(1,2)=5.0 -> 8.0
        assert_eq!(m.energy(&[1, 2]), 8.0);
        assert_eq!(m.energy(&[0, 0]), 1.0);
    }

    #[test]
    fn shared_potentials_are_reused() {
        let mut b = MrfBuilder::new();
        let vars: Vec<VarId> = (0..4).map(|_| b.add_variable(2)).collect();
        let pot = b.add_potential(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        for w in vars.windows(2) {
            b.add_edge(w[0], w[1], pot).unwrap();
        }
        let m = b.build();
        assert_eq!(m.edge_count(), 3);
        // Alternating labels cost 0; uniform labels cost 3.
        assert_eq!(m.energy(&[0, 1, 0, 1]), 0.0);
        assert_eq!(m.energy(&[0, 0, 0, 0]), 3.0);
    }

    #[test]
    fn reversed_edge_is_transposed() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        // Register the potential in (y, x) orientation: 3 rows, 2 cols.
        let costs = vec![
            0.0, 1.0, // y=0
            2.0, 3.0, // y=1
            4.0, 5.0, // y=2
        ];
        b.add_edge_dense(y, x, costs).unwrap();
        let m = b.build();
        // Edge is normalized to (x, y); cost(x=1, y=2) must equal cost(y=2, x=1)=5.
        let e = &m.edges()[0];
        assert_eq!(e.a(), x);
        assert_eq!(e.b(), y);
        assert_eq!(m.edge_cost(e, 1, 2), 5.0);
        assert_eq!(m.energy(&[1, 2]), 5.0);
    }

    #[test]
    fn incident_edges_cover_both_endpoints() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        b.add_edge_dense(x, y, vec![0.0; 4]).unwrap();
        b.add_edge_dense(y, z, vec![0.0; 4]).unwrap();
        let m = b.build();
        assert_eq!(m.incident_edges(x), &[0]);
        assert_eq!(m.incident_edges(y), &[0, 1]);
        assert_eq!(m.incident_edges(z), &[1]);
    }

    #[test]
    fn unary_argmin() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![2.0, 0.5, 1.0]).unwrap();
        let y = b.add_variable(2);
        b.set_unary(y, vec![0.0, -1.0]).unwrap();
        let m = b.build();
        assert_eq!(m.unary_argmin(), vec![1, 1]);
    }

    #[test]
    fn add_unary_accumulates() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        b.add_unary(x, 0, 1.5).unwrap();
        b.add_unary(x, 0, 2.0).unwrap();
        let m = b.build();
        assert_eq!(m.unary(x), &[3.5, 0.0]);
    }

    #[test]
    fn builder_errors() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        assert!(matches!(
            b.set_unary(x, vec![0.0; 3]),
            Err(Error::UnaryArity { .. })
        ));
        assert!(matches!(
            b.set_unary(VarId(9), vec![0.0]),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            b.add_edge_dense(x, x, vec![0.0; 4]),
            Err(Error::SelfEdge(_))
        ));
        let y = b.add_variable(3);
        assert!(matches!(
            b.add_edge_dense(x, y, vec![0.0; 4]),
            Err(Error::CostLength { .. })
        ));
        let pot = b.add_potential(2, 2, vec![0.0; 4]).unwrap();
        assert!(matches!(
            b.add_edge(x, y, pot),
            Err(Error::PotentialShape { .. })
        ));
        assert!(matches!(
            b.add_edge(x, VarId(7), pot),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            b.add_edge(x, y, PotentialId(9)),
            Err(Error::UnknownPotential(_))
        ));
        assert!(matches!(
            b.add_unary(x, 5, 1.0),
            Err(Error::UnaryArity { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_label_variable_panics() {
        MrfBuilder::new().add_variable(0);
    }

    #[test]
    fn search_space() {
        let mut b = MrfBuilder::new();
        b.add_variable(3);
        b.add_variable(4);
        let m = b.build();
        assert_eq!(m.search_space(), 12.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn energy_rejects_wrong_arity() {
        let mut b = MrfBuilder::new();
        b.add_variable(2);
        b.build().energy(&[]);
    }
}
