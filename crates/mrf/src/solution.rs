//! Decoded MAP solutions and their diagnostics.

use serde::{Deserialize, Serialize};

/// The result of running a solver: a complete labeling plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    labels: Vec<usize>,
    energy: f64,
    lower_bound: Option<f64>,
    iterations: usize,
    converged: bool,
}

impl Solution {
    /// Assembles a solution record.
    pub fn new(
        labels: Vec<usize>,
        energy: f64,
        lower_bound: Option<f64>,
        iterations: usize,
        converged: bool,
    ) -> Solution {
        Solution {
            labels,
            energy,
            lower_bound,
            iterations,
            converged,
        }
    }

    /// The decoded label per variable.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The energy of the decoded labeling.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// A certified lower bound on the optimal energy, if the solver provides
    /// one (TRW-S does; ICM and BP do not).
    pub fn lower_bound(&self) -> Option<f64> {
        self.lower_bound
    }

    /// The optimality gap `energy - lower_bound`, if a bound is available.
    /// A gap of (numerically) zero certifies global optimality.
    pub fn gap(&self) -> Option<f64> {
        self.lower_bound.map(|lb| self.energy - lb)
    }

    /// Whether the gap certifies optimality within `tol`.
    pub fn is_certified_optimal(&self, tol: f64) -> bool {
        self.gap().is_some_and(|g| g.abs() <= tol)
    }

    /// Iterations the solver ran.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the solver reached its convergence criterion (as opposed to
    /// its iteration cap).
    pub fn converged(&self) -> bool {
        self.converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_and_certification() {
        let s = Solution::new(vec![0, 1], 5.0, Some(5.0), 3, true);
        assert_eq!(s.gap(), Some(0.0));
        assert!(s.is_certified_optimal(1e-9));
        let loose = Solution::new(vec![0, 1], 5.0, Some(4.0), 3, true);
        assert_eq!(loose.gap(), Some(1.0));
        assert!(!loose.is_certified_optimal(1e-9));
        let none = Solution::new(vec![0], 5.0, None, 1, false);
        assert_eq!(none.gap(), None);
        assert!(!none.is_certified_optimal(1e-9));
    }

    #[test]
    fn accessors() {
        let s = Solution::new(vec![2, 0, 1], 1.5, None, 7, false);
        assert_eq!(s.labels(), &[2, 0, 1]);
        assert_eq!(s.energy(), 1.5);
        assert_eq!(s.iterations(), 7);
        assert!(!s.converged());
    }
}
