//! Reusable per-solve structure: monotone-chain ordering, CSR edge lists,
//! resolved potential tables, flat message arenas, and a graph coloring.
//!
//! The message-passing solvers used to rebuild all of this — and allocate
//! per-edge message vectors — on every `solve` call, which dominated the
//! warm re-solve path the engine actually exercises. [`SolveScratch`]
//! hoists the structure into one reusable object:
//!
//! * **Ordering**: live variables ascending by
//!   slot — the monotone-chain order TRW-S sweeps (edges are normalized
//!   `a < b`, so slot order orients every edge forward).
//! * **CSR edge lists**: per variable, the forward edges (variable is `a`)
//!   and backward edges (variable is `b`) as flat index ranges — replacing
//!   the `incident`-list filter branch in every sweep.
//! * **Resolved potentials**: each distinct potential is materialized as
//!   two contiguous row-major tables, one per orientation, so every kernel
//!   reads cost rows sequentially instead of calling
//!   [`MrfModel::edge_cost`]'s indirect, branch-per-lookup path.
//! * **Message arena**: a single flat `f64` buffer; all forward (`a → b`)
//!   messages first, laid out in forward sweep order, then all backward
//!   messages in backward sweep order — so a TRW-S pass is one
//!   `split_at_mut` and two linear walks. An optional `f32` mirror backs
//!   the reduced-precision kernels.
//! * **Coloring** ([`crate::color::ColorClasses`]) for the parallel ICM/BP
//!   sweeps.
//!
//! [`SolveScratch::prepare`] recomputes everything from the model (edge
//! slots recycle under churn, so nothing is fingerprinted or trusted
//! stale) but only reuses `Vec` capacity — a warm re-solve on a
//! same-shaped model performs no allocation.

use std::collections::VecDeque;

use crate::color::ColorClasses;
use crate::model::{MrfModel, VarId};

/// Message cell: the storage type of a message arena. Arithmetic stays in
/// `f64` everywhere; only what is *stored* narrows under the optional f32
/// kernels.
pub(crate) trait MsgCell: Copy + Send + Sync + 'static {
    /// Narrowing (or identity) conversion on store.
    fn from_f64(x: f64) -> Self;
    /// Widening (or identity) conversion on load.
    fn to_f64(self) -> f64;
}

impl MsgCell for f64 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl MsgCell for f32 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Read-only view of the prepared structure, passed into solver kernels
/// alongside the mutable workspace (see [`SolveScratch::parts`]).
pub(crate) struct Tables<'a> {
    /// Variable slot count (including tombstones).
    pub n: usize,
    /// Live variable slots, ascending — the sweep order.
    pub order: &'a [u32],
    /// Label CSR per variable slot, length `n + 1`.
    pub var_off: &'a [u32],
    /// CSR starts of forward edges (variable is `a`), length `n + 1`.
    pub fwd_start: &'a [u32],
    /// Edge slots of forward edges.
    pub fwd_edges: &'a [u32],
    /// CSR starts of backward edges (variable is `b`), length `n + 1`.
    pub bwd_start: &'a [u32],
    /// Edge slots of backward edges.
    pub bwd_edges: &'a [u32],
    /// Per edge slot: endpoint `a`.
    pub edge_a: &'a [u32],
    /// Per edge slot: endpoint `b`.
    pub edge_b: &'a [u32],
    /// Per edge slot: `a`'s label count.
    pub edge_la: &'a [u32],
    /// Per edge slot: `b`'s label count.
    pub edge_lb: &'a [u32],
    /// Per edge slot: offset of the a-rows table (`[xa * lb + xb]`).
    pub pot_ab: &'a [u32],
    /// Per edge slot: offset of the b-rows table (`[xb * la + xa]`).
    pub pot_ba: &'a [u32],
    /// Per edge slot: arena offset of the `a → b` message (absolute,
    /// `< split`).
    pub off_to_b: &'a [u32],
    /// Per edge slot: arena offset of the `b → a` message, relative to
    /// `split`.
    pub off_to_a: &'a [u32],
    /// Boundary between the forward and backward message halves.
    pub split: usize,
    /// TRW-S node weight `γ_i = 1 / max(n_i⁺, n_i⁻)` per variable slot.
    pub gamma: &'a [f64],
    /// Backward edge count per variable slot.
    pub n_backward: &'a [u32],
    /// Independent-set partition of the live variables.
    pub colors: &'a ColorClasses,
    /// Largest label domain.
    pub max_labels: usize,
}

impl Tables<'_> {
    /// Label count of variable slot `i`.
    #[inline]
    pub fn labels(&self, i: usize) -> usize {
        (self.var_off[i + 1] - self.var_off[i]) as usize
    }

    /// Forward edge slots of variable `i`.
    #[inline]
    pub fn fwd(&self, i: usize) -> &[u32] {
        &self.fwd_edges[self.fwd_start[i] as usize..self.fwd_start[i + 1] as usize]
    }

    /// Backward edge slots of variable `i`.
    #[inline]
    pub fn bwd(&self, i: usize) -> &[u32] {
        &self.bwd_edges[self.bwd_start[i] as usize..self.bwd_start[i + 1] as usize]
    }
}

/// The mutable workspace split out alongside [`Tables`].
pub(crate) struct Parts<'a> {
    /// The read-only structure.
    pub t: Tables<'a>,
    /// The f64 message arena (`[..split]` forward, `[split..]` backward).
    pub arena: &'a mut Vec<f64>,
    /// The f32 mirror arena (empty until [`SolveScratch::ensure_f32`]).
    pub arena32: &'a mut Vec<f32>,
    /// Resolved potential tables, f64.
    pub pot: &'a [f64],
    /// Resolved potential tables, f32 (empty until `ensure_f32`).
    pub pot32: &'a [f32],
    /// θ̂ / belief buffer, `max_labels` long.
    pub theta: &'a mut Vec<f64>,
    /// Min-accumulator / conditional-cost buffer, `max_labels` long.
    pub mins: &'a mut Vec<f64>,
    /// Reusable labeling buffer (decode target).
    pub labels_buf: &'a mut Vec<usize>,
    /// Reusable decode visited flags.
    pub decoded: &'a mut Vec<bool>,
    /// Reusable decode BFS queue.
    pub queue: &'a mut VecDeque<u32>,
    /// Per-thread buffers for the colored parallel sweeps.
    pub thread_bufs: &'a mut Vec<Vec<f64>>,
}

/// Reusable solver structure + workspace (module docs). One instance per
/// engine (or per thread); not `Sync` — clone for concurrent solvers.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    n: usize,
    order: Vec<u32>,
    var_off: Vec<u32>,
    fwd_start: Vec<u32>,
    fwd_edges: Vec<u32>,
    bwd_start: Vec<u32>,
    bwd_edges: Vec<u32>,
    edge_a: Vec<u32>,
    edge_b: Vec<u32>,
    edge_la: Vec<u32>,
    edge_lb: Vec<u32>,
    pot_ab: Vec<u32>,
    pot_ba: Vec<u32>,
    off_to_b: Vec<u32>,
    off_to_a: Vec<u32>,
    split: usize,
    pot_resolved: Vec<(u32, u32)>,
    pot_data: Vec<f64>,
    pot_data32: Vec<f32>,
    gamma: Vec<f64>,
    n_backward: Vec<u32>,
    colors: ColorClasses,
    max_labels: usize,
    cursor: Vec<u32>,
    arena: Vec<f64>,
    arena32: Vec<f32>,
    theta: Vec<f64>,
    mins: Vec<f64>,
    labels_buf: Vec<usize>,
    decoded: Vec<bool>,
    queue: VecDeque<u32>,
    thread_bufs: Vec<Vec<f64>>,
}

impl SolveScratch {
    /// An empty scratch; [`SolveScratch::prepare`] sizes it to a model.
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }

    /// Rebuilds every table for `model`, reusing allocations, and zeroes
    /// the message arena. Called at the top of each scratch-aware solve:
    /// slots recycle under churn, so the structure is never trusted stale.
    pub fn prepare(&mut self, model: &MrfModel) {
        let n = model.var_count();
        self.n = n;
        self.max_labels = model.max_labels();

        self.order.clear();
        self.order.extend(model.live_vars().map(|v| v.0 as u32));

        self.var_off.clear();
        self.var_off.reserve(n + 1);
        self.var_off.push(0);
        let mut total_labels = 0u32;
        for i in 0..n {
            total_labels += model.labels(VarId(i)) as u32;
            self.var_off.push(total_labels);
        }

        // Forward/backward CSR over live edges.
        self.fwd_start.clear();
        self.fwd_start.resize(n + 1, 0);
        self.bwd_start.clear();
        self.bwd_start.resize(n + 1, 0);
        let mut live = 0usize;
        for (_, e) in model.live_edges() {
            self.fwd_start[e.a().0 + 1] += 1;
            self.bwd_start[e.b().0 + 1] += 1;
            live += 1;
        }
        for i in 1..=n {
            self.fwd_start[i] += self.fwd_start[i - 1];
            self.bwd_start[i] += self.bwd_start[i - 1];
        }
        self.fwd_edges.clear();
        self.fwd_edges.resize(live, 0);
        self.bwd_edges.clear();
        self.bwd_edges.resize(live, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.fwd_start[..n]);
        for (eidx, e) in model.live_edges() {
            let c = &mut self.cursor[e.a().0];
            self.fwd_edges[*c as usize] = eidx as u32;
            *c += 1;
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.bwd_start[..n]);
        for (eidx, e) in model.live_edges() {
            let c = &mut self.cursor[e.b().0];
            self.bwd_edges[*c as usize] = eidx as u32;
            *c += 1;
        }

        // Resolved potential tables, one pair per distinct potential:
        // pot_ab rows index a's labels, pot_ba rows index b's labels, both
        // row-major and contiguous. Transposed edges just swap which table
        // plays which role.
        let slots = model.edge_slots();
        self.edge_a.clear();
        self.edge_a.resize(slots, 0);
        self.edge_b.clear();
        self.edge_b.resize(slots, 0);
        self.edge_la.clear();
        self.edge_la.resize(slots, 0);
        self.edge_lb.clear();
        self.edge_lb.resize(slots, 0);
        self.pot_ab.clear();
        self.pot_ab.resize(slots, 0);
        self.pot_ba.clear();
        self.pot_ba.resize(slots, 0);
        self.pot_resolved.clear();
        self.pot_data.clear();
        for (eidx, e) in model.live_edges() {
            let pi = e.potential_index();
            if pi >= self.pot_resolved.len() {
                self.pot_resolved.resize(pi + 1, (u32::MAX, u32::MAX));
            }
            if self.pot_resolved[pi].0 == u32::MAX {
                let p = model.potential(pi);
                let (rows, cols) = p.shape();
                let p_off = self.pot_data.len() as u32;
                for y in 0..rows {
                    for x in 0..cols {
                        self.pot_data.push(p.cost(y, x));
                    }
                }
                let pt_off = self.pot_data.len() as u32;
                for x in 0..cols {
                    for y in 0..rows {
                        self.pot_data.push(p.cost(y, x));
                    }
                }
                self.pot_resolved[pi] = (p_off, pt_off);
            }
            let (p_off, pt_off) = self.pot_resolved[pi];
            self.edge_a[eidx] = e.a().0 as u32;
            self.edge_b[eidx] = e.b().0 as u32;
            self.edge_la[eidx] = model.labels(e.a()) as u32;
            self.edge_lb[eidx] = model.labels(e.b()) as u32;
            if e.is_transposed() {
                self.pot_ab[eidx] = pt_off;
                self.pot_ba[eidx] = p_off;
            } else {
                self.pot_ab[eidx] = p_off;
                self.pot_ba[eidx] = pt_off;
            }
        }

        // Arena layout: forward messages in forward sweep order, then
        // backward messages in backward sweep order.
        self.off_to_b.clear();
        self.off_to_b.resize(slots, 0);
        self.off_to_a.clear();
        self.off_to_a.resize(slots, 0);
        let mut cum = 0u32;
        for &iu in &self.order {
            let i = iu as usize;
            for k in self.fwd_start[i]..self.fwd_start[i + 1] {
                let e = self.fwd_edges[k as usize] as usize;
                self.off_to_b[e] = cum;
                cum += self.edge_lb[e];
            }
        }
        self.split = cum as usize;
        let mut cum = 0u32;
        for &iu in self.order.iter().rev() {
            let i = iu as usize;
            for k in self.bwd_start[i]..self.bwd_start[i + 1] {
                let e = self.bwd_edges[k as usize] as usize;
                self.off_to_a[e] = cum;
                cum += self.edge_la[e];
            }
        }
        let arena_len = self.split + cum as usize;
        self.arena.clear();
        self.arena.resize(arena_len, 0.0);
        // The f32 mirror is refreshed lazily by `ensure_f32`.
        self.arena32.clear();
        self.pot_data32.clear();

        // TRW-S node weights and the coloring for parallel sweeps.
        self.gamma.clear();
        self.gamma.reserve(n);
        self.n_backward.clear();
        self.n_backward.reserve(n);
        for i in 0..n {
            let nf = (self.fwd_start[i + 1] - self.fwd_start[i]) as usize;
            let nb = (self.bwd_start[i + 1] - self.bwd_start[i]) as usize;
            self.gamma.push(1.0 / nf.max(nb).max(1) as f64);
            self.n_backward.push(nb as u32);
        }
        self.colors.build(model);

        self.theta.clear();
        self.theta.resize(self.max_labels, 0.0);
        self.mins.clear();
        self.mins.resize(self.max_labels, 0.0);
    }

    /// Materializes the f32 mirrors of the potential tables and message
    /// arena. Must follow [`SolveScratch::prepare`]; idempotent per
    /// prepare.
    pub fn ensure_f32(&mut self) {
        if self.pot_data32.len() != self.pot_data.len() {
            self.pot_data32.clear();
            self.pot_data32
                .extend(self.pot_data.iter().map(|&x| x as f32));
        }
        self.arena32.clear();
        self.arena32.resize(self.arena.len(), 0.0);
    }

    /// Splits the scratch into the read-only tables and the mutable
    /// workspace (field-disjoint borrows).
    pub(crate) fn parts(&mut self) -> Parts<'_> {
        Parts {
            t: Tables {
                n: self.n,
                order: &self.order,
                var_off: &self.var_off,
                fwd_start: &self.fwd_start,
                fwd_edges: &self.fwd_edges,
                bwd_start: &self.bwd_start,
                bwd_edges: &self.bwd_edges,
                edge_a: &self.edge_a,
                edge_b: &self.edge_b,
                edge_la: &self.edge_la,
                edge_lb: &self.edge_lb,
                pot_ab: &self.pot_ab,
                pot_ba: &self.pot_ba,
                off_to_b: &self.off_to_b,
                off_to_a: &self.off_to_a,
                split: self.split,
                gamma: &self.gamma,
                n_backward: &self.n_backward,
                colors: &self.colors,
                max_labels: self.max_labels,
            },
            arena: &mut self.arena,
            arena32: &mut self.arena32,
            pot: &self.pot_data,
            pot32: &self.pot_data32,
            theta: &mut self.theta,
            mins: &mut self.mins,
            labels_buf: &mut self.labels_buf,
            decoded: &mut self.decoded,
            queue: &mut self.queue,
            thread_bufs: &mut self.thread_bufs,
        }
    }
}

/// A raw pointer that crosses scoped-thread boundaries. Used by the
/// colored parallel sweeps, whose safety argument is structural: variables
/// in one color class are pairwise non-adjacent, so their concurrent
/// updates touch disjoint labels/messages by construction.
pub(crate) struct SendPtr<T>(pub *mut T);

// SAFETY: see the type docs — every use partitions the pointee disjointly.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

/// Sizes `bufs[..threads]` to `each` zeroed f64s apiece, reusing capacity.
pub(crate) fn ensure_thread_bufs(bufs: &mut Vec<Vec<f64>>, threads: usize, each: usize) {
    if bufs.len() < threads {
        bufs.resize_with(threads, Vec::new);
    }
    for b in &mut bufs[..threads] {
        b.clear();
        b.resize(each, 0.0);
    }
}

/// Full-model energy through the resolved tables: identical terms to
/// [`MrfModel::energy`] (unary at live slots + every live edge once via
/// its owner's forward list), summed in table order.
pub(crate) fn energy_fast(model: &MrfModel, t: &Tables<'_>, pot: &[f64], labels: &[usize]) -> f64 {
    debug_assert_eq!(labels.len(), t.n);
    let mut total = 0.0;
    for &iu in t.order {
        let i = iu as usize;
        total += model.unary(VarId(i))[labels[i]];
        for &e in t.fwd(i) {
            let e = e as usize;
            let lb = t.edge_lb[e] as usize;
            let xb = labels[t.edge_b[e] as usize];
            total += pot[t.pot_ab[e] as usize + labels[i] * lb + xb];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn resolved_tables_match_edge_cost() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..8).map(|i| b.add_variable(2 + (i % 3))).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                if rng.gen_bool(0.5) {
                    let (la, lb) = (2 + (i % 3), 2 + (j % 3));
                    // Randomly flip endpoint order to exercise transposed
                    // potentials.
                    if rng.gen_bool(0.5) {
                        b.add_edge_dense(
                            vars[i],
                            vars[j],
                            (0..la * lb).map(|_| rng.gen_range(0.0..3.0)).collect(),
                        )
                        .unwrap();
                    } else {
                        b.add_edge_dense(
                            vars[j],
                            vars[i],
                            (0..la * lb).map(|_| rng.gen_range(0.0..3.0)).collect(),
                        )
                        .unwrap();
                    }
                }
            }
        }
        let m = b.build();
        let mut s = SolveScratch::new();
        s.prepare(&m);
        let p = s.parts();
        for (eidx, e) in m.live_edges() {
            let la = m.labels(e.a());
            let lb = m.labels(e.b());
            assert_eq!(p.t.edge_la[eidx] as usize, la);
            assert_eq!(p.t.edge_lb[eidx] as usize, lb);
            for xa in 0..la {
                for xb in 0..lb {
                    let want = m.edge_cost(e, xa, xb);
                    let ab = p.pot[p.t.pot_ab[eidx] as usize + xa * lb + xb];
                    let ba = p.pot[p.t.pot_ba[eidx] as usize + xb * la + xa];
                    assert_eq!(ab, want, "pot_ab mismatch on edge {eidx}");
                    assert_eq!(ba, want, "pot_ba mismatch on edge {eidx}");
                }
            }
        }
    }

    #[test]
    fn arena_offsets_are_disjoint_and_cover() {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..6).map(|_| b.add_variable(3)).collect();
        for i in 0..6 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 6], vec![0.0; 9])
                .unwrap();
        }
        let m = b.build();
        let mut s = SolveScratch::new();
        s.prepare(&m);
        let p = s.parts();
        let mut seen = vec![false; p.arena.len()];
        for (eidx, _) in m.live_edges() {
            let lb = p.t.edge_lb[eidx] as usize;
            let la = p.t.edge_la[eidx] as usize;
            for k in 0..lb {
                let at = p.t.off_to_b[eidx] as usize + k;
                assert!(at < p.t.split && !seen[at]);
                seen[at] = true;
            }
            for k in 0..la {
                let at = p.t.split + p.t.off_to_a[eidx] as usize + k;
                assert!(!seen[at]);
                seen[at] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "arena has unowned cells");
    }

    #[test]
    fn energy_fast_matches_model_energy() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..10).map(|_| b.add_variable(3)).collect();
        for &v in &vars {
            b.set_unary(v, (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .unwrap();
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                if rng.gen_bool(0.4) {
                    b.add_edge_dense(
                        vars[i],
                        vars[j],
                        (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    )
                    .unwrap();
                }
            }
        }
        let m = b.build();
        let mut s = SolveScratch::new();
        s.prepare(&m);
        let p = s.parts();
        for _ in 0..5 {
            let labels: Vec<usize> = (0..10).map(|_| rng.gen_range(0..3)).collect();
            let want = m.energy(&labels);
            let got = energy_fast(&m, &p.t, p.pot, &labels);
            assert!((want - got).abs() < 1e-9, "{want} vs {got}");
        }
    }

    #[test]
    fn prepare_reuses_capacity_after_churn() {
        let mut m = {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..12).map(|_| b.add_variable(2)).collect();
            for i in 0..12 {
                b.add_edge_dense(vars[i], vars[(i + 1) % 12], vec![0.0; 4])
                    .unwrap();
            }
            b.build()
        };
        let mut s = SolveScratch::new();
        s.prepare(&m);
        let cap = s.arena.capacity();
        // Remove a variable; prepare again must shrink lengths without
        // growing capacity.
        m.remove_var(VarId(3)).unwrap();
        s.prepare(&m);
        assert_eq!(s.arena.capacity(), cap);
        assert_eq!(s.order.len(), 11);
        // Dead slot is excluded everywhere.
        assert_eq!(s.fwd_start[3], s.fwd_start[4]);
        assert_eq!(s.bwd_start[3], s.bwd_start[4]);
    }
}
