use std::fmt;

use crate::{EdgeId, PotentialId, VarId};

/// Errors produced while constructing or mutating MRF models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A referenced variable does not exist (out of range, or tombstoned by
    /// [`crate::model::MrfModel::remove_var`]).
    UnknownVariable(VarId),
    /// A referenced potential does not exist.
    UnknownPotential(PotentialId),
    /// A referenced edge does not exist (out of range, or tombstoned by
    /// [`crate::model::MrfModel::remove_pairwise`]).
    UnknownEdge(EdgeId),
    /// A unary cost vector has the wrong number of entries.
    UnaryArity {
        /// The variable.
        var: VarId,
        /// Number of labels the variable has.
        labels: usize,
        /// Number of costs supplied.
        got: usize,
    },
    /// A potential's dimensions do not match the edge's endpoint label counts.
    PotentialShape {
        /// First endpoint.
        a: VarId,
        /// Second endpoint.
        b: VarId,
        /// Expected (rows, cols).
        expected: (usize, usize),
        /// Supplied (rows, cols).
        got: (usize, usize),
    },
    /// A dense cost matrix has the wrong number of entries.
    CostLength {
        /// Expected `rows * cols`.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// An edge connects a variable to itself.
    SelfEdge(VarId),
    /// A variable was declared with zero labels.
    EmptyDomain(VarId),
    /// Exact elimination aborted: an intermediate table would be too large.
    TreewidthExceeded {
        /// Entries the offending table would need.
        entries: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A solve was stopped by its deadline or a cancellation request before
    /// the algorithm could produce a meaningful result (only raised by
    /// solvers without anytime semantics, i.e. exact elimination).
    Interrupted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownVariable(v) => write!(f, "unknown variable {}", v.0),
            Error::UnknownPotential(p) => write!(f, "unknown potential {}", p.0),
            Error::UnknownEdge(e) => write!(f, "unknown or removed edge {}", e.0),
            Error::UnaryArity { var, labels, got } => write!(
                f,
                "variable {} has {labels} labels but {got} unary costs were supplied",
                var.0
            ),
            Error::PotentialShape {
                a,
                b,
                expected,
                got,
            } => write!(
                f,
                "edge ({}, {}) needs a {}x{} potential, got {}x{}",
                a.0, b.0, expected.0, expected.1, got.0, got.1
            ),
            Error::CostLength { expected, got } => {
                write!(f, "cost matrix needs {expected} entries, got {got}")
            }
            Error::SelfEdge(v) => write!(f, "edge connects variable {} to itself", v.0),
            Error::EmptyDomain(v) => write!(f, "variable {} has an empty label set", v.0),
            Error::TreewidthExceeded { entries, limit } => write!(
                f,
                "exact elimination needs a table of {entries} entries, above the {limit} cap"
            ),
            Error::Interrupted => {
                write!(
                    f,
                    "solve interrupted by deadline or cancellation before completion"
                )
            }
        }
    }
}

impl std::error::Error for Error {}
