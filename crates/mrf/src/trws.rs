//! Sequential tree-reweighted message passing (TRW-S).
//!
//! Implements Kolmogorov's TRW-S with the monotonic-chain decomposition
//! implied by the variable order: edges are oriented from lower to higher
//! index, each node `i` uses the weight `γ_i = 1 / max(n_i⁺, n_i⁻)` (its
//! forward/backward edge counts), and messages are updated in a forward
//! sweep over forward edges then a backward sweep over backward edges.
//!
//! Every backward sweep also yields the **TRW lower bound** on the optimal
//! energy, computed the way Kolmogorov's reference implementation does: the
//! normalization constant subtracted from each backward message is
//! accumulated, and every node adds the leftover share of its
//! reparameterized unary `(1 − n_i⁻·γ_i)·min_x θ̂_i(x)` — the mass belonging
//! to monotonic chains that terminate at the node. On tree-structured models
//! the bound meets the decoded energy, certifying global optimality — the
//! basis of this crate's solver-validation tests.
//!
//! Labelings are decoded with the conditioned forward sweep Kolmogorov
//! recommends: node `i` picks the label minimizing its unary cost plus
//! pairwise costs to already-decoded lower neighbors plus incoming messages
//! from higher neighbors.
//!
//! The passes run over a [`crate::order::SolveScratch`]: one flat message
//! arena (forward messages first, in sweep order), CSR forward/backward
//! edge lists, and per-orientation resolved potential tables, so the hot
//! loops are branch-free linear walks and a warm re-solve allocates
//! nothing. With [`TrwsOptions::f32_messages`] the arena (and the
//! potential tables the *message* kernels read) narrows to `f32`;
//! arithmetic, the decode's pairwise terms, the polish, and all objective
//! accounting stay `f64`, so the reported energy is exact — though the
//! lower bound then carries f32 rounding (~1e-5 relative) and tight
//! certification tolerances should stay on the f64 path.

use std::collections::VecDeque;

use crate::icm::fast_sweeps;
use crate::local::{condition_submodel, ActiveRegion, LocalRefine};
use crate::model::{MrfModel, VarId};
use crate::order::{energy_fast, MsgCell, SolveScratch, Tables};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Options controlling a TRW-S run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrwsOptions {
    /// Maximum number of forward+backward iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the lower-bound improvement and on the
    /// optimality gap.
    pub tolerance: f64,
    /// Number of consecutive low-improvement iterations required to declare
    /// convergence.
    pub patience: usize,
    /// ICM sweeps applied to each decoded labeling. Message passing solves
    /// the *dual* — on tie-heavy energies (constant unaries, symmetric
    /// similarity costs) the raw decode can be far from the primal optimum
    /// even at a tight bound, and a short local descent closes that gap.
    /// 0 disables polishing.
    pub polish_sweeps: usize,
    /// Store messages (and the message kernels' potential tables) as `f32`.
    /// Halves the hot loops' memory traffic; energies and the decode stay
    /// exact `f64`, but the lower bound inherits f32 rounding (module
    /// docs).
    pub f32_messages: bool,
}

impl Default for TrwsOptions {
    fn default() -> TrwsOptions {
        TrwsOptions {
            max_iterations: 100,
            tolerance: 1e-9,
            patience: 3,
            polish_sweeps: 8,
            f32_messages: false,
        }
    }
}

/// The TRW-S solver.
#[derive(Debug, Clone, Default)]
pub struct Trws {
    options: TrwsOptions,
}

impl Trws {
    /// Creates a solver with the given options.
    pub fn new(options: TrwsOptions) -> Trws {
        Trws { options }
    }
}

impl MapSolver for Trws {
    fn name(&self) -> String {
        "trws".to_string()
    }

    /// Runs TRW-S on `model` and returns the best labeling found, its
    /// energy, and the tightest certified lower bound. Honors the control's
    /// deadline/cancellation at iteration granularity, returning the best
    /// labeling seen so far (the unary argmin if stopped before the first
    /// pass completes).
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        let mut scratch = SolveScratch::new();
        self.solve_with(model, ctl, &mut scratch)
    }

    /// [`MapSolver::solve`] over a caller-owned scratch: a warm re-solve
    /// with a previously-used scratch performs no allocation.
    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        if model.var_count() == 0 {
            return Solution::new(Vec::new(), 0.0, Some(0.0), 0, true);
        }
        scratch.prepare(model);
        if self.options.f32_messages {
            scratch.ensure_f32();
            let p = scratch.parts();
            run(
                &self.options,
                model,
                &p.t,
                p.arena32,
                p.pot32,
                p.pot,
                p.theta,
                p.mins,
                p.labels_buf,
                p.decoded,
                p.queue,
                ctl,
            )
        } else {
            let p = scratch.parts();
            run(
                &self.options,
                model,
                &p.t,
                p.arena,
                p.pot,
                p.pot,
                p.theta,
                p.mins,
                p.labels_buf,
                p.decoded,
                p.queue,
                ctl,
            )
        }
    }

    /// Message passing on a *conditioned submodel*: active variables keep
    /// their domains, edges to the frozen outside fold into unaries at the
    /// outside's current label, and the sub-solution is spliced back only
    /// if it improves the full-model energy. Variables flipped at the
    /// region boundary expand the region and the conditioning repeats;
    /// past half the model the refinement falls back to a full
    /// [`MapSolver::refine`] (see [`crate::local`]).
    ///
    /// No lower bound is reported: the submodel's bound conditions on the
    /// frozen exterior and does not bound the full model's optimum.
    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        let mut scratch = SolveScratch::new();
        self.refine_local_with(model, start, frontier, ctl, &mut scratch)
    }

    /// [`MapSolver::refine_local`] reusing a caller-owned scratch across
    /// the conditioned sub-solves.
    fn refine_local_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> LocalRefine {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let mut region = ActiveRegion::new(model, frontier);
        if region.count == 0 {
            return LocalRefine::noop(model, start);
        }
        let mut labels = start;
        let mut energy = model.energy(&labels);
        let mut iterations = 0usize;
        let mut converged = false;
        // Each round re-conditions on the expanded region; the region is
        // monotone, so the loop is bounded by the expansion count anyway —
        // the cap only guards pathological flip/unflip cycling.
        const MAX_ROUNDS: usize = 16;
        for _ in 0..MAX_ROUNDS {
            if region.should_fall_back() {
                let expansions = region.expansions;
                let refined = self.refine_with(model, labels, ctl, scratch);
                return LocalRefine {
                    solution: refined,
                    swept_vars: model.live_var_count(),
                    expansions,
                    full_sweep: true,
                };
            }
            if ctl.should_stop() {
                break;
            }
            let (sub, map) = condition_submodel(model, &labels, &region.mask);
            let sub_solution = self.solve_with(&sub, ctl, scratch);
            iterations += sub_solution.iterations();
            let mut candidate = labels.clone();
            for (si, &fi) in map.iter().enumerate() {
                candidate[fi] = sub_solution.labels()[si];
            }
            let candidate_energy = model.energy(&candidate);
            if candidate_energy >= energy {
                converged = sub_solution.converged();
                break;
            }
            let flipped: Vec<usize> = map
                .iter()
                .copied()
                .filter(|&fi| candidate[fi] != labels[fi])
                .collect();
            labels = candidate;
            energy = candidate_energy;
            let mut added = 0;
            for &v in &flipped {
                added += region.activate_neighbors(model, v);
            }
            if added == 0 {
                converged = sub_solution.converged();
                break;
            }
            region.expansions += 1;
        }
        ctl.report(iterations, energy, None);
        LocalRefine {
            solution: Solution::new(labels, energy, None, iterations, converged),
            swept_vars: region.count,
            expansions: region.expansions,
            full_sweep: false,
        }
    }
}

/// The solve loop over a prepared scratch, generic in the message storage
/// type. `pot_msg` backs the message kernels (narrowed under f32), `pot64`
/// the decode's pairwise terms and the polish (always f64).
#[allow(clippy::too_many_arguments)]
fn run<T: MsgCell>(
    options: &TrwsOptions,
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &mut [T],
    pot_msg: &[T],
    pot64: &[f64],
    theta: &mut [f64],
    mins: &mut [f64],
    labels_buf: &mut Vec<usize>,
    decoded: &mut Vec<bool>,
    queue: &mut VecDeque<u32>,
    ctl: &SolveControl,
) -> Solution {
    let mut best_labels = model.unary_argmin();
    let mut best_energy = model.energy(&best_labels);
    let mut best_bound = f64::NEG_INFINITY;
    let mut stall = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;
    for iter in 0..options.max_iterations {
        if ctl.should_stop() {
            break;
        }
        iterations = iter + 1;
        forward_pass(model, t, arena, pot_msg, theta, mins);
        let bound = backward_pass(model, t, arena, pot_msg, theta, mins);
        // `theta` doubles as the decode's cost buffer, `mins` as the
        // polish's — both are free between passes.
        decode(model, t, arena, pot64, labels_buf, decoded, queue, theta);
        if options.polish_sweeps > 0 {
            fast_sweeps(
                model,
                t,
                pot64,
                labels_buf,
                mins,
                options.polish_sweeps,
                ctl,
            );
        }
        let energy = energy_fast(model, t, pot64, labels_buf);
        if energy < best_energy {
            best_energy = energy;
            best_labels.clear();
            best_labels.extend_from_slice(labels_buf);
        }
        let improvement = bound - best_bound;
        if bound > best_bound {
            best_bound = bound;
        }
        ctl.report(iterations, best_energy, Some(best_bound));
        // Converged: the gap certifies optimality, or the bound stopped
        // improving for `patience` iterations.
        if (best_energy - best_bound).abs() <= options.tolerance {
            converged = true;
            break;
        }
        if improvement.abs() <= options.tolerance * best_bound.abs().max(1.0) {
            stall += 1;
            if stall >= options.patience {
                converged = true;
                break;
            }
        } else {
            stall = 0;
        }
    }
    let bound = best_bound.is_finite().then_some(best_bound);
    // Per-iteration comparisons use `energy_fast` (resolved-table
    // summation order); the reported energy is recomputed canonically so
    // it is bit-identical to `model.energy(labels)` for callers that
    // re-derive it.
    let energy = model.energy(&best_labels);
    Solution::new(best_labels, energy, bound, iterations, converged)
}

/// `θ̂_i = unary_i + Σ incoming messages`, written into `theta[..L]`;
/// returns `L`. Incoming messages to `i` are the backward (`b → a`)
/// messages of its forward edges and the forward (`a → b`) messages of its
/// backward edges — both defined over `i`'s labels.
#[inline]
fn theta_hat<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    to_b: &[T],
    to_a: &[T],
    i: usize,
    theta: &mut [f64],
) -> usize {
    let l = t.labels(i);
    theta[..l].copy_from_slice(model.unary(VarId(i)));
    for &e in t.fwd(i) {
        let inc = t.off_to_a[e as usize] as usize;
        for (s, m) in theta[..l].iter_mut().zip(&to_a[inc..inc + l]) {
            *s += m.to_f64();
        }
    }
    for &e in t.bwd(i) {
        let inc = t.off_to_b[e as usize] as usize;
        for (s, m) in theta[..l].iter_mut().zip(&to_b[inc..inc + l]) {
            *s += m.to_f64();
        }
    }
    l
}

/// Forward sweep: every variable in order updates the `a → b` messages of
/// its forward edges.
fn forward_pass<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &mut [T],
    pot: &[T],
    theta: &mut [f64],
    mins: &mut [f64],
) {
    let (to_b, to_a) = arena.split_at_mut(t.split);
    for &iu in t.order {
        let i = iu as usize;
        let l = theta_hat(model, t, to_b, to_a, i, theta);
        let gamma = t.gamma[i];
        for &e in t.fwd(i) {
            let e = e as usize;
            let lb = t.edge_lb[e] as usize;
            let inc = t.off_to_a[e] as usize;
            let row0 = t.pot_ab[e] as usize;
            // base(xa) = γ θ̂(xa) − m_{b→a}(xa)
            // m_{a→b}(xb) = min_xa base(xa) + cost(xa, xb), then normalize.
            mins[..lb].fill(f64::INFINITY);
            for xa in 0..l {
                let base = gamma * theta[xa] - to_a[inc + xa].to_f64();
                let row = &pot[row0 + xa * lb..row0 + (xa + 1) * lb];
                for (m, &c) in mins[..lb].iter_mut().zip(row) {
                    let v = base + c.to_f64();
                    if v < *m {
                        *m = v;
                    }
                }
            }
            let mut low = f64::INFINITY;
            for &m in &mins[..lb] {
                if m < low {
                    low = m;
                }
            }
            let out = &mut to_b[t.off_to_b[e] as usize..][..lb];
            for (o, &m) in out.iter_mut().zip(&mins[..lb]) {
                *o = T::from_f64(m - low);
            }
        }
    }
}

/// Backward sweep over backward edges; returns the TRW lower bound (module
/// docs): the sum of backward-message normalization constants plus, per
/// node, the leftover chain mass `(1 − n⁻·γ)·min θ̂`.
fn backward_pass<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &mut [T],
    pot: &[T],
    theta: &mut [f64],
    mins: &mut [f64],
) -> f64 {
    let (to_b, to_a) = arena.split_at_mut(t.split);
    let mut bound = 0.0;
    for &iu in t.order.iter().rev() {
        let i = iu as usize;
        let l = theta_hat(model, t, to_b, to_a, i, theta);
        let gamma = t.gamma[i];
        // Chains that terminate at this node keep their share of θ̂.
        let leftover = 1.0 - t.n_backward[i] as f64 * gamma;
        if leftover > 1e-15 {
            let mut min_theta = f64::INFINITY;
            for &s in &theta[..l] {
                if s < min_theta {
                    min_theta = s;
                }
            }
            bound += leftover * min_theta;
        }
        for &e in t.bwd(i) {
            let e = e as usize;
            let la = t.edge_la[e] as usize;
            let inc = t.off_to_b[e] as usize;
            let row0 = t.pot_ba[e] as usize;
            mins[..la].fill(f64::INFINITY);
            for xb in 0..l {
                let base = gamma * theta[xb] - to_b[inc + xb].to_f64();
                let row = &pot[row0 + xb * la..row0 + (xb + 1) * la];
                for (m, &c) in mins[..la].iter_mut().zip(row) {
                    let v = base + c.to_f64();
                    if v < *m {
                        *m = v;
                    }
                }
            }
            let mut low = f64::INFINITY;
            for &m in &mins[..la] {
                if m < low {
                    low = m;
                }
            }
            bound += low;
            let out = &mut to_a[t.off_to_a[e] as usize..][..la];
            for (o, &m) in out.iter_mut().zip(&mins[..la]) {
                *o = T::from_f64(m - low);
            }
        }
    }
    bound
}

/// Conditioned decode in BFS order: each variable is labelled to minimize
/// its unary cost plus pairwise costs to *all already-decoded* neighbors
/// plus incoming messages from the undecoded ones. BFS order (instead of
/// raw index order) matters on tie-heavy energies: with flat unaries the
/// decode is a greedy coloring, and greedy coloring along a traversal tree
/// resolves cycles that index order miscolors. Pairwise terms read the f64
/// tables even under f32 messages.
#[allow(clippy::too_many_arguments)]
fn decode<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &[T],
    pot64: &[f64],
    labels: &mut Vec<usize>,
    decoded: &mut Vec<bool>,
    queue: &mut VecDeque<u32>,
    cost: &mut [f64],
) {
    let (to_b, to_a) = arena.split_at(t.split);
    labels.clear();
    labels.resize(t.n, 0);
    decoded.clear();
    decoded.resize(t.n, false);
    queue.clear();
    for &root in t.order {
        if decoded[root as usize] {
            continue;
        }
        queue.push_back(root);
        decoded[root as usize] = true;
        while let Some(iu) = queue.pop_front() {
            let i = iu as usize;
            let l = t.labels(i);
            cost[..l].copy_from_slice(model.unary(VarId(i)));
            for &e in t.fwd(i) {
                let e = e as usize;
                let other = t.edge_b[e] as usize;
                // `decoded[other]` is set when `other` is labelled *or*
                // queued; only trust the label once actually assigned —
                // queued-but-unlabelled entries hold `usize::MAX`.
                if decoded[other] && labels[other] != usize::MAX {
                    let xo = labels[other];
                    let row = &pot64[t.pot_ba[e] as usize + xo * l..][..l];
                    for (c, &p) in cost[..l].iter_mut().zip(row) {
                        *c += p;
                    }
                } else {
                    let m = &to_a[t.off_to_a[e] as usize..][..l];
                    for (c, m) in cost[..l].iter_mut().zip(m) {
                        *c += m.to_f64();
                    }
                }
                if !decoded[other] {
                    decoded[other] = true;
                    labels[other] = usize::MAX;
                    queue.push_back(other as u32);
                }
            }
            for &e in t.bwd(i) {
                let e = e as usize;
                let other = t.edge_a[e] as usize;
                if decoded[other] && labels[other] != usize::MAX {
                    let xo = labels[other];
                    let row = &pot64[t.pot_ab[e] as usize + xo * l..][..l];
                    for (c, &p) in cost[..l].iter_mut().zip(row) {
                        *c += p;
                    }
                } else {
                    let m = &to_b[t.off_to_b[e] as usize..][..l];
                    for (c, m) in cost[..l].iter_mut().zip(m) {
                        *c += m.to_f64();
                    }
                }
                if !decoded[other] {
                    decoded[other] = true;
                    labels[other] = usize::MAX;
                    queue.push_back(other as u32);
                }
            }
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (x, &c) in cost[..l].iter().enumerate() {
                if c < best_cost {
                    best_cost = c;
                    best = x;
                }
            }
            labels[i] = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn solve(model: &MrfModel) -> Solution {
        Trws::new(TrwsOptions::default()).solve(model, &SolveControl::new())
    }

    fn brute(model: &MrfModel) -> Solution {
        Exhaustive::new().solve(model, &SolveControl::new())
    }

    #[test]
    fn empty_model() {
        let s = solve(&MrfBuilder::new().build());
        assert!(s.labels().is_empty());
        assert_eq!(s.energy(), 0.0);
        assert!(s.converged());
    }

    #[test]
    fn single_variable_picks_unary_minimum() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(4);
        b.set_unary(x, vec![3.0, 0.5, 2.0, 1.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1]);
        assert_eq!(s.energy(), 0.5);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn antiferromagnetic_pair() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let s = solve(&b.build());
        assert_ne!(s.labels()[0], s.labels()[1]);
        assert_eq!(s.energy(), 0.0);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn chain_matches_exhaustive() {
        // TRW-S is exact on chains.
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..6).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..4.0)).collect())
                    .unwrap();
            }
            for w in vars.windows(2) {
                b.add_edge_dense(
                    w[0],
                    w[1],
                    (0..9).map(|_| rng.gen_range(0.0..4.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            assert!(
                (s.energy() - opt.energy()).abs() < 1e-7,
                "trial {trial}: trws {} vs exhaustive {}",
                s.energy(),
                opt.energy()
            );
            assert!(
                s.is_certified_optimal(1e-6),
                "trial {trial}: gap {:?}",
                s.gap()
            );
        }
    }

    #[test]
    fn tree_matches_exhaustive() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..9).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect())
                    .unwrap();
            }
            // Balanced binary tree edges.
            for i in 1..vars.len() {
                b.add_edge_dense(
                    vars[(i - 1) / 2],
                    vars[i],
                    (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            assert!(
                (s.energy() - opt.energy()).abs() < 1e-7,
                "trial {trial}: trws {} vs exhaustive {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_optimum_on_loopy_graphs() {
        let mut rng = StdRng::seed_from_u64(37);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let n = 6;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                    .unwrap();
            }
            // Ring plus a chord: loopy.
            for i in 0..n {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % n],
                    (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
                )
                .unwrap();
            }
            b.add_edge_dense(
                vars[0],
                vars[3],
                (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
            )
            .unwrap();
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            let lb = s.lower_bound().unwrap();
            assert!(
                lb <= opt.energy() + 1e-7,
                "trial {trial}: bound {lb} exceeds optimum {}",
                opt.energy()
            );
            assert!(s.energy() >= opt.energy() - 1e-9);
            // TRW-S should be near-optimal on these small instances.
            assert!(
                s.energy() - opt.energy() < 0.75,
                "trial {trial}: energy {} far from optimum {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn potts_grid_prefers_agreement_with_strong_coupling() {
        // 3x3 grid Potts model with strong attractive coupling and a single
        // biased corner: all variables should align with the bias.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..9).map(|_| b.add_variable(3)).collect();
        b.set_unary(vars[0], vec![0.0, 5.0, 5.0]).unwrap();
        // Potts: 0 if equal, 2 otherwise.
        let mut potts = vec![2.0; 9];
        for l in 0..3 {
            potts[l * 3 + l] = 0.0;
        }
        let pot = b.add_potential(3, 3, potts).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_edge(vars[r * 3 + c], vars[r * 3 + c + 1], pot)
                        .unwrap();
                }
                if r + 1 < 3 {
                    b.add_edge(vars[r * 3 + c], vars[(r + 1) * 3 + c], pot)
                        .unwrap();
                }
            }
        }
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[0; 9]);
        assert!(s.is_certified_optimal(1e-6));
    }

    #[test]
    fn hard_constraints_are_respected() {
        // Variable y is forbidden (BIG cost) from label 0 when x takes its
        // otherwise-optimal label 1.
        const BIG: f64 = 1e6;
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![1.0, 0.0]).unwrap();
        b.set_unary(y, vec![0.0, 0.3]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 0.0, BIG, 0.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1, 1]);
        assert!((s.energy() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn disconnected_components_solved_independently() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        let w = b.add_variable(2);
        b.set_unary(x, vec![0.0, 1.0]).unwrap();
        b.set_unary(w, vec![1.0, 0.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        b.add_edge_dense(z, w, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[0, 0, 1, 1]);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn random_loopy_graphs_close_to_exhaustive() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..8 {
            let mut b = MrfBuilder::new();
            let n = 7;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, vec![rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                    .unwrap();
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.45) {
                        b.add_edge_dense(
                            vars[i],
                            vars[j],
                            (0..4).map(|_| rng.gen_range(0.0..1.5)).collect(),
                        )
                        .unwrap();
                    }
                }
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            let rel = (s.energy() - opt.energy()) / opt.energy().abs().max(1.0);
            assert!(
                rel < 0.15,
                "trial {trial}: energy {} too far above optimum {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..20).map(|_| b.add_variable(3)).collect();
        for i in 0..20 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 20], vec![0.5; 9])
                .unwrap();
        }
        let s = Trws::new(TrwsOptions {
            max_iterations: 2,
            ..TrwsOptions::default()
        })
        .solve(&b.build(), &SolveControl::new());
        assert!(s.iterations() <= 2);
    }
}
