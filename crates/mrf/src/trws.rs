//! Sequential tree-reweighted message passing (TRW-S).
//!
//! Implements Kolmogorov's TRW-S with the monotonic-chain decomposition
//! implied by the variable order: edges are oriented from lower to higher
//! index, each node `i` uses the weight `γ_i = 1 / max(n_i⁺, n_i⁻)` (its
//! forward/backward edge counts), and messages are updated in a forward
//! sweep over forward edges then a backward sweep over backward edges.
//!
//! Every backward sweep also yields the **TRW lower bound** on the optimal
//! energy, computed the way Kolmogorov's reference implementation does: the
//! normalization constant subtracted from each backward message is
//! accumulated, and every node adds the leftover share of its
//! reparameterized unary `(1 − n_i⁻·γ_i)·min_x θ̂_i(x)` — the mass belonging
//! to monotonic chains that terminate at the node. On tree-structured models
//! the bound meets the decoded energy, certifying global optimality — the
//! basis of this crate's solver-validation tests.
//!
//! Labelings are decoded with the conditioned forward sweep Kolmogorov
//! recommends: node `i` picks the label minimizing its unary cost plus
//! pairwise costs to already-decoded lower neighbors plus incoming messages
//! from higher neighbors.

use crate::icm::{Icm, IcmOptions};
use crate::local::{condition_submodel, ActiveRegion, LocalRefine};
use crate::model::{MrfModel, VarId};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Options controlling a TRW-S run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrwsOptions {
    /// Maximum number of forward+backward iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the lower-bound improvement and on the
    /// optimality gap.
    pub tolerance: f64,
    /// Number of consecutive low-improvement iterations required to declare
    /// convergence.
    pub patience: usize,
    /// ICM sweeps applied to each decoded labeling. Message passing solves
    /// the *dual* — on tie-heavy energies (constant unaries, symmetric
    /// similarity costs) the raw decode can be far from the primal optimum
    /// even at a tight bound, and a short local descent closes that gap.
    /// 0 disables polishing.
    pub polish_sweeps: usize,
}

impl Default for TrwsOptions {
    fn default() -> TrwsOptions {
        TrwsOptions {
            max_iterations: 100,
            tolerance: 1e-9,
            patience: 3,
            polish_sweeps: 8,
        }
    }
}

/// The TRW-S solver.
#[derive(Debug, Clone, Default)]
pub struct Trws {
    options: TrwsOptions,
}

impl Trws {
    /// Creates a solver with the given options.
    pub fn new(options: TrwsOptions) -> Trws {
        Trws { options }
    }
}

impl MapSolver for Trws {
    fn name(&self) -> String {
        "trws".to_string()
    }

    /// Runs TRW-S on `model` and returns the best labeling found, its
    /// energy, and the tightest certified lower bound. Honors the control's
    /// deadline/cancellation at iteration granularity, returning the best
    /// labeling seen so far (the unary argmin if stopped before the first
    /// pass completes).
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        let n = model.var_count();
        if n == 0 {
            return Solution::new(Vec::new(), 0.0, Some(0.0), 0, true);
        }
        let mut state = State::new(model);
        let mut best_labels = model.unary_argmin();
        let mut best_energy = model.energy(&best_labels);
        let mut best_bound = f64::NEG_INFINITY;
        let mut stall = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;
        let polish = Icm::new(IcmOptions {
            max_sweeps: self.options.polish_sweeps,
        });

        for iter in 0..self.options.max_iterations {
            if ctl.should_stop() {
                break;
            }
            iterations = iter + 1;
            state.forward_pass(model);
            let bound = state.backward_pass(model);
            let mut labels = state.decode(model);
            let mut energy = model.energy(&labels);
            if self.options.polish_sweeps > 0 {
                let polished = polish.solve_from(model, labels, ctl);
                energy = polished.energy();
                labels = polished.labels().to_vec();
            }
            if energy < best_energy {
                best_energy = energy;
                best_labels = labels;
            }
            let improvement = bound - best_bound;
            if bound > best_bound {
                best_bound = bound;
            }
            ctl.report(iterations, best_energy, Some(best_bound));
            // Converged: the gap certifies optimality, or the bound stopped
            // improving for `patience` iterations.
            if (best_energy - best_bound).abs() <= self.options.tolerance {
                converged = true;
                break;
            }
            if improvement.abs() <= self.options.tolerance * best_bound.abs().max(1.0) {
                stall += 1;
                if stall >= self.options.patience {
                    converged = true;
                    break;
                }
            } else {
                stall = 0;
            }
        }
        let bound = best_bound.is_finite().then_some(best_bound);
        Solution::new(best_labels, best_energy, bound, iterations, converged)
    }

    /// Message passing on a *conditioned submodel*: active variables keep
    /// their domains, edges to the frozen outside fold into unaries at the
    /// outside's current label, and the sub-solution is spliced back only
    /// if it improves the full-model energy. Variables flipped at the
    /// region boundary expand the region and the conditioning repeats;
    /// past half the model the refinement falls back to a full
    /// [`MapSolver::refine`] (see [`crate::local`]).
    ///
    /// No lower bound is reported: the submodel's bound conditions on the
    /// frozen exterior and does not bound the full model's optimum.
    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let mut region = ActiveRegion::new(model, frontier);
        if region.count == 0 {
            return LocalRefine::noop(model, start);
        }
        let mut labels = start;
        let mut energy = model.energy(&labels);
        let mut iterations = 0usize;
        let mut converged = false;
        // Each round re-conditions on the expanded region; the region is
        // monotone, so the loop is bounded by the expansion count anyway —
        // the cap only guards pathological flip/unflip cycling.
        const MAX_ROUNDS: usize = 16;
        for _ in 0..MAX_ROUNDS {
            if region.should_fall_back() {
                let expansions = region.expansions;
                let refined = self.refine(model, labels, ctl);
                return LocalRefine {
                    solution: refined,
                    swept_vars: model.live_var_count(),
                    expansions,
                    full_sweep: true,
                };
            }
            if ctl.should_stop() {
                break;
            }
            let (sub, map) = condition_submodel(model, &labels, &region.mask);
            let sub_solution = self.solve(&sub, ctl);
            iterations += sub_solution.iterations();
            let mut candidate = labels.clone();
            for (si, &fi) in map.iter().enumerate() {
                candidate[fi] = sub_solution.labels()[si];
            }
            let candidate_energy = model.energy(&candidate);
            if candidate_energy >= energy {
                converged = sub_solution.converged();
                break;
            }
            let flipped: Vec<usize> = map
                .iter()
                .copied()
                .filter(|&fi| candidate[fi] != labels[fi])
                .collect();
            labels = candidate;
            energy = candidate_energy;
            let mut added = 0;
            for &v in &flipped {
                added += region.activate_neighbors(model, v);
            }
            if added == 0 {
                converged = sub_solution.converged();
                break;
            }
            region.expansions += 1;
        }
        ctl.report(iterations, energy, None);
        LocalRefine {
            solution: Solution::new(labels, energy, None, iterations, converged),
            swept_vars: region.count,
            expansions: region.expansions,
            full_sweep: false,
        }
    }
}

/// Message state: two vectors per edge, stored flat.
struct State {
    // msg_to_a[e]: message from b(e) to a(e), defined over a's labels.
    msg_to_a: Vec<f64>,
    off_a: Vec<usize>,
    // msg_to_b[e]: message from a(e) to b(e), defined over b's labels.
    msg_to_b: Vec<f64>,
    off_b: Vec<usize>,
    gamma: Vec<f64>,
    // Number of backward edges (lower-indexed neighbors) per node.
    n_backward: Vec<usize>,
    scratch: Vec<f64>,
}

impl State {
    fn new(model: &MrfModel) -> State {
        // Offsets are per edge *slot* so incident indices address messages
        // directly; tombstoned slots get zero-length messages.
        let mut off_a = Vec::with_capacity(model.edge_slots() + 1);
        let mut off_b = Vec::with_capacity(model.edge_slots() + 1);
        off_a.push(0);
        off_b.push(0);
        for e in model.edges() {
            let (la, lb) = if e.is_live() {
                (model.labels(e.a()), model.labels(e.b()))
            } else {
                (0, 0)
            };
            off_a.push(off_a.last().unwrap() + la);
            off_b.push(off_b.last().unwrap() + lb);
        }
        let n = model.var_count();
        let mut fwd = vec![0usize; n];
        let mut bwd = vec![0usize; n];
        for (_, e) in model.live_edges() {
            fwd[e.a().0] += 1;
            bwd[e.b().0] += 1;
        }
        let gamma = (0..n)
            .map(|i| 1.0 / fwd[i].max(bwd[i]).max(1) as f64)
            .collect();
        State {
            msg_to_a: vec![0.0; *off_a.last().unwrap()],
            off_a,
            msg_to_b: vec![0.0; *off_b.last().unwrap()],
            off_b,
            gamma,
            n_backward: bwd,
            scratch: vec![0.0; model.max_labels()],
        }
    }

    /// `θ̂_i = unary_i + Σ incoming messages`, written into `scratch[..L]`.
    fn theta_hat(&mut self, model: &MrfModel, i: usize) {
        let v = VarId(i);
        let labels = model.labels(v);
        self.scratch[..labels].copy_from_slice(model.unary(v));
        for &eidx in model.incident_edges(v) {
            let e = &model.edges()[eidx as usize];
            let incoming = if e.a().0 == i {
                &self.msg_to_a[self.off_a[eidx as usize]..self.off_a[eidx as usize + 1]]
            } else {
                &self.msg_to_b[self.off_b[eidx as usize]..self.off_b[eidx as usize + 1]]
            };
            for (s, m) in self.scratch[..labels].iter_mut().zip(incoming) {
                *s += m;
            }
        }
    }

    fn forward_pass(&mut self, model: &MrfModel) {
        for i in 0..model.var_count() {
            if !model.is_live(VarId(i)) {
                continue;
            }
            self.theta_hat(model, i);
            let gamma = self.gamma[i];
            let la = model.labels(VarId(i));
            for &eidx in model.incident_edges(VarId(i)) {
                let eidx = eidx as usize;
                let e = model.edges()[eidx];
                if e.a().0 != i {
                    continue; // only forward edges (i -> higher neighbor)
                }
                let lb = model.labels(e.b());
                // base(xa) = γ θ̂(xa) − m_{b→a}(xa)
                // m_{a→b}(xb) = min_xa base(xa) + cost(xa, xb), then normalize.
                let mut mins = vec![f64::INFINITY; lb];
                for xa in 0..la {
                    let base = gamma * self.scratch[xa] - self.msg_to_a[self.off_a[eidx] + xa];
                    for (xb, m) in mins.iter_mut().enumerate() {
                        let c = base + model.edge_cost(&e, xa, xb);
                        if c < *m {
                            *m = c;
                        }
                    }
                }
                let low = mins.iter().copied().fold(f64::INFINITY, f64::min);
                let out = &mut self.msg_to_b[self.off_b[eidx]..self.off_b[eidx + 1]];
                for (o, m) in out.iter_mut().zip(&mins) {
                    *o = m - low;
                }
            }
        }
    }

    /// Backward sweep; returns the TRW lower bound (module docs): the sum of
    /// backward-message normalization constants plus, per node, the leftover
    /// chain mass `(1 − n⁻·γ)·min θ̂`.
    fn backward_pass(&mut self, model: &MrfModel) -> f64 {
        let mut bound = 0.0;
        for i in (0..model.var_count()).rev() {
            if !model.is_live(VarId(i)) {
                continue;
            }
            self.theta_hat(model, i);
            let gamma = self.gamma[i];
            let lb_count = model.labels(VarId(i));
            // Chains that terminate at this node keep their share of θ̂.
            let leftover = 1.0 - self.n_backward[i] as f64 * gamma;
            if leftover > 1e-15 {
                let min_theta = self.scratch[..lb_count]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                bound += leftover * min_theta;
            }
            for &eidx in model.incident_edges(VarId(i)) {
                let eidx = eidx as usize;
                let e = model.edges()[eidx];
                if e.b().0 != i {
                    continue; // only backward edges (i -> lower neighbor)
                }
                let la = model.labels(e.a());
                let mut mins = vec![f64::INFINITY; la];
                for xb in 0..lb_count {
                    let base = gamma * self.scratch[xb] - self.msg_to_b[self.off_b[eidx] + xb];
                    for (xa, m) in mins.iter_mut().enumerate() {
                        let c = base + model.edge_cost(&e, xa, xb);
                        if c < *m {
                            *m = c;
                        }
                    }
                }
                let low = mins.iter().copied().fold(f64::INFINITY, f64::min);
                bound += low;
                let out = &mut self.msg_to_a[self.off_a[eidx]..self.off_a[eidx + 1]];
                for (o, m) in out.iter_mut().zip(&mins) {
                    *o = m - low;
                }
            }
        }
        bound
    }

    /// Conditioned decode in BFS order: each variable is labelled to
    /// minimize its unary cost plus pairwise costs to *all already-decoded*
    /// neighbors plus incoming messages from the undecoded ones. BFS order
    /// (instead of raw index order) matters on tie-heavy energies: with flat
    /// unaries the decode is a greedy coloring, and greedy coloring along a
    /// traversal tree resolves cycles that index order miscolors.
    fn decode(&self, model: &MrfModel) -> Vec<usize> {
        let n = model.var_count();
        let mut labels = vec![0usize; n];
        let mut decoded = vec![false; n];
        let mut cost = vec![0.0f64; model.max_labels()];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            if decoded[root] || !model.is_live(VarId(root)) {
                continue;
            }
            queue.push_back(root);
            decoded[root] = true;
            while let Some(i) = queue.pop_front() {
                let l = model.labels(VarId(i));
                cost[..l].copy_from_slice(model.unary(VarId(i)));
                for &eidx in model.incident_edges(VarId(i)) {
                    let eidx = eidx as usize;
                    let e = model.edges()[eidx];
                    let (other, i_is_a) = if e.a().0 == i {
                        (e.b().0, true)
                    } else {
                        (e.a().0, false)
                    };
                    // `decoded[other]` is set when `other` is labelled *or*
                    // queued; only trust the label once actually assigned —
                    // track via a separate labelled flag below.
                    if decoded[other] && labels[other] != usize::MAX {
                        let xo = labels[other];
                        for (x, c) in cost[..l].iter_mut().enumerate() {
                            *c += if i_is_a {
                                model.edge_cost(&e, x, xo)
                            } else {
                                model.edge_cost(&e, xo, x)
                            };
                        }
                    } else {
                        let m = if i_is_a {
                            &self.msg_to_a[self.off_a[eidx]..self.off_a[eidx + 1]]
                        } else {
                            &self.msg_to_b[self.off_b[eidx]..self.off_b[eidx + 1]]
                        };
                        for (c, mv) in cost[..l].iter_mut().zip(m) {
                            *c += mv;
                        }
                    }
                    if !decoded[other] {
                        decoded[other] = true;
                        labels[other] = usize::MAX;
                        queue.push_back(other);
                    }
                }
                labels[i] = cost[..l]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(x, _)| x)
                    .unwrap_or(0);
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn solve(model: &MrfModel) -> Solution {
        Trws::new(TrwsOptions::default()).solve(model, &SolveControl::new())
    }

    fn brute(model: &MrfModel) -> Solution {
        Exhaustive::new().solve(model, &SolveControl::new())
    }

    #[test]
    fn empty_model() {
        let s = solve(&MrfBuilder::new().build());
        assert!(s.labels().is_empty());
        assert_eq!(s.energy(), 0.0);
        assert!(s.converged());
    }

    #[test]
    fn single_variable_picks_unary_minimum() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(4);
        b.set_unary(x, vec![3.0, 0.5, 2.0, 1.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1]);
        assert_eq!(s.energy(), 0.5);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn antiferromagnetic_pair() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let s = solve(&b.build());
        assert_ne!(s.labels()[0], s.labels()[1]);
        assert_eq!(s.energy(), 0.0);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn chain_matches_exhaustive() {
        // TRW-S is exact on chains.
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..6).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..4.0)).collect())
                    .unwrap();
            }
            for w in vars.windows(2) {
                b.add_edge_dense(
                    w[0],
                    w[1],
                    (0..9).map(|_| rng.gen_range(0.0..4.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            assert!(
                (s.energy() - opt.energy()).abs() < 1e-7,
                "trial {trial}: trws {} vs exhaustive {}",
                s.energy(),
                opt.energy()
            );
            assert!(
                s.is_certified_optimal(1e-6),
                "trial {trial}: gap {:?}",
                s.gap()
            );
        }
    }

    #[test]
    fn tree_matches_exhaustive() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..9).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect())
                    .unwrap();
            }
            // Balanced binary tree edges.
            for i in 1..vars.len() {
                b.add_edge_dense(
                    vars[(i - 1) / 2],
                    vars[i],
                    (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            assert!(
                (s.energy() - opt.energy()).abs() < 1e-7,
                "trial {trial}: trws {} vs exhaustive {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_optimum_on_loopy_graphs() {
        let mut rng = StdRng::seed_from_u64(37);
        for trial in 0..10 {
            let mut b = MrfBuilder::new();
            let n = 6;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                    .unwrap();
            }
            // Ring plus a chord: loopy.
            for i in 0..n {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % n],
                    (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
                )
                .unwrap();
            }
            b.add_edge_dense(
                vars[0],
                vars[3],
                (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
            )
            .unwrap();
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            let lb = s.lower_bound().unwrap();
            assert!(
                lb <= opt.energy() + 1e-7,
                "trial {trial}: bound {lb} exceeds optimum {}",
                opt.energy()
            );
            assert!(s.energy() >= opt.energy() - 1e-9);
            // TRW-S should be near-optimal on these small instances.
            assert!(
                s.energy() - opt.energy() < 0.75,
                "trial {trial}: energy {} far from optimum {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn potts_grid_prefers_agreement_with_strong_coupling() {
        // 3x3 grid Potts model with strong attractive coupling and a single
        // biased corner: all variables should align with the bias.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..9).map(|_| b.add_variable(3)).collect();
        b.set_unary(vars[0], vec![0.0, 5.0, 5.0]).unwrap();
        // Potts: 0 if equal, 2 otherwise.
        let mut potts = vec![2.0; 9];
        for l in 0..3 {
            potts[l * 3 + l] = 0.0;
        }
        let pot = b.add_potential(3, 3, potts).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_edge(vars[r * 3 + c], vars[r * 3 + c + 1], pot)
                        .unwrap();
                }
                if r + 1 < 3 {
                    b.add_edge(vars[r * 3 + c], vars[(r + 1) * 3 + c], pot)
                        .unwrap();
                }
            }
        }
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[0; 9]);
        assert!(s.is_certified_optimal(1e-6));
    }

    #[test]
    fn hard_constraints_are_respected() {
        // Variable y is forbidden (BIG cost) from label 0 when x takes its
        // otherwise-optimal label 1.
        const BIG: f64 = 1e6;
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![1.0, 0.0]).unwrap();
        b.set_unary(y, vec![0.0, 0.3]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 0.0, BIG, 0.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1, 1]);
        assert!((s.energy() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn disconnected_components_solved_independently() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        let w = b.add_variable(2);
        b.set_unary(x, vec![0.0, 1.0]).unwrap();
        b.set_unary(w, vec![1.0, 0.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        b.add_edge_dense(z, w, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[0, 0, 1, 1]);
        assert!(s.is_certified_optimal(1e-9));
    }

    #[test]
    fn random_loopy_graphs_close_to_exhaustive() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..8 {
            let mut b = MrfBuilder::new();
            let n = 7;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, vec![rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                    .unwrap();
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.45) {
                        b.add_edge_dense(
                            vars[i],
                            vars[j],
                            (0..4).map(|_| rng.gen_range(0.0..1.5)).collect(),
                        )
                        .unwrap();
                    }
                }
            }
            let m = b.build();
            let s = solve(&m);
            let opt = brute(&m);
            let rel = (s.energy() - opt.energy()) / opt.energy().abs().max(1.0);
            assert!(
                rel < 0.15,
                "trial {trial}: energy {} too far above optimum {}",
                s.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..20).map(|_| b.add_variable(3)).collect();
        for i in 0..20 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 20], vec![0.5; 9])
                .unwrap();
        }
        let s = Trws::new(TrwsOptions {
            max_iterations: 2,
            ..TrwsOptions::default()
        })
        .solve(&b.build(), &SolveControl::new());
        assert!(s.iterations() <= 2);
    }
}
