//! Projecting stale labelings onto a rebuilt model.
//!
//! Incremental pipelines re-solve a model that was *rebuilt* after a small
//! change: variables may have appeared, disappeared, or changed label
//! counts. The previous MAP labeling is still an excellent starting point —
//! but feeding it to [`MapSolver::refine`] directly is a footgun, because
//! `refine` panics on arity mismatches and out-of-range labels.
//!
//! [`project_labels`] is the safe bridge: the caller supplies, per *new*
//! variable, an optional seed label (typically "the label encoding the
//! product this slot ran before the change"); every missing or out-of-range
//! seed falls back to that variable's unary argmin. The result is always a
//! complete, in-domain labeling, so the [`MapSolver::refine_projected`]
//! convenience can never panic on stale input.
//!
//! [`MapSolver::refine`]: crate::solver::MapSolver::refine
//! [`MapSolver::refine_projected`]: crate::solver::MapSolver::refine_projected

use crate::model::{MrfModel, VarId};

/// Builds a complete, in-domain labeling for `model` from per-variable seed
/// labels.
///
/// `seeds[i]`, when present and `< model.labels(VarId(i))`, becomes variable
/// `i`'s label; anything else (a `None`, an out-of-range label, or a seeds
/// slice shorter than the variable count) falls back to the variable's
/// unary argmin. Extra seed entries beyond the variable count are ignored.
pub fn project_labels(model: &MrfModel, seeds: &[Option<usize>]) -> Vec<usize> {
    (0..model.var_count())
        .map(|i| {
            let v = VarId(i);
            match seeds.get(i).copied().flatten() {
                Some(label) if label < model.labels(v) => label,
                _ => model
                    .unary(v)
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(label, _)| label)
                    .unwrap_or(0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icm::Icm;
    use crate::model::MrfBuilder;
    use crate::solver::{MapSolver, SolveControl};

    fn model() -> MrfModel {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(3);
        b.set_unary(x, vec![0.5, 0.0]).unwrap();
        b.set_unary(y, vec![1.0, 0.2, 3.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0; 6]).unwrap();
        b.build()
    }

    #[test]
    fn valid_seeds_pass_through() {
        let m = model();
        assert_eq!(project_labels(&m, &[Some(0), Some(2)]), vec![0, 2]);
    }

    #[test]
    fn missing_and_out_of_range_seeds_fall_back_to_argmin() {
        let m = model();
        // x has no seed, y's seed is out of range -> unary argmins (1, 1).
        assert_eq!(project_labels(&m, &[None, Some(9)]), vec![1, 1]);
        // Short and over-long seed slices are both fine.
        assert_eq!(project_labels(&m, &[]), vec![1, 1]);
        assert_eq!(project_labels(&m, &[Some(0), Some(0), Some(7)]), vec![0, 0]);
    }

    #[test]
    fn refine_projected_never_panics_on_stale_arity() {
        let m = model();
        // A labeling from a "previous model" with a different variable count
        // would panic in refine; refine_projected handles it.
        let stale = [Some(1), None, Some(4), Some(0)];
        let s = Icm::default().refine_projected(&m, &stale, &SolveControl::new());
        assert_eq!(s.labels().len(), m.var_count());
        assert!(s.labels()[1] < 3);
    }
}
