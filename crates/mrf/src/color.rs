//! Greedy graph coloring over live variables, for race-free parallel
//! sweeps.
//!
//! A color class is an independent set: no two variables in the same class
//! share an edge, so their ICM moves read disjoint neighbor labels and
//! their BP updates read and write disjoint messages. Sweeping class by
//! class (classes ascending, variables ascending within a class) therefore
//! yields a *fixed* schedule whose results do not depend on how many
//! threads execute each class — the property the colored-parallel solvers
//! rely on and the proptests pin.
//!
//! The coloring itself is the classic greedy first-fit in slot order:
//! linear in edges, and on the bounded-degree network MRFs this repo
//! builds it produces a handful of classes, each large enough to keep a
//! few worker threads busy.

use crate::model::MrfModel;

/// Flat-CSR partition of the live variables into independent sets.
///
/// Built (and rebuilt, reusing capacity) by [`ColorClasses::build`];
/// consumed by the colored sweeps in [`crate::icm`] and [`crate::bp`] via
/// [`ColorClasses::class`].
#[derive(Debug, Clone, Default)]
pub struct ColorClasses {
    /// Color per variable slot; `u32::MAX` for tombstoned slots.
    colors: Vec<u32>,
    /// CSR starts into `class_vars`, length `class_count() + 1`.
    class_start: Vec<u32>,
    /// Live variable slots, grouped by class, ascending within each class.
    class_vars: Vec<u32>,
    /// First-fit scratch: last stamp per color (see `build`).
    stamp: Vec<u32>,
    /// Counting-sort cursor scratch.
    cursor: Vec<u32>,
}

impl ColorClasses {
    /// An empty coloring; call [`ColorClasses::build`] before use.
    pub fn new() -> ColorClasses {
        ColorClasses::default()
    }

    /// Recomputes the coloring for `model`, reusing allocations.
    pub fn build(&mut self, model: &MrfModel) {
        let n = model.var_count();
        self.colors.clear();
        self.colors.resize(n, u32::MAX);
        self.stamp.clear();
        let mut classes = 0usize;
        let edges = model.edges();
        for i in 0..n {
            if !model.is_live(crate::model::VarId(i)) {
                continue;
            }
            // Stamp the colors already taken by neighbors; stamps are unique
            // per variable so the scratch never needs clearing.
            let stamp = i as u32 + 1;
            for &eidx in model.incident_edges(crate::model::VarId(i)) {
                let e = &edges[eidx as usize];
                let other = if e.a().0 == i { e.b().0 } else { e.a().0 };
                let c = self.colors[other];
                if c != u32::MAX {
                    self.stamp[c as usize] = stamp;
                }
            }
            let mut c = 0usize;
            while c < classes && self.stamp[c] == stamp {
                c += 1;
            }
            if c == classes {
                classes += 1;
                self.stamp.push(0);
            }
            self.colors[i] = c as u32;
        }
        // Counting sort into the CSR; slot-order fill keeps each class's
        // variables ascending.
        self.class_start.clear();
        self.class_start.resize(classes + 1, 0);
        for &c in &self.colors {
            if c != u32::MAX {
                self.class_start[c as usize + 1] += 1;
            }
        }
        for k in 1..=classes {
            self.class_start[k] += self.class_start[k - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.class_start[..classes]);
        self.class_vars.clear();
        self.class_vars
            .resize(self.class_start[classes] as usize, 0);
        for (i, &c) in self.colors.iter().enumerate() {
            if c != u32::MAX {
                let slot = &mut self.cursor[c as usize];
                self.class_vars[*slot as usize] = i as u32;
                *slot += 1;
            }
        }
    }

    /// Number of color classes.
    pub fn class_count(&self) -> usize {
        self.class_start.len().saturating_sub(1)
    }

    /// The variable slots of class `k`, ascending.
    pub fn class(&self, k: usize) -> &[u32] {
        &self.class_vars[self.class_start[k] as usize..self.class_start[k + 1] as usize]
    }

    /// The color assigned to variable slot `i` (`None` for tombstones).
    pub fn color(&self, i: usize) -> Option<u32> {
        self.colors.get(i).copied().filter(|&c| c != u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MrfBuilder;

    #[test]
    fn classes_are_independent_sets_and_cover_live_vars() {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..10).map(|_| b.add_variable(2)).collect();
        for i in 0..10 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 10], vec![0.0; 4])
                .unwrap();
        }
        let m = b.build();
        let mut cc = ColorClasses::new();
        cc.build(&m);
        let mut seen = [false; 10];
        for k in 0..cc.class_count() {
            let class = cc.class(k);
            for w in class.windows(2) {
                assert!(w[0] < w[1], "class vars must be ascending");
            }
            for &v in class {
                assert!(!seen[v as usize], "variable in two classes");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "coloring must cover live vars");
        // No edge inside a class.
        for (_, e) in m.live_edges() {
            assert_ne!(
                cc.color(e.a().0),
                cc.color(e.b().0),
                "adjacent vars share a color"
            );
        }
        // An even cycle is 2-colorable; greedy should find exactly 2.
        assert_eq!(cc.class_count(), 2);
    }

    #[test]
    fn tombstones_are_skipped_and_rebuild_reuses() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        b.add_edge_dense(x, y, vec![0.0; 4]).unwrap();
        b.add_edge_dense(y, z, vec![0.0; 4]).unwrap();
        let mut m = b.build();
        let mut cc = ColorClasses::new();
        cc.build(&m);
        assert_eq!(cc.class_count(), 2);
        m.remove_var(y).unwrap();
        cc.build(&m);
        assert_eq!(cc.color(y.0), None);
        // x and z are now independent: one class.
        assert_eq!(cc.class_count(), 1);
        assert_eq!(cc.class(0), &[x.0 as u32, z.0 as u32]);
    }
}
