//! Loopy min-sum belief propagation.
//!
//! The baseline the paper contrasts TRW-S against: synchronous min-sum
//! message passing with damping. Unlike TRW-S it provides no lower bound and
//! may oscillate on loopy graphs (hence the damping option), but it
//! parallelizes trivially — message updates within an iteration are
//! independent — which this implementation exploits with scoped threads.

use crate::model::{MrfModel, VarId};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Options controlling a BP run.
#[derive(Debug, Clone, PartialEq)]
pub struct BpOptions {
    /// Maximum number of synchronous iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the largest message change.
    pub tolerance: f64,
    /// Damping factor in `[0, 1)`: new = (1−d)·update + d·old. 0 disables.
    pub damping: f64,
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for BpOptions {
    fn default() -> BpOptions {
        BpOptions {
            max_iterations: 100,
            tolerance: 1e-9,
            damping: 0.3,
            threads: 1,
        }
    }
}

/// The loopy min-sum BP solver.
#[derive(Debug, Clone, Default)]
pub struct Bp {
    options: BpOptions,
}

impl Bp {
    /// Creates a solver with the given options.
    pub fn new(options: BpOptions) -> Bp {
        Bp { options }
    }
}

impl MapSolver for Bp {
    fn name(&self) -> String {
        "bp".to_string()
    }

    /// Runs BP on `model`, decoding by per-variable belief minimization.
    /// Honors the control's deadline/cancellation at iteration granularity;
    /// an early stop decodes the current messages (the unary argmin when
    /// stopped before the first update).
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        let n = model.var_count();
        if n == 0 {
            return Solution::new(Vec::new(), 0.0, None, 0, true);
        }
        let ecount = model.edge_slots();
        // Flat message storage, double-buffered; offsets are per edge
        // *slot*, tombstoned slots carrying zero-length messages.
        let mut off_a = Vec::with_capacity(ecount + 1);
        let mut off_b = Vec::with_capacity(ecount + 1);
        off_a.push(0usize);
        off_b.push(0usize);
        for e in model.edges() {
            let (la, lb) = if e.is_live() {
                (model.labels(e.a()), model.labels(e.b()))
            } else {
                (0, 0)
            };
            off_a.push(off_a.last().unwrap() + la);
            off_b.push(off_b.last().unwrap() + lb);
        }
        let mut to_a = vec![0.0f64; *off_a.last().unwrap()];
        let mut to_b = vec![0.0f64; *off_b.last().unwrap()];
        let mut new_to_a = to_a.clone();
        let mut new_to_b = to_b.clone();

        let mut iterations = 0usize;
        let mut converged = false;
        let damping = self.options.damping.clamp(0.0, 0.999);
        for iter in 0..self.options.max_iterations {
            if ctl.should_stop() {
                break;
            }
            iterations = iter + 1;
            // Per-variable total incoming message sums (beliefs minus unary).
            let totals = incoming_totals(model, &to_a, &to_b, &off_a, &off_b);
            let delta = update_messages(
                model,
                &to_a,
                &to_b,
                &mut new_to_a,
                &mut new_to_b,
                &off_a,
                &off_b,
                &totals,
                damping,
                self.options.threads,
            );
            std::mem::swap(&mut to_a, &mut new_to_a);
            std::mem::swap(&mut to_b, &mut new_to_b);
            if ctl.has_progress() {
                // Decoding is O(labels); only pay for it when someone is
                // watching.
                let labels = decode(model, &to_a, &to_b, &off_a, &off_b);
                ctl.report(iterations, model.energy(&labels), None);
            }
            if delta <= self.options.tolerance {
                converged = true;
                break;
            }
        }

        let labels = decode(model, &to_a, &to_b, &off_a, &off_b);
        let energy = model.energy(&labels);
        Solution::new(labels, energy, None, iterations, converged)
    }
}

/// Decode: `x_i = argmin (unary + Σ incoming)`.
fn decode(
    model: &MrfModel,
    to_a: &[f64],
    to_b: &[f64],
    off_a: &[usize],
    off_b: &[usize],
) -> Vec<usize> {
    let n = model.var_count();
    let totals = incoming_totals(model, to_a, to_b, off_a, off_b);
    let mut labels = vec![0usize; n];
    let mut offset = 0usize;
    for (i, label) in labels.iter_mut().enumerate() {
        let l = model.labels(VarId(i));
        let u = model.unary(VarId(i));
        let mut best = f64::INFINITY;
        for x in 0..l {
            let c = u[x] + totals[offset + x];
            if c < best {
                best = c;
                *label = x;
            }
        }
        offset += l;
    }
    labels
}

/// Per-variable sums of incoming messages, flattened by variable label
/// offsets (same layout as the model's unary storage).
fn incoming_totals(
    model: &MrfModel,
    to_a: &[f64],
    to_b: &[f64],
    off_a: &[usize],
    off_b: &[usize],
) -> Vec<f64> {
    let mut var_off = Vec::with_capacity(model.var_count() + 1);
    var_off.push(0usize);
    for i in 0..model.var_count() {
        var_off.push(var_off.last().unwrap() + model.labels(VarId(i)));
    }
    let mut totals = vec![0.0; *var_off.last().unwrap()];
    for (eidx, e) in model.live_edges() {
        let a = e.a().0;
        let b = e.b().0;
        for (x, m) in to_a[off_a[eidx]..off_a[eidx + 1]].iter().enumerate() {
            totals[var_off[a] + x] += m;
        }
        for (x, m) in to_b[off_b[eidx]..off_b[eidx + 1]].iter().enumerate() {
            totals[var_off[b] + x] += m;
        }
    }
    totals
}

/// One synchronous message update over all edges; returns the max change.
#[allow(clippy::too_many_arguments)]
fn update_messages(
    model: &MrfModel,
    to_a: &[f64],
    to_b: &[f64],
    new_to_a: &mut [f64],
    new_to_b: &mut [f64],
    off_a: &[usize],
    off_b: &[usize],
    totals: &[f64],
    damping: f64,
    threads: usize,
) -> f64 {
    let mut var_off = Vec::with_capacity(model.var_count() + 1);
    var_off.push(0usize);
    for i in 0..model.var_count() {
        var_off.push(var_off.last().unwrap() + model.labels(VarId(i)));
    }
    let ecount = model.edge_slots();
    let threads = threads.max(1).min(ecount.max(1));

    // The per-edge update: compute both direction messages for edge `eidx`,
    // writing into the (disjoint) slices of the new buffers. Tombstoned
    // slots own zero-length slices and are skipped.
    let update_edge = |eidx: usize, out_a: &mut [f64], out_b: &mut [f64]| -> f64 {
        let e = model.edges()[eidx];
        if !e.is_live() {
            return 0.0;
        }
        let (a, b) = (e.a(), e.b());
        let (la, lb) = (model.labels(a), model.labels(b));
        let ua = model.unary(a);
        let ub = model.unary(b);
        let mut delta = 0.0f64;
        // a -> b: exclude the message b sent to a.
        for (xb, out) in out_b.iter_mut().enumerate().take(lb) {
            let mut best = f64::INFINITY;
            for xa in 0..la {
                let base = ua[xa] + totals[var_off[a.0] + xa] - to_a[off_a[eidx] + xa];
                let c = base + model.edge_cost(&e, xa, xb);
                if c < best {
                    best = c;
                }
            }
            *out = best;
        }
        normalize(out_b);
        for (xb, nb) in out_b.iter_mut().enumerate() {
            let old = to_b[off_b[eidx] + xb];
            *nb = (1.0 - damping) * *nb + damping * old;
            delta = delta.max((*nb - old).abs());
        }
        // b -> a.
        for (xa, out) in out_a.iter_mut().enumerate().take(la) {
            let mut best = f64::INFINITY;
            for xb in 0..lb {
                let base = ub[xb] + totals[var_off[b.0] + xb] - to_b[off_b[eidx] + xb];
                let c = base + model.edge_cost(&e, xa, xb);
                if c < best {
                    best = c;
                }
            }
            *out = best;
        }
        normalize(out_a);
        for (xa, na) in out_a.iter_mut().enumerate() {
            let old = to_a[off_a[eidx] + xa];
            *na = (1.0 - damping) * *na + damping * old;
            delta = delta.max((*na - old).abs());
        }
        delta
    };

    if threads == 1 || ecount < 256 {
        let mut delta = 0.0f64;
        for eidx in 0..ecount {
            // Split disjoint output slices.
            let (oa, ob) = unsafe {
                // SAFETY: edges own disjoint [off..off+1) ranges by construction.
                (
                    std::slice::from_raw_parts_mut(
                        new_to_a.as_mut_ptr().add(off_a[eidx]),
                        off_a[eidx + 1] - off_a[eidx],
                    ),
                    std::slice::from_raw_parts_mut(
                        new_to_b.as_mut_ptr().add(off_b[eidx]),
                        off_b[eidx + 1] - off_b[eidx],
                    ),
                )
            };
            delta = delta.max(update_edge(eidx, oa, ob));
        }
        return delta;
    }

    // Parallel: partition the edge range into contiguous chunks; each chunk
    // owns contiguous disjoint slices of the new buffers.
    let chunk = ecount.div_ceil(threads);
    let mut deltas = vec![0.0f64; threads];
    let update_edge = &update_edge;
    std::thread::scope(|scope| {
        let mut rest_a: &mut [f64] = new_to_a;
        let mut rest_b: &mut [f64] = new_to_b;
        let mut consumed_a = 0usize;
        let mut consumed_b = 0usize;
        for (t, delta_slot) in deltas.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(ecount);
            if lo >= hi {
                break;
            }
            let take_a = off_a[hi] - consumed_a;
            let take_b = off_b[hi] - consumed_b;
            let (mine_a, ra) = rest_a.split_at_mut(take_a);
            let (mine_b, rb) = rest_b.split_at_mut(take_b);
            rest_a = ra;
            rest_b = rb;
            let base_a = consumed_a;
            let base_b = consumed_b;
            consumed_a += take_a;
            consumed_b += take_b;
            scope.spawn(move || {
                let mut local = 0.0f64;
                for eidx in lo..hi {
                    let oa = &mut mine_a[off_a[eidx] - base_a..off_a[eidx + 1] - base_a];
                    // Work around simultaneous borrows by indexing twice.
                    let oa_ptr = oa.as_mut_ptr();
                    let oa_len = oa.len();
                    let ob = &mut mine_b[off_b[eidx] - base_b..off_b[eidx + 1] - base_b];
                    let oa = unsafe { std::slice::from_raw_parts_mut(oa_ptr, oa_len) };
                    local = local.max(update_edge(eidx, oa, ob));
                }
                *delta_slot = local;
            });
        }
    });
    deltas.into_iter().fold(0.0, f64::max)
}

fn normalize(m: &mut [f64]) {
    let low = m.iter().copied().fold(f64::INFINITY, f64::min);
    if low.is_finite() {
        for v in m {
            *v -= low;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    fn solve(model: &MrfModel) -> Solution {
        Bp::new(BpOptions::default()).solve(model, &ctl())
    }

    #[test]
    fn empty_and_single() {
        let s = solve(&MrfBuilder::new().build());
        assert!(s.labels().is_empty());
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![1.0, 0.0, 2.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1]);
    }

    #[test]
    fn exact_on_chains() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..5).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                    .unwrap();
            }
            for w in vars.windows(2) {
                b.add_edge_dense(
                    w[0],
                    w[1],
                    (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = Exhaustive::new().solve(&m, &ctl());
            assert!((s.energy() - opt.energy()).abs() < 1e-6);
            assert!(s.converged());
        }
    }

    #[test]
    fn near_optimal_on_small_loopy_graphs() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut total_gap = 0.0;
        for _ in 0..8 {
            let mut b = MrfBuilder::new();
            let n = 6;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, vec![rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                    .unwrap();
            }
            for i in 0..n {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % n],
                    (0..4).map(|_| rng.gen_range(0.0..1.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = Exhaustive::new().solve(&m, &ctl());
            total_gap += s.energy() - opt.energy();
        }
        assert!(
            total_gap < 1.0,
            "BP total excess energy {total_gap} too large"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = MrfBuilder::new();
        let n = 40;
        let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
        for &v in &vars {
            b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                .unwrap();
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.2) {
                    b.add_edge_dense(
                        vars[i],
                        vars[j],
                        (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
                    )
                    .unwrap();
                }
            }
        }
        let m = b.build();
        let seq = Bp::new(BpOptions {
            threads: 1,
            max_iterations: 30,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        let par = Bp::new(BpOptions {
            threads: 4,
            max_iterations: 30,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        // Same deterministic updates regardless of thread count.
        assert_eq!(seq.labels(), par.labels());
        assert_eq!(seq.energy(), par.energy());
    }

    #[test]
    fn damping_tames_oscillation() {
        // A frustrated triangle (all edges prefer disagreement) makes
        // undamped synchronous BP oscillate; damping plus a small
        // symmetry-breaking unary lets it settle on an optimum.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..3).map(|_| b.add_variable(2)).collect();
        b.set_unary(vars[0], vec![0.0, 0.01]).unwrap();
        b.set_unary(vars[1], vec![0.01, 0.0]).unwrap();
        for i in 0..3 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 3], vec![1.0, 0.0, 0.0, 1.0])
                .unwrap();
        }
        let m = b.build();
        let damped = Bp::new(BpOptions {
            damping: 0.5,
            max_iterations: 500,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        // One edge must agree in any labeling: optimum is 1.0 (+0.0 unary).
        let opt = Exhaustive::new().solve(&m, &ctl());
        assert!(
            damped.energy() <= opt.energy() + 0.02,
            "damped BP energy {} vs optimum {}",
            damped.energy(),
            opt.energy()
        );
    }
}
