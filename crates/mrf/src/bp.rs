//! Loopy min-sum belief propagation, chromatic Gauss-Seidel schedule.
//!
//! The baseline the paper contrasts TRW-S against. Messages live in the
//! [`crate::order::SolveScratch`] arena and are updated **in place**,
//! variable by variable: each visit recomputes the variable's belief from
//! the freshest incoming messages and rewrites all of its outgoing
//! messages. Visits run color class by color class (greedy coloring,
//! [`crate::color::ColorClasses`]); variables inside one class are
//! pairwise non-adjacent, so the class can be swept by several threads
//! with no synchronization — a thread only writes messages *from* its own
//! variables and reads messages on its own variables' edges, and
//! non-adjacent variables share no edge. The schedule (class-major,
//! ascending slot inside each class) is fixed, so results are identical
//! for every thread count.
//!
//! Gauss-Seidel propagation is strictly fresher than the synchronous
//! schedule this module used to implement — information crosses several
//! hops per sweep instead of one — and damping engages adaptively on the
//! loopy energies where min-sum oscillates (see [`BpOptions::damping`]).
//! Unlike TRW-S it provides no lower bound.

use crate::model::{MrfModel, VarId};
use crate::order::{ensure_thread_bufs, MsgCell, SendPtr, SolveScratch, Tables};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Options controlling a BP run.
#[derive(Debug, Clone, PartialEq)]
pub struct BpOptions {
    /// Maximum number of full sweeps.
    pub max_iterations: usize,
    /// Convergence tolerance on the largest message change per sweep.
    pub tolerance: f64,
    /// Damping factor in `[0, 1)`: new = (1−d)·update + d·old. Engaged
    /// *adaptively*: sweeps run undamped until the per-sweep residual
    /// stops decreasing (the oscillation signature), then `damping`
    /// applies for the rest of the run. The Gauss-Seidel schedule rarely
    /// oscillates, so most runs never pay for damping. 0 disables.
    pub damping: f64,
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Minimum live-variable count before `threads >= 2` actually spawns;
    /// below it the same schedule runs sequentially (identical results).
    pub parallel_threshold: usize,
    /// Store messages (and the message kernels' potential tables) as
    /// `f32`, halving memory traffic; beliefs, the decode, and the energy
    /// stay `f64`.
    pub f32_messages: bool,
}

impl Default for BpOptions {
    fn default() -> BpOptions {
        BpOptions {
            max_iterations: 100,
            tolerance: 1e-9,
            damping: 0.3,
            threads: 1,
            parallel_threshold: 512,
            f32_messages: false,
        }
    }
}

/// The loopy min-sum BP solver.
#[derive(Debug, Clone, Default)]
pub struct Bp {
    options: BpOptions,
}

impl Bp {
    /// Creates a solver with the given options.
    pub fn new(options: BpOptions) -> Bp {
        Bp { options }
    }
}

impl MapSolver for Bp {
    fn name(&self) -> String {
        "bp".to_string()
    }

    /// Runs BP on `model`, decoding by per-variable belief minimization.
    /// Honors the control's deadline/cancellation at sweep granularity; an
    /// early stop decodes the current messages (the unary argmin when
    /// stopped before the first sweep).
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        let mut scratch = SolveScratch::new();
        self.solve_with(model, ctl, &mut scratch)
    }

    /// [`MapSolver::solve`] over a caller-owned scratch: a warm re-solve
    /// with a previously-used scratch performs no allocation.
    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        if model.var_count() == 0 {
            return Solution::new(Vec::new(), 0.0, None, 0, true);
        }
        scratch.prepare(model);
        if self.options.f32_messages {
            scratch.ensure_f32();
            let p = scratch.parts();
            run(
                &self.options,
                model,
                &p.t,
                p.arena32,
                p.pot32,
                p.theta,
                p.mins,
                p.labels_buf,
                p.thread_bufs,
                ctl,
            )
        } else {
            let p = scratch.parts();
            run(
                &self.options,
                model,
                &p.t,
                p.arena,
                p.pot,
                p.theta,
                p.mins,
                p.labels_buf,
                p.thread_bufs,
                ctl,
            )
        }
    }
}

/// The sweep loop, generic in the message storage type.
#[allow(clippy::too_many_arguments)]
fn run<T: MsgCell>(
    options: &BpOptions,
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &mut [T],
    pot: &[T],
    theta: &mut [f64],
    mins: &mut [f64],
    labels_buf: &mut Vec<usize>,
    thread_bufs: &mut Vec<Vec<f64>>,
    ctl: &SolveControl,
) -> Solution {
    let threads = options.threads.max(1);
    let par = threads >= 2 && model.live_var_count() >= options.parallel_threshold;
    if par {
        ensure_thread_bufs(thread_bufs, threads, 2 * t.max_labels);
    }
    let damping_ceiling = options.damping.clamp(0.0, 0.999);
    let ptr = SendPtr(arena.as_mut_ptr());
    let barrier = std::sync::Barrier::new(threads);
    let mut iterations = 0usize;
    let mut converged = false;
    // Adaptive damping: undamped sweeps converge fastest when the
    // Gauss-Seidel residual contracts, which is the common case; a
    // non-decreasing residual is the oscillation signature, and from
    // that point on the configured damping applies.
    let mut damping = 0.0f64;
    let mut prev_delta = f64::INFINITY;
    for iter in 0..options.max_iterations {
        if ctl.should_stop() {
            break;
        }
        iterations = iter + 1;
        let mut delta = 0.0f64;
        if par {
            // One sweep = one spawn of `threads` workers; a barrier
            // separates the color classes so the class-major order is
            // preserved across threads.
            let barrier = &barrier;
            std::thread::scope(|scope| {
                let handles: Vec<_> = thread_bufs
                    .iter_mut()
                    .enumerate()
                    .map(|(tid, buf)| {
                        scope.spawn(move || {
                            let (theta, mins) = buf.split_at_mut(t.max_labels);
                            let mut local = 0.0f64;
                            for k in 0..t.colors.class_count() {
                                let class = t.colors.class(k);
                                let chunk = class.len().div_ceil(threads);
                                let lo = (tid * chunk).min(class.len());
                                let hi = ((tid + 1) * chunk).min(class.len());
                                for &iu in &class[lo..hi] {
                                    // SAFETY: each thread takes a disjoint
                                    // chunk of one color class (an
                                    // independent set) — no two threads
                                    // touch messages on a shared edge.
                                    local = local.max(unsafe {
                                        update_var(
                                            model,
                                            t,
                                            pot,
                                            ptr,
                                            iu as usize,
                                            theta,
                                            mins,
                                            damping,
                                        )
                                    });
                                }
                                barrier.wait();
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    delta = delta.max(h.join().expect("bp sweep worker panicked"));
                }
            });
        } else {
            for k in 0..t.colors.class_count() {
                for &iu in t.colors.class(k) {
                    // SAFETY: sequential use — no concurrent writers at all.
                    delta = delta.max(unsafe {
                        update_var(model, t, pot, ptr, iu as usize, theta, mins, damping)
                    });
                }
            }
        }
        if ctl.has_progress() {
            // Decoding is O(labels); only pay for it when someone watches.
            decode(model, t, arena, labels_buf, theta);
            ctl.report(iterations, model.energy(labels_buf), None);
        }
        if delta <= options.tolerance {
            converged = true;
            break;
        }
        if delta >= prev_delta {
            damping = damping_ceiling;
        }
        prev_delta = delta;
    }
    decode(model, t, arena, labels_buf, theta);
    let energy = model.energy(labels_buf);
    Solution::new(labels_buf.clone(), energy, None, iterations, converged)
}

/// One Gauss-Seidel visit: recompute variable `i`'s belief and rewrite all
/// of its outgoing messages in place; returns the largest message change.
///
/// # Safety
///
/// The caller must guarantee no concurrent visit touches a variable
/// adjacent to `i` — the colored schedule's structural invariant.
#[allow(clippy::too_many_arguments)]
unsafe fn update_var<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    pot: &[T],
    arena: SendPtr<T>,
    i: usize,
    theta: &mut [f64],
    mins: &mut [f64],
    damping: f64,
) -> f64 {
    let l = t.labels(i);
    // Belief numerator: unary + every incoming message, freshest values.
    theta[..l].copy_from_slice(model.unary(VarId(i)));
    for &e in t.fwd(i) {
        let inc = t.split + t.off_to_a[e as usize] as usize;
        for (x, s) in theta[..l].iter_mut().enumerate() {
            *s += (*arena.0.add(inc + x)).to_f64();
        }
    }
    for &e in t.bwd(i) {
        let inc = t.off_to_b[e as usize] as usize;
        for (x, s) in theta[..l].iter_mut().enumerate() {
            *s += (*arena.0.add(inc + x)).to_f64();
        }
    }
    let mut delta = 0.0f64;
    // Outgoing message per edge: exclude that neighbor's own message.
    for &e in t.fwd(i) {
        let e = e as usize;
        let lb = t.edge_lb[e] as usize;
        let inc = t.split + t.off_to_a[e] as usize;
        let row0 = t.pot_ab[e] as usize;
        mins[..lb].fill(f64::INFINITY);
        for xa in 0..l {
            let base = theta[xa] - (*arena.0.add(inc + xa)).to_f64();
            let row = &pot[row0 + xa * lb..row0 + (xa + 1) * lb];
            for (m, &c) in mins[..lb].iter_mut().zip(row) {
                let v = base + c.to_f64();
                if v < *m {
                    *m = v;
                }
            }
        }
        delta = delta.max(write_damped(
            arena,
            t.off_to_b[e] as usize,
            &mins[..lb],
            damping,
        ));
    }
    for &e in t.bwd(i) {
        let e = e as usize;
        let la = t.edge_la[e] as usize;
        let inc = t.off_to_b[e] as usize;
        let row0 = t.pot_ba[e] as usize;
        mins[..la].fill(f64::INFINITY);
        for xb in 0..l {
            let base = theta[xb] - (*arena.0.add(inc + xb)).to_f64();
            let row = &pot[row0 + xb * la..row0 + (xb + 1) * la];
            for (m, &c) in mins[..la].iter_mut().zip(row) {
                let v = base + c.to_f64();
                if v < *m {
                    *m = v;
                }
            }
        }
        delta = delta.max(write_damped(
            arena,
            t.split + t.off_to_a[e] as usize,
            &mins[..la],
            damping,
        ));
    }
    delta
}

/// Normalizes `mins` (subtract its minimum), damps against the old
/// message at `arena[off..]`, writes the result back, and returns the
/// largest per-label change.
///
/// # Safety
///
/// As [`update_var`]: `arena[off..off + mins.len()]` must not be touched
/// concurrently.
unsafe fn write_damped<T: MsgCell>(
    arena: SendPtr<T>,
    off: usize,
    mins: &[f64],
    damping: f64,
) -> f64 {
    let mut low = f64::INFINITY;
    for &m in mins {
        if m < low {
            low = m;
        }
    }
    if !low.is_finite() {
        low = 0.0;
    }
    let mut delta = 0.0f64;
    for (x, &m) in mins.iter().enumerate() {
        let cell = arena.0.add(off + x);
        let old = (*cell).to_f64();
        let new = (1.0 - damping) * (m - low) + damping * old;
        delta = delta.max((new - old).abs());
        *cell = T::from_f64(new);
    }
    delta
}

/// Decode: `x_i = argmin (unary + Σ incoming)`, first minimum on ties.
fn decode<T: MsgCell>(
    model: &MrfModel,
    t: &Tables<'_>,
    arena: &[T],
    labels: &mut Vec<usize>,
    theta: &mut [f64],
) {
    let (to_b, to_a) = arena.split_at(t.split);
    labels.clear();
    labels.resize(t.n, 0);
    for &iu in t.order {
        let i = iu as usize;
        let l = t.labels(i);
        theta[..l].copy_from_slice(model.unary(VarId(i)));
        for &e in t.fwd(i) {
            let inc = t.off_to_a[e as usize] as usize;
            for (s, m) in theta[..l].iter_mut().zip(&to_a[inc..inc + l]) {
                *s += m.to_f64();
            }
        }
        for &e in t.bwd(i) {
            let inc = t.off_to_b[e as usize] as usize;
            for (s, m) in theta[..l].iter_mut().zip(&to_b[inc..inc + l]) {
                *s += m.to_f64();
            }
        }
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (x, &c) in theta[..l].iter().enumerate() {
            if c < best_cost {
                best_cost = c;
                best = x;
            }
        }
        labels[i] = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    fn solve(model: &MrfModel) -> Solution {
        Bp::new(BpOptions::default()).solve(model, &ctl())
    }

    #[test]
    fn empty_and_single() {
        let s = solve(&MrfBuilder::new().build());
        assert!(s.labels().is_empty());
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![1.0, 0.0, 2.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1]);
    }

    #[test]
    fn exact_on_chains() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..5).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                    .unwrap();
            }
            for w in vars.windows(2) {
                b.add_edge_dense(
                    w[0],
                    w[1],
                    (0..9).map(|_| rng.gen_range(0.0..3.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = Exhaustive::new().solve(&m, &ctl());
            assert!((s.energy() - opt.energy()).abs() < 1e-6);
            assert!(s.converged());
        }
    }

    #[test]
    fn near_optimal_on_small_loopy_graphs() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut total_gap = 0.0;
        for _ in 0..8 {
            let mut b = MrfBuilder::new();
            let n = 6;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(2)).collect();
            for &v in &vars {
                b.set_unary(v, vec![rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)])
                    .unwrap();
            }
            for i in 0..n {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % n],
                    (0..4).map(|_| rng.gen_range(0.0..1.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let s = solve(&m);
            let opt = Exhaustive::new().solve(&m, &ctl());
            total_gap += s.energy() - opt.energy();
        }
        assert!(
            total_gap < 1.0,
            "BP total excess energy {total_gap} too large"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = MrfBuilder::new();
        let n = 40;
        let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
        for &v in &vars {
            b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                .unwrap();
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.2) {
                    b.add_edge_dense(
                        vars[i],
                        vars[j],
                        (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
                    )
                    .unwrap();
                }
            }
        }
        let m = b.build();
        let seq = Bp::new(BpOptions {
            threads: 1,
            max_iterations: 30,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        // Threshold 0 forces the scoped-thread path even on this small
        // model; the schedule is identical, so the results must be too.
        let par = Bp::new(BpOptions {
            threads: 4,
            max_iterations: 30,
            parallel_threshold: 0,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        assert_eq!(seq.labels(), par.labels());
        assert_eq!(seq.energy(), par.energy());
    }

    #[test]
    fn f32_messages_decode_close_to_f64() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut b = MrfBuilder::new();
        let n = 30;
        let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
        for &v in &vars {
            b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..3.0)).collect())
                .unwrap();
        }
        for i in 0..n {
            b.add_edge_dense(
                vars[i],
                vars[(i + 1) % n],
                (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
            )
            .unwrap();
        }
        let m = b.build();
        let full = solve(&m);
        let narrow = Bp::new(BpOptions {
            f32_messages: true,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        // The energies are both computed in f64 from the decoded labels;
        // f32 message rounding may steer the decode slightly.
        assert!(
            (full.energy() - narrow.energy()).abs() <= 1e-3 * full.energy().abs().max(1.0),
            "f64 {} vs f32 {}",
            full.energy(),
            narrow.energy()
        );
    }

    #[test]
    fn damping_tames_oscillation() {
        // A frustrated triangle (all edges prefer disagreement) makes
        // undamped synchronous BP oscillate; the Gauss-Seidel schedule
        // already breaks the lock-step, and damping plus a small
        // symmetry-breaking unary keeps it settled on an optimum.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..3).map(|_| b.add_variable(2)).collect();
        b.set_unary(vars[0], vec![0.0, 0.01]).unwrap();
        b.set_unary(vars[1], vec![0.01, 0.0]).unwrap();
        for i in 0..3 {
            b.add_edge_dense(vars[i], vars[(i + 1) % 3], vec![1.0, 0.0, 0.0, 1.0])
                .unwrap();
        }
        let m = b.build();
        let damped = Bp::new(BpOptions {
            damping: 0.5,
            max_iterations: 500,
            ..BpOptions::default()
        })
        .solve(&m, &ctl());
        // One edge must agree in any labeling: optimum is 1.0 (+0.0 unary).
        let opt = Exhaustive::new().solve(&m, &ctl());
        assert!(
            damped.energy() <= opt.energy() + 0.02,
            "damped BP energy {} vs optimum {}",
            damped.energy(),
            opt.energy()
        );
    }
}
