//! A parallel portfolio of MAP solvers.
//!
//! Different solvers win on different instances: TRW-S dominates on sparse
//! loopy graphs, exact elimination on low-treewidth ones, ILS on small
//! frustrated cliques, ICM when the budget is tiny. [`SolverPortfolio`]
//! runs several [`MapSolver`]s concurrently on scoped threads, returns the
//! lowest-energy solution, and reports per-member telemetry
//! ([`MemberReport`]). Members share the caller's deadline and observe the
//! caller's cancellation; as soon as one member *certifies* optimality
//! (gap ≤ tolerance) the remaining members are cancelled, so easy
//! instances cost one solver, not N.
//!
//! The portfolio itself implements [`MapSolver`], so portfolios nest and
//! drop into any API accepting the trait.

use std::fmt;
use std::time::{Duration, Instant};

use crate::bp::Bp;
use crate::icm::Icm;
use crate::ils::Ils;
use crate::model::MrfModel;
use crate::solution::Solution;
use crate::solver::{ExactFallback, MapSolver, SolveControl};
use crate::trws::Trws;

/// Telemetry for one portfolio member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// The member's [`MapSolver::name`].
    pub name: String,
    /// Final energy the member reached (`f64::INFINITY` if it panicked).
    pub energy: f64,
    /// The member's certified lower bound, if any.
    pub lower_bound: Option<f64>,
    /// Iterations the member ran.
    pub iterations: usize,
    /// Whether the member converged (vs. being stopped early).
    pub converged: bool,
    /// The member's wall-clock time.
    pub wall: Duration,
    /// Whether this member produced the returned solution.
    pub winner: bool,
}

/// The full result of a portfolio solve.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The lowest-energy solution across members, with the tightest lower
    /// bound any member certified.
    pub solution: Solution,
    /// Name of the winning member.
    pub winner: String,
    /// Per-member telemetry, in member order.
    pub reports: Vec<MemberReport>,
}

/// Runs N [`MapSolver`]s concurrently and keeps the best answer.
#[derive(Default)]
pub struct SolverPortfolio {
    members: Vec<Box<dyn MapSolver>>,
    certify_tolerance: f64,
}

impl fmt::Debug for SolverPortfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverPortfolio")
            .field("members", &self.member_names())
            .field("certify_tolerance", &self.certify_tolerance)
            .finish()
    }
}

impl SolverPortfolio {
    /// An empty portfolio; add members with [`SolverPortfolio::with_member`].
    pub fn new() -> SolverPortfolio {
        SolverPortfolio {
            members: Vec::new(),
            certify_tolerance: 1e-9,
        }
    }

    /// The standard mix: certified message passing (TRW-S), damped loopy BP,
    /// exact-with-fallback, and ILS local search. A good default for
    /// instances of unknown structure.
    pub fn standard() -> SolverPortfolio {
        SolverPortfolio::new()
            .with_member(Box::new(Trws::default()))
            .with_member(Box::new(Bp::default()))
            .with_member(Box::new(ExactFallback::default()))
            .with_member(Box::new(Ils::default()))
    }

    /// A budget-friendly mix for tiny time budgets: greedy ICM plus TRW-S.
    pub fn quick() -> SolverPortfolio {
        SolverPortfolio::new()
            .with_member(Box::new(Icm::default()))
            .with_member(Box::new(Trws::default()))
    }

    /// Adds a member.
    pub fn with_member(mut self, member: Box<dyn MapSolver>) -> SolverPortfolio {
        self.members.push(member);
        self
    }

    /// Adds a member in place.
    pub fn push(&mut self, member: Box<dyn MapSolver>) {
        self.members.push(member);
    }

    /// Sets the gap tolerance below which a member's solution counts as
    /// certified optimal and cancels the remaining members.
    pub fn with_certify_tolerance(mut self, tolerance: f64) -> SolverPortfolio {
        self.certify_tolerance = tolerance;
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the portfolio has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members' names, in order.
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Runs every member concurrently and returns the best solution plus
    /// per-member telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the portfolio is empty, or if *every* member panicked.
    pub fn solve_detailed(&self, model: &MrfModel, ctl: &SolveControl) -> PortfolioOutcome {
        assert!(!self.is_empty(), "cannot solve with an empty portfolio");
        // One shared child control: members observe the caller's deadline
        // and cancellation; the first certified member cancels the rest
        // without touching the caller's flag.
        let child = ctl.child();
        let tolerance = self.certify_tolerance;
        let results: Vec<Option<(Solution, Duration)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .map(|member| {
                    let child = &child;
                    scope.spawn(move || {
                        let start = Instant::now();
                        let solution = member.solve(model, child);
                        let wall = start.elapsed();
                        if solution.is_certified_optimal(tolerance) {
                            child.cancel();
                        }
                        (solution, wall)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().ok()).collect()
        });

        let mut reports: Vec<MemberReport> = Vec::with_capacity(self.members.len());
        let mut best: Option<(usize, Solution)> = None;
        let mut best_bound: Option<f64> = None;
        for (idx, (member, result)) in self.members.iter().zip(&results).enumerate() {
            match result {
                Some((solution, wall)) => {
                    reports.push(MemberReport {
                        name: member.name(),
                        energy: solution.energy(),
                        lower_bound: solution.lower_bound(),
                        iterations: solution.iterations(),
                        converged: solution.converged(),
                        wall: *wall,
                        winner: false,
                    });
                    if let Some(lb) = solution.lower_bound() {
                        // Any member's certified bound is a valid global
                        // bound; keep the tightest.
                        best_bound = Some(best_bound.map_or(lb, |b: f64| b.max(lb)));
                    }
                    if best
                        .as_ref()
                        .is_none_or(|(_, incumbent)| solution.energy() < incumbent.energy())
                    {
                        best = Some((idx, solution.clone()));
                    }
                }
                None => reports.push(MemberReport {
                    name: member.name(),
                    energy: f64::INFINITY,
                    lower_bound: None,
                    iterations: 0,
                    converged: false,
                    wall: Duration::ZERO,
                    winner: false,
                }),
            }
        }
        let (winner_idx, winner_solution) =
            best.expect("every portfolio member panicked; nothing to return");
        reports[winner_idx].winner = true;
        let winner = reports[winner_idx].name.clone();
        let solution = Solution::new(
            winner_solution.labels().to_vec(),
            winner_solution.energy(),
            best_bound,
            winner_solution.iterations(),
            winner_solution.converged(),
        );
        PortfolioOutcome {
            solution,
            winner,
            reports,
        }
    }
}

impl MapSolver for SolverPortfolio {
    fn name(&self) -> String {
        format!("portfolio[{}]", self.member_names().join("+"))
    }

    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        self.solve_detailed(model, ctl).solution
    }

    /// Aggregates member fallback causes (e.g. an [`ExactFallback`] member
    /// that degraded to its approximate stage), prefixed by member name.
    fn fallback_cause(&self) -> Option<String> {
        let causes: Vec<String> = self
            .members
            .iter()
            .filter_map(|m| m.fallback_cause().map(|c| format!("{}: {c}", m.name())))
            .collect();
        if causes.is_empty() {
            None
        } else {
            Some(causes.join("; "))
        }
    }

    /// Refines by running every member's `refine` concurrently from the
    /// same start and keeping the best result.
    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        assert!(!self.is_empty(), "cannot refine with an empty portfolio");
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let child = ctl.child();
        let start_energy = model.energy(&start);
        let results: Vec<Option<Solution>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .map(|member| {
                    let child = &child;
                    let start = start.clone();
                    scope.spawn(move || member.refine(model, start, child))
                })
                .collect();
            handles.into_iter().map(|h| h.join().ok()).collect()
        });
        results
            .into_iter()
            .flatten()
            .min_by(|a, b| a.energy().total_cmp(&b.energy()))
            .filter(|s| s.energy() <= start_energy)
            .unwrap_or_else(|| Solution::new(start, start_energy, None, 0, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_model(rng: &mut StdRng, n: usize, labels: usize) -> MrfModel {
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..n).map(|_| b.add_variable(labels)).collect();
        for &v in &vars {
            b.set_unary(v, (0..labels).map(|_| rng.gen_range(0.0..2.0)).collect())
                .unwrap();
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.4) {
                    b.add_edge_dense(
                        vars[i],
                        vars[j],
                        (0..labels * labels)
                            .map(|_| rng.gen_range(0.0..1.5))
                            .collect(),
                    )
                    .unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn portfolio_beats_or_matches_every_member() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..6 {
            let model = random_model(&mut rng, 7, 3);
            let portfolio = SolverPortfolio::standard();
            let outcome = portfolio.solve_detailed(&model, &SolveControl::new());
            for report in &outcome.reports {
                assert!(
                    outcome.solution.energy() <= report.energy + 1e-9,
                    "portfolio energy {} worse than member {} at {}",
                    outcome.solution.energy(),
                    report.name,
                    report.energy
                );
            }
            assert_eq!(outcome.reports.iter().filter(|r| r.winner).count(), 1);
            let winner = outcome.reports.iter().find(|r| r.winner).unwrap();
            assert_eq!(winner.name, outcome.winner);
            assert!((winner.energy - outcome.solution.energy()).abs() < 1e-12);
        }
    }

    #[test]
    fn portfolio_matches_exhaustive_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..4 {
            let model = random_model(&mut rng, 6, 2);
            let outcome = SolverPortfolio::standard().solve_detailed(&model, &SolveControl::new());
            let opt = Exhaustive::new().solve(&model, &SolveControl::new());
            // The standard mix contains the exact eliminator, which always
            // succeeds at this size.
            assert!(
                (outcome.solution.energy() - opt.energy()).abs() < 1e-9,
                "portfolio {} vs optimum {}",
                outcome.solution.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn expired_deadline_still_returns_complete_labeling() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = random_model(&mut rng, 30, 3);
        let ctl = SolveControl::new().with_budget(Duration::ZERO);
        let outcome = SolverPortfolio::standard().solve_detailed(&model, &ctl);
        assert_eq!(outcome.solution.labels().len(), model.var_count());
        for (i, &l) in outcome.solution.labels().iter().enumerate() {
            assert!(l < model.labels(crate::VarId(i)));
        }
        let recomputed = model.energy(outcome.solution.labels());
        assert!((recomputed - outcome.solution.energy()).abs() < 1e-9);
    }

    #[test]
    fn nested_portfolios_work() {
        let inner = SolverPortfolio::quick();
        let outer = SolverPortfolio::new()
            .with_member(Box::new(inner))
            .with_member(Box::new(Trws::default()));
        let mut rng = StdRng::seed_from_u64(3);
        let model = random_model(&mut rng, 5, 2);
        let solution = outer.solve(&model, &SolveControl::new());
        assert_eq!(solution.labels().len(), 5);
        assert!(outer.name().starts_with("portfolio["));
    }

    #[test]
    fn refine_never_worsens_the_start() {
        let mut rng = StdRng::seed_from_u64(13);
        let model = random_model(&mut rng, 8, 3);
        let start: Vec<usize> = (0..8).map(|_| rng.gen_range(0..3)).collect();
        let start_energy = model.energy(&start);
        let refined = SolverPortfolio::standard().refine(&model, start, &SolveControl::new());
        assert!(refined.energy() <= start_energy + 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty portfolio")]
    fn empty_portfolio_panics() {
        SolverPortfolio::new().solve(&MrfBuilder::new().build(), &SolveControl::new());
    }
}
