//! The [`MapSolver`] trait: one uniform, budgeted, observable API over
//! every MAP solver in this crate.
//!
//! Historically each solver exposed its own `solve` method and callers
//! dispatched by hand; scaling work (portfolios, sharding, async serving)
//! needs an *open* interface instead. The contract is:
//!
//! * **Anytime semantics** — [`MapSolver::solve`] always returns a complete,
//!   in-domain labeling. If the [`SolveControl`] deadline passes or the run
//!   is cancelled, the solver stops at the next iteration boundary and
//!   returns its best-so-far labeling with `converged() == false`.
//! * **Budgets** — [`SolveControl`] carries an optional wall-clock deadline
//!   checked at iteration granularity.
//! * **Cancellation** — an atomic flag, settable from any thread; portfolio
//!   members use linked flags so a winner can stop its siblings.
//! * **Progress** — an optional callback receiving
//!   [`ProgressEvent`]s (iteration, current best energy, lower bound).
//!
//! [`ExactFallback`] composes the exact eliminator with an approximate
//! fallback and *records why* the fallback fired instead of swallowing the
//! error — the telemetry surfaced by `ics_diversity`'s optimizer.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::elimination::{Elimination, EliminationOptions};
use crate::icm::{Icm, IcmOptions};
use crate::local::LocalRefine;
use crate::model::{MrfModel, VarId};
use crate::order::SolveScratch;
use crate::solution::Solution;
use crate::trws::Trws;

/// One progress sample from a running solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEvent {
    /// Iterations (sweeps, kicks, passes) completed so far.
    pub iteration: usize,
    /// Energy of the best labeling found so far.
    pub energy: f64,
    /// Best certified lower bound so far, for solvers that produce one.
    pub lower_bound: Option<f64>,
}

type ProgressFn = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Deadline, cancellation and progress plumbing shared by all solvers.
///
/// Cheap to clone (the flag and callback are reference-counted). A default
/// control never stops a solver and reports nothing.
///
/// ```
/// use std::time::Duration;
/// use mrf::model::MrfBuilder;
/// use mrf::solver::{MapSolver, SolveControl};
/// use mrf::trws::Trws;
///
/// # fn main() -> Result<(), mrf::Error> {
/// let mut b = MrfBuilder::new();
/// let x = b.add_variable(2);
/// let y = b.add_variable(2);
/// b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0])?;
/// let model = b.build();
///
/// let ctl = SolveControl::new().with_budget(Duration::from_millis(50));
/// let solution = Trws::default().solve(&model, &ctl);
/// assert_ne!(solution.labels()[0], solution.labels()[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SolveControl {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    linked: Vec<Arc<AtomicBool>>,
    progress: Option<ProgressFn>,
}

impl Default for SolveControl {
    fn default() -> SolveControl {
        SolveControl {
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
            linked: Vec::new(),
            progress: None,
        }
    }
}

impl fmt::Debug for SolveControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveControl")
            .field("deadline", &self.deadline)
            .field("cancelled", &self.is_cancelled())
            .field("linked_flags", &self.linked.len())
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

impl SolveControl {
    /// An unbounded control: no deadline, not cancelled, no progress sink.
    pub fn new() -> SolveControl {
        SolveControl::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> SolveControl {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` from now.
    pub fn with_budget(self, budget: Duration) -> SolveControl {
        self.with_deadline(Instant::now() + budget)
    }

    /// Installs a progress callback. Called at iteration granularity from
    /// whichever thread runs the solver (portfolio members call it
    /// concurrently).
    pub fn with_progress(
        mut self,
        callback: impl Fn(&ProgressEvent) + Send + Sync + 'static,
    ) -> SolveControl {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// The shared cancellation flag; set it (from any thread) to stop the
    /// solve at the next iteration boundary.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Requests cancellation of this solve (and of solves sharing the flag).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested on this control or any linked one.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) || self.linked.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left until the deadline (`None` when unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The one check solvers make at each iteration boundary: deadline
    /// passed or cancellation requested.
    pub fn should_stop(&self) -> bool {
        self.deadline_exceeded() || self.is_cancelled()
    }

    /// Whether a progress callback is installed — lets solvers skip
    /// computing expensive per-iteration diagnostics nobody will see.
    pub fn has_progress(&self) -> bool {
        self.progress.is_some()
    }

    /// Emits a progress sample (no-op without a callback installed).
    pub fn report(&self, iteration: usize, energy: f64, lower_bound: Option<f64>) {
        if let Some(cb) = &self.progress {
            cb(&ProgressEvent {
                iteration,
                energy,
                lower_bound,
            });
        }
    }

    /// A control for a child solve: shares the deadline and progress sink,
    /// observes this control's cancellation, but owns a fresh flag so the
    /// child (and its siblings) can be cancelled without touching the
    /// parent. Used by [`crate::portfolio::SolverPortfolio`].
    pub fn child(&self) -> SolveControl {
        let mut linked = self.linked.clone();
        linked.push(Arc::clone(&self.cancel));
        SolveControl {
            deadline: self.deadline,
            cancel: Arc::new(AtomicBool::new(false)),
            linked,
            progress: self.progress.clone(),
        }
    }
}

/// The uniform interface over every MAP solver.
///
/// Implementations must honor [`SolveControl`] at iteration granularity and
/// return their best-so-far labeling when stopped early (anytime
/// semantics); `solve` never panics because of a deadline or cancellation.
pub trait MapSolver: Send + Sync {
    /// A short human-readable name for telemetry (e.g. `"trws"`).
    fn name(&self) -> String;

    /// Runs the solver on `model` under `ctl`, returning the best labeling
    /// found. Must return a complete, in-domain labeling even when stopped
    /// at the first iteration boundary.
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution;

    /// [`MapSolver::solve`] with a caller-owned [`SolveScratch`]: solvers
    /// that sweep through prepared structure (TRW-S, BP, colored ICM)
    /// reuse the scratch's allocations across repeated solves — the
    /// engine's warm re-solve pattern. The scratch is re-prepared for
    /// `model` internally; any previous contents are irrelevant. The
    /// default ignores the scratch.
    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        let _ = scratch;
        self.solve(model, ctl)
    }

    /// Improves a caller-supplied labeling, returning a solution whose
    /// energy is no worse than `start`'s. The default runs a fresh
    /// [`MapSolver::solve`] and keeps the better of the two; local-search
    /// solvers override it to genuinely warm-start.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `start` has the wrong arity or
    /// out-of-range labels.
    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let start_energy = model.energy(&start);
        let fresh = self.solve(model, ctl);
        if fresh.energy() <= start_energy {
            fresh
        } else {
            Solution::new(
                start,
                start_energy,
                fresh.lower_bound(),
                fresh.iterations(),
                false,
            )
        }
    }

    /// [`MapSolver::refine`] with a caller-owned [`SolveScratch`] (see
    /// [`MapSolver::solve_with`]). The default mirrors `refine`'s
    /// keep-the-better contract on top of `solve_with`, so scratch-aware
    /// solvers benefit without overriding both.
    fn refine_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let start_energy = model.energy(&start);
        let fresh = self.solve_with(model, ctl, scratch);
        if fresh.energy() <= start_energy {
            fresh
        } else {
            Solution::new(
                start,
                start_energy,
                fresh.lower_bound(),
                fresh.iterations(),
                false,
            )
        }
    }

    /// Warm-starts from per-variable *seed* labels that may be stale: seeds
    /// are projected onto the model first (see
    /// [`crate::projection::project_labels`]), with missing or out-of-range
    /// entries falling back to the unary argmin, then refined via
    /// [`MapSolver::refine`]. Unlike `refine`, this never panics on a seed
    /// slice from an older model revision — the safe path for incremental
    /// re-solves.
    fn refine_projected(
        &self,
        model: &MrfModel,
        seeds: &[Option<usize>],
        ctl: &SolveControl,
    ) -> Solution {
        let start = crate::projection::project_labels(model, seeds);
        self.refine(model, start, ctl)
    }

    /// Refines `start` while restricting sweeps to the *frontier* — the
    /// variables a localized model change can plausibly have affected (a
    /// k-hop ball around the change) — expanding the active region through
    /// flipped variables' neighbors and falling back to a full sweep when
    /// the region stops being local (see [`crate::local`]). Returns the
    /// solution plus locality telemetry ([`LocalRefine`]).
    ///
    /// The energy contract matches [`MapSolver::refine`]: never worse than
    /// `start`. The default implementation ignores the frontier and runs a
    /// full `refine` — always correct, never local; [`crate::icm::Icm`] and
    /// [`crate::trws::Trws`] override it with genuinely masked sweeps.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `start` has the wrong arity or
    /// out-of-range labels (project stale labelings first, e.g. via
    /// [`crate::projection::project_labels`]).
    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        let _ = frontier;
        let live = model.live_var_count();
        LocalRefine::full(self.refine(model, start, ctl), live)
    }

    /// [`MapSolver::refine_local`] with a caller-owned [`SolveScratch`]
    /// (see [`MapSolver::solve_with`]). The default ignores the scratch.
    fn refine_local_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> LocalRefine {
        let _ = scratch;
        self.refine_local(model, start, frontier, ctl)
    }

    /// [`MapSolver::refine_local`] with a hard freeze: the `sealed`
    /// variables keep their `start` labels no matter what — they are never
    /// swept, never activated by expansion, and survive any full-sweep
    /// fallback. This is the serving primitive for shard boundaries: a
    /// shard engine cannot value the cross-shard edges its boundary hosts
    /// sit on, so its re-solves must leave them to the coordinator.
    ///
    /// The energy contract matches [`MapSolver::refine`] (never worse than
    /// `start`); sealed variables aside, locality telemetry matches
    /// [`MapSolver::refine_local`]. The default implementation conditions
    /// the model on the sealed variables' start labels
    /// ([`crate::local::condition_submodel`]) and refines the unsealed
    /// submodel in full — always correct; [`crate::icm::Icm`] overrides it
    /// with a masked in-place sweep that skips the submodel construction.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `start` has the wrong arity or
    /// out-of-range labels.
    fn refine_local_sealed(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        sealed: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        if sealed.is_empty() {
            return self.refine_local(model, start, frontier, ctl);
        }
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let mut active = vec![true; model.var_count()];
        for v in sealed {
            if let Some(a) = active.get_mut(v.0) {
                *a = false;
            }
        }
        let (sub, map) = crate::local::condition_submodel(model, &start, &active);
        let sub_start: Vec<usize> = map.iter().map(|&v| start[v]).collect();
        let refined = self.refine(&sub, sub_start, ctl);
        let mut labels = start;
        for (i, &orig) in map.iter().enumerate() {
            labels[orig] = refined.labels()[i];
        }
        let energy = model.energy(&labels);
        LocalRefine {
            solution: Solution::new(
                labels,
                energy,
                None,
                refined.iterations(),
                refined.converged(),
            ),
            swept_vars: map.len(),
            expansions: 0,
            full_sweep: true,
        }
    }

    /// If the most recent [`MapSolver::solve`] on this instance had to fall
    /// back from an exact method, the human-readable cause. `None` for
    /// solvers without a fallback stage (the default).
    fn fallback_cause(&self) -> Option<String> {
        None
    }
}

impl<S: MapSolver + ?Sized> MapSolver for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        (**self).solve(model, ctl)
    }

    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        (**self).solve_with(model, ctl, scratch)
    }

    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        (**self).refine(model, start, ctl)
    }

    fn refine_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        (**self).refine_with(model, start, ctl, scratch)
    }

    fn refine_projected(
        &self,
        model: &MrfModel,
        seeds: &[Option<usize>],
        ctl: &SolveControl,
    ) -> Solution {
        (**self).refine_projected(model, seeds, ctl)
    }

    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        (**self).refine_local(model, start, frontier, ctl)
    }

    fn refine_local_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> LocalRefine {
        (**self).refine_local_with(model, start, frontier, ctl, scratch)
    }

    fn refine_local_sealed(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        sealed: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        (**self).refine_local_sealed(model, start, frontier, sealed, ctl)
    }

    fn fallback_cause(&self) -> Option<String> {
        (**self).fallback_cause()
    }
}

impl<S: MapSolver + ?Sized> MapSolver for Arc<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        (**self).solve(model, ctl)
    }

    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        (**self).solve_with(model, ctl, scratch)
    }

    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        (**self).refine(model, start, ctl)
    }

    fn refine_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        (**self).refine_with(model, start, ctl, scratch)
    }

    fn refine_projected(
        &self,
        model: &MrfModel,
        seeds: &[Option<usize>],
        ctl: &SolveControl,
    ) -> Solution {
        (**self).refine_projected(model, seeds, ctl)
    }

    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        (**self).refine_local(model, start, frontier, ctl)
    }

    fn refine_local_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> LocalRefine {
        (**self).refine_local_with(model, start, frontier, ctl, scratch)
    }

    fn refine_local_sealed(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        sealed: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        (**self).refine_local_sealed(model, start, frontier, sealed, ctl)
    }

    fn fallback_cause(&self) -> Option<String> {
        (**self).fallback_cause()
    }
}

/// Exact elimination with a recorded, queryable fallback.
///
/// Runs [`Elimination`] first; when the instance's treewidth exceeds the
/// table cap (or the budget runs out mid-elimination), runs the fallback
/// solver instead and records the cause, retrievable via
/// [`MapSolver::fallback_cause`]. This replaces the old silent
/// `unwrap_or_else(|_| Trws::default().solve(..))` pattern.
pub struct ExactFallback {
    exact: Elimination,
    fallback: Box<dyn MapSolver>,
    cause: Mutex<Option<String>>,
}

impl fmt::Debug for ExactFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExactFallback")
            .field("fallback", &self.fallback.name())
            .field("cause", &self.fallback_cause())
            .finish()
    }
}

impl Default for ExactFallback {
    fn default() -> ExactFallback {
        ExactFallback::new(EliminationOptions::default())
    }
}

impl ExactFallback {
    /// Exact elimination with the default TRW-S fallback.
    pub fn new(options: EliminationOptions) -> ExactFallback {
        ExactFallback::with_fallback(options, Box::new(Trws::default()))
    }

    /// Exact elimination with a custom fallback solver.
    pub fn with_fallback(
        options: EliminationOptions,
        fallback: Box<dyn MapSolver>,
    ) -> ExactFallback {
        ExactFallback {
            exact: Elimination::new(options),
            fallback,
            cause: Mutex::new(None),
        }
    }
}

impl MapSolver for ExactFallback {
    fn name(&self) -> String {
        format!("exact\u{2192}{}", self.fallback.name())
    }

    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        *self.cause.lock().expect("fallback cause lock") = None;
        match self.exact.solve_exact(model, ctl) {
            Ok(solution) => solution,
            Err(err) => {
                *self.cause.lock().expect("fallback cause lock") = Some(err.to_string());
                self.fallback.solve(model, ctl)
            }
        }
    }

    fn fallback_cause(&self) -> Option<String> {
        self.cause.lock().expect("fallback cause lock").clone()
    }
}

/// Clamps a labeling into the model's domains (defensive helper used by
/// solvers when seeding descent from arbitrary starts).
pub(crate) fn descent_start(model: &MrfModel) -> Vec<usize> {
    model.unary_argmin()
}

/// A budget-respecting greedy descent used as the universal "best effort
/// under a blown budget" path: a single bounded ICM from the unary argmin.
pub(crate) fn best_effort(model: &MrfModel, ctl: &SolveControl) -> Solution {
    let start = descent_start(model);
    let descended = Icm::new(IcmOptions {
        max_sweeps: 4,
        ..IcmOptions::default()
    })
    .solve_from(model, start, ctl);
    Solution::new(
        descended.labels().to_vec(),
        descended.energy(),
        None,
        descended.iterations(),
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MrfBuilder;
    use std::sync::atomic::AtomicUsize;

    fn two_var_model() -> MrfModel {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        b.build()
    }

    #[test]
    fn default_control_never_stops() {
        let ctl = SolveControl::new();
        assert!(!ctl.should_stop());
        assert!(ctl.remaining().is_none());
        assert!(ctl.deadline().is_none());
    }

    #[test]
    fn cancel_stops_and_links_propagate() {
        let parent = SolveControl::new();
        let child = parent.child();
        assert!(!child.should_stop());
        parent.cancel();
        assert!(child.is_cancelled(), "child observes parent cancellation");
        assert!(!parent.child().cancel_flag().load(Ordering::Relaxed));
        // Cancelling a child does not cancel the parent.
        let parent2 = SolveControl::new();
        let child2 = parent2.child();
        child2.cancel();
        assert!(!parent2.is_cancelled());
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = SolveControl::new().with_budget(Duration::from_secs(0));
        assert!(ctl.should_stop());
        assert_eq!(ctl.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn progress_callback_fires() {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        let ctl = SolveControl::new().with_progress(move |event| {
            assert!(event.energy.is_finite());
            seen.fetch_add(1, Ordering::Relaxed);
        });
        let solution = Trws::default().solve(&two_var_model(), &ctl);
        assert_eq!(solution.energy(), 0.0);
        assert!(count.load(Ordering::Relaxed) > 0, "no progress events seen");
    }

    #[test]
    fn default_refine_keeps_better_start() {
        // A start that is already optimal must not be replaced by something
        // worse, whatever the solver does.
        let model = two_var_model();
        let ctl = SolveControl::new();
        let refined = Trws::default().refine(&model, vec![0, 1], &ctl);
        assert_eq!(refined.energy(), 0.0);
    }

    #[test]
    fn exact_fallback_records_cause_only_when_firing() {
        let model = two_var_model();
        let ctl = SolveControl::new();
        let solver = ExactFallback::default();
        let solution = solver.solve(&model, &ctl);
        assert_eq!(solution.energy(), 0.0);
        assert!(
            solver.fallback_cause().is_none(),
            "no fallback on a tiny model"
        );

        // A 14-clique with 3 labels blows a tiny table cap.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..14).map(|_| b.add_variable(3)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                b.add_edge_dense(vars[i], vars[j], vec![0.5; 9]).unwrap();
            }
        }
        let clique = b.build();
        let capped = ExactFallback::new(EliminationOptions {
            max_table_entries: 100,
        });
        let solution = capped.solve(&clique, &ctl);
        assert_eq!(solution.labels().len(), 14);
        let cause = capped.fallback_cause().expect("fallback must fire");
        assert!(
            cause.contains("cap"),
            "cause should explain the limit: {cause}"
        );

        // A later clean solve clears the recorded cause.
        capped.solve(&model, &ctl);
        assert!(capped.fallback_cause().is_none());
    }

    #[test]
    fn trait_objects_compose() {
        let solvers: Vec<Box<dyn MapSolver>> = vec![
            Box::new(Trws::default()),
            Box::new(Icm::default()),
            Box::new(ExactFallback::default()),
        ];
        let model = two_var_model();
        let ctl = SolveControl::new();
        for solver in &solvers {
            let s = solver.solve(&model, &ctl);
            assert_eq!(s.energy(), 0.0, "{} failed", solver.name());
        }
    }
}
