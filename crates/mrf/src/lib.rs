//! Discrete pairwise Markov Random Fields and anytime MAP solvers.
//!
//! Section V of the DSN 2020 paper *"Scalable Approach to Enhancing ICS
//! Resilience by Network Diversity"* casts optimal product assignment as MAP
//! inference in a discrete pairwise MRF, minimized with the sequential
//! tree-reweighted message passing algorithm (**TRW-S**, Kolmogorov). This
//! crate is a self-contained implementation of that machinery, unified
//! behind one open interface:
//!
//! * [`solver`] — the [`MapSolver`] trait every solver implements:
//!   `solve(&model, &SolveControl)` with wall-clock deadlines, atomic
//!   cancellation and progress callbacks, all honored at iteration
//!   granularity with anytime (best-so-far) semantics. Also home to
//!   [`solver::ExactFallback`], which composes exact elimination with an
//!   approximate fallback and records *why* the fallback fired.
//! * [`portfolio`] — [`SolverPortfolio`]: N solvers racing on scoped
//!   threads, first certified winner cancels the rest, per-member
//!   telemetry.
//! * [`model`] — the energy function: variables with finite label sets,
//!   per-variable unary costs, and pairwise potentials on edges. Potentials
//!   are *shared*: thousands of edges can reference one cost matrix, which
//!   is what keeps 6000-host × 25-service instances (several million MRF
//!   edges) in memory. Models are **mutable with stable variable handles**
//!   (tombstones + free lists): incremental pipelines edit variables and
//!   factors in place after a localized change instead of reassembling the
//!   whole model — see the module docs and the example below.
//! * [`trws`] — sequential tree-reweighted message passing with a certified
//!   lower bound; exact on trees, state-of-the-art approximate on loopy
//!   graphs.
//! * [`bp`] — loopy min-sum belief propagation as the baseline the paper
//!   compares TRW-S against: chromatic Gauss–Seidel sweeps over a greedy
//!   coloring ([`color`]), adaptive damping that engages only when the
//!   residual oscillates, and optional colored-parallel execution.
//! * [`icm`] — iterated conditional modes, a fast greedy baseline and the
//!   warm-start refiner other solvers build on.
//! * [`ils`] — iterated local search, the refinement stage that closes the
//!   primal gap the message-passing decode leaves on frustrated energies.
//! * [`projection`] — projecting a stale labeling onto a rebuilt model, the
//!   safe warm-start path for incremental re-solves
//!   ([`MapSolver::refine_projected`]).
//! * [`local`] — frontier-restricted refinement
//!   ([`MapSolver::refine_local`]): masked sweeps around a localized
//!   change, expanding while labels keep flipping, with a full-sweep
//!   fallback. Exposes [`condition_submodel`], the freeze-and-fold
//!   mechanism shard coordinators build on.
//! * [`elimination`] — exact MAP by min-sum bucket elimination, feasible
//!   whenever the instance's treewidth is small (the ICS case study is).
//! * [`exhaustive`] — brute force, the test oracle for small instances.
//! * [`solution`] — the decoded labeling with energy and bound diagnostics.
//! * [`order`] and [`color`] — the shared hot-loop substrate:
//!   [`SolveScratch`] (flat SoA message arena, precomputed edge-slot
//!   offsets, monotone-chain ordering; warm re-solves allocate nothing)
//!   and greedy graph coloring for thread-count-invariant parallel sweeps.
//!
//! # Quick start
//!
//! ```
//! use mrf::model::MrfBuilder;
//! use mrf::solver::{MapSolver, SolveControl};
//! use mrf::trws::Trws;
//!
//! # fn main() -> Result<(), mrf::Error> {
//! // Two variables with two labels each; disagreeing labels are cheaper.
//! let mut b = MrfBuilder::new();
//! let x = b.add_variable(2);
//! let y = b.add_variable(2);
//! b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0])?; // cost(xa, xb)
//! let model = b.build();
//!
//! let solution = Trws::default().solve(&model, &SolveControl::new());
//! assert_ne!(solution.labels()[0], solution.labels()[1]);
//! assert_eq!(solution.energy(), 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Budgets and portfolios
//!
//! ```
//! use std::time::Duration;
//! use mrf::model::MrfBuilder;
//! use mrf::portfolio::SolverPortfolio;
//! use mrf::solver::{MapSolver, SolveControl};
//!
//! # fn main() -> Result<(), mrf::Error> {
//! let mut b = MrfBuilder::new();
//! let vars: Vec<_> = (0..10).map(|_| b.add_variable(3)).collect();
//! for w in vars.windows(2) {
//!     b.add_edge_dense(w[0], w[1], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0])?;
//! }
//! let model = b.build();
//!
//! // Race TRW-S, BP, exact elimination and ILS under a 100 ms budget; the
//! // first member to certify optimality cancels the others.
//! let ctl = SolveControl::new().with_budget(Duration::from_millis(100));
//! let outcome = SolverPortfolio::standard().solve_detailed(&model, &ctl);
//! assert_eq!(outcome.solution.energy(), 0.0);
//! assert!(outcome.reports.iter().any(|r| r.winner));
//! # Ok(())
//! # }
//! ```
//!
//! # Mutable models: build, mutate, re-solve
//!
//! A model is not frozen at build time: [`MrfModel`] exposes
//! `add_var` / `remove_var` / `set_unary` / `add_pairwise` /
//! `remove_pairwise` mutators whose handles stay stable across mutations
//! of *other* variables (removal tombstones a slot; a free list recycles
//! it). Solvers sweep live variables only, and the previous solution
//! remains a valid warm start because labeling arity is the slot count:
//!
//! ```
//! use mrf::model::MrfModel;
//! use mrf::solver::{MapSolver, SolveControl};
//! use mrf::trws::Trws;
//!
//! # fn main() -> Result<(), mrf::Error> {
//! // Build: a 3-chain preferring disagreement along each edge.
//! let mut model = MrfModel::new();
//! let vars: Vec<_> = (0..3).map(|_| model.add_var(2)).collect::<Result<_, _>>()?;
//! for w in vars.windows(2) {
//!     model.add_pairwise_dense(w[0], w[1], vec![1.0, 0.0, 0.0, 1.0])?;
//! }
//! let ctl = SolveControl::new();
//! let first = Trws::default().solve(&model, &ctl);
//! assert_eq!(first.energy(), 0.0);
//!
//! // Mutate: drop the middle variable (its edges go with it), grow a new
//! // one linked to both survivors. Handles of untouched variables — and
//! // their labels in `first` — stay valid; the tombstoned slot is reused.
//! model.remove_var(vars[1])?;
//! let fresh = model.add_var(2)?;
//! assert_eq!(fresh, vars[1]);
//! model.add_pairwise_dense(vars[0], fresh, vec![1.0, 0.0, 0.0, 1.0])?;
//! model.add_pairwise_dense(fresh, vars[2], vec![1.0, 0.0, 0.0, 1.0])?;
//! model.set_unary(fresh, vec![0.0, 0.1])?;
//!
//! // Re-solve warm from the previous labeling.
//! let second = Trws::default().refine(&model, first.labels().to_vec(), &ctl);
//! assert_eq!(second.energy(), 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bp;
pub mod color;
pub mod elimination;
pub mod exhaustive;
pub mod icm;
pub mod ils;
pub mod local;
pub mod model;
pub mod order;
pub mod portfolio;
pub mod projection;
pub mod solution;
pub mod solver;
pub mod trws;

mod error;

pub use color::ColorClasses;
pub use error::Error;
pub use local::{condition_submodel, LocalRefine};
pub use model::{EdgeId, MrfBuilder, MrfModel, PotentialId, UnaryOverlay, VarId};
pub use order::SolveScratch;
pub use portfolio::{MemberReport, PortfolioOutcome, SolverPortfolio};
pub use solution::Solution;
pub use solver::{ExactFallback, MapSolver, ProgressEvent, SolveControl};

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;
