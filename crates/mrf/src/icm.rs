//! Iterated conditional modes — the greedy coordinate-descent baseline.
//!
//! Sweeps variables repeatedly, setting each to the label minimizing its
//! local energy given all neighbors. Monotonically decreases energy and
//! terminates at a local optimum; fast but easily trapped, which is exactly
//! why it is a useful contrast to TRW-S in the ablation benchmarks.
//!
//! With [`IcmOptions::threads`] ≥ 2 the sweep switches to a *colored*
//! schedule over a [`crate::order::SolveScratch`]: variables are visited
//! color class by color class ([`crate::color`]), and each class — an
//! independent set, so its moves read and write disjoint state — is split
//! across scoped threads when the model is large enough
//! ([`IcmOptions::parallel_threshold`]). The schedule is fixed by the
//! coloring, not by the thread count, so results are identical whether a
//! class runs on one thread or eight — the property the colored ≡
//! sequential proptests pin. `threads == 1` keeps the classic slot-order
//! sweep bit-for-bit.

use crate::local::{ActiveRegion, LocalRefine};
use crate::model::{MrfModel, VarId};
use crate::order::{energy_fast, ensure_thread_bufs, SendPtr, SolveScratch, Tables};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Fills `cost[..labels(i)]` with variable `i`'s conditional energies given
/// `labels` and returns the argmin — the one ICM move, shared by the full
/// and the frontier-restricted sweep.
fn conditional_argmin(model: &MrfModel, labels: &[usize], i: usize, cost: &mut [f64]) -> usize {
    let v = VarId(i);
    let l = model.labels(v);
    cost[..l].copy_from_slice(model.unary(v));
    for &eidx in model.incident_edges(v) {
        let e = model.edges()[eidx as usize];
        if e.a().0 == i {
            let xb = labels[e.b().0];
            for (xa, c) in cost[..l].iter_mut().enumerate() {
                *c += model.edge_cost(&e, xa, xb);
            }
        } else {
            let xa = labels[e.a().0];
            for (xb, c) in cost[..l].iter_mut().enumerate() {
                *c += model.edge_cost(&e, xa, xb);
            }
        }
    }
    cost[..l]
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(x, _)| x)
        .unwrap_or(0)
}

/// One colored-schedule ICM move on variable `i`: fill the conditional
/// cost via the resolved tables (contiguous potential rows, no transpose
/// branch) and flip to the argmin if strictly better — the fast-path twin
/// of [`conditional_argmin`].
///
/// # Safety
///
/// `labels` must point to a labeling of length `t.n`, and no variable
/// adjacent to `i` (nor `i` itself) may be written through another copy of
/// the pointer while this call runs — guaranteed when concurrent callers
/// process distinct variables of one color class.
unsafe fn colored_move(
    model: &MrfModel,
    t: &Tables<'_>,
    pot: &[f64],
    labels: SendPtr<usize>,
    i: usize,
    cost: &mut [f64],
) -> bool {
    let l = t.labels(i);
    cost[..l].copy_from_slice(model.unary(VarId(i)));
    for &e in t.fwd(i) {
        let e = e as usize;
        let la = t.edge_la[e] as usize;
        let xb = *labels.0.add(t.edge_b[e] as usize);
        let row = &pot[t.pot_ba[e] as usize + xb * la..][..la];
        for (c, &p) in cost[..l].iter_mut().zip(row) {
            *c += p;
        }
    }
    for &e in t.bwd(i) {
        let e = e as usize;
        let lb = t.edge_lb[e] as usize;
        let xa = *labels.0.add(t.edge_a[e] as usize);
        let row = &pot[t.pot_ab[e] as usize + xa * lb..][..lb];
        for (c, &p) in cost[..l].iter_mut().zip(row) {
            *c += p;
        }
    }
    let mut best = 0usize;
    for x in 1..l {
        if cost[x] < cost[best] {
            best = x;
        }
    }
    let cur = *labels.0.add(i);
    if best != cur && cost[best] < cost[cur] {
        *labels.0.add(i) = best;
        true
    } else {
        false
    }
}

/// In-place slot-order ICM sweeps through the resolved tables — the
/// zero-allocation descent TRW-S uses to polish each decode. Returns
/// `(sweeps, converged)`.
pub(crate) fn fast_sweeps(
    model: &MrfModel,
    t: &Tables<'_>,
    pot: &[f64],
    labels: &mut [usize],
    cost: &mut [f64],
    max_sweeps: usize,
    ctl: &SolveControl,
) -> (usize, bool) {
    let ptr = SendPtr(labels.as_mut_ptr());
    let mut sweeps = 0usize;
    for sweep in 0..max_sweeps {
        if ctl.should_stop() {
            return (sweeps, false);
        }
        sweeps = sweep + 1;
        let mut changed = false;
        for &iu in t.order {
            // SAFETY: sequential use — no concurrent writers at all.
            changed |= unsafe { colored_move(model, t, pot, ptr, iu as usize, cost) };
        }
        if !changed {
            return (sweeps, true);
        }
    }
    (sweeps, false)
}

/// Options controlling an ICM run.
#[derive(Debug, Clone, PartialEq)]
pub struct IcmOptions {
    /// Maximum number of full sweeps.
    pub max_sweeps: usize,
    /// Worker threads for the colored sweep schedule. 1 (the default)
    /// keeps the classic sequential slot-order sweep; ≥ 2 switches to the
    /// colored class-by-class schedule, parallelized per class when the
    /// model clears [`IcmOptions::parallel_threshold`]. The colored
    /// schedule's results depend only on the coloring, never on the thread
    /// count.
    pub threads: usize,
    /// Minimum live variables before a colored sweep actually spawns
    /// threads; below it the same schedule runs sequentially (identical
    /// results, no spawn overhead).
    pub parallel_threshold: usize,
}

impl Default for IcmOptions {
    fn default() -> IcmOptions {
        IcmOptions {
            max_sweeps: 100,
            threads: 1,
            parallel_threshold: 512,
        }
    }
}

/// The ICM solver.
#[derive(Debug, Clone, Default)]
pub struct Icm {
    options: IcmOptions,
}

impl Icm {
    /// Creates a solver with the given options.
    pub fn new(options: IcmOptions) -> Icm {
        Icm { options }
    }

    /// Runs ICM from a caller-supplied initial labeling, honoring the
    /// control's deadline/cancellation at sweep granularity (the start
    /// labeling is returned unchanged if the budget is already spent).
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong arity or out-of-range labels.
    pub fn solve_from(
        &self,
        model: &MrfModel,
        mut labels: Vec<usize>,
        ctl: &SolveControl,
    ) -> Solution {
        if self.options.threads >= 2 {
            let mut scratch = SolveScratch::new();
            return self.solve_from_with(model, labels, ctl, &mut scratch);
        }
        assert_eq!(labels.len(), model.var_count(), "labeling arity mismatch");
        let n = model.var_count();
        if n == 0 {
            return Solution::new(labels, 0.0, None, 0, true);
        }
        let mut cost = vec![0.0f64; model.max_labels()];
        let mut sweeps = 0usize;
        let mut converged = false;
        for sweep in 0..self.options.max_sweeps {
            if ctl.should_stop() {
                break;
            }
            sweeps = sweep + 1;
            let mut changed = false;
            for i in 0..n {
                if !model.is_live(VarId(i)) {
                    continue;
                }
                let best = conditional_argmin(model, &labels, i, &mut cost);
                if best != labels[i] && cost[best] < cost[labels[i]] {
                    labels[i] = best;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        let energy = model.energy(&labels);
        ctl.report(sweeps, energy, None);
        Solution::new(labels, energy, None, sweeps, converged)
    }

    /// [`Icm::solve_from`] over a caller-owned [`SolveScratch`]: the
    /// colored class-by-class schedule (module docs), threaded per class
    /// when `threads ≥ 2` and the model clears the parallel threshold.
    /// With `threads == 1` this still runs the colored schedule — callers
    /// wanting the classic slot-order sweep use [`Icm::solve_from`].
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong arity or out-of-range labels.
    pub fn solve_from_with(
        &self,
        model: &MrfModel,
        mut labels: Vec<usize>,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        assert_eq!(labels.len(), model.var_count(), "labeling arity mismatch");
        if model.var_count() == 0 {
            return Solution::new(labels, 0.0, None, 0, true);
        }
        scratch.prepare(model);
        let p = scratch.parts();
        let threads = self.options.threads.max(1);
        let par = threads >= 2 && model.live_var_count() >= self.options.parallel_threshold;
        ensure_thread_bufs(p.thread_bufs, threads, p.t.max_labels);
        let ptr = SendPtr(labels.as_mut_ptr());
        let mut sweeps = 0usize;
        let mut converged = false;
        let barrier = std::sync::Barrier::new(threads);
        for sweep in 0..self.options.max_sweeps {
            if ctl.should_stop() {
                break;
            }
            sweeps = sweep + 1;
            let mut changed = false;
            if !par {
                let cost = &mut p.thread_bufs[0];
                for k in 0..p.t.colors.class_count() {
                    for &iu in p.t.colors.class(k) {
                        // SAFETY: sequential — sole writer.
                        changed |=
                            unsafe { colored_move(model, &p.t, p.pot, ptr, iu as usize, cost) };
                    }
                }
            } else {
                // One sweep = one spawn of `threads` workers; a barrier
                // separates the color classes so the class-major order is
                // preserved. One class = one independent set: concurrent
                // moves read only other-class labels and write disjoint own
                // labels, so chunking is free of ordering effects.
                let t = &p.t;
                let pot = p.pot;
                let barrier = &barrier;
                let flags = std::thread::scope(|scope| {
                    let handles: Vec<_> = p
                        .thread_bufs
                        .iter_mut()
                        .enumerate()
                        .map(|(tid, cost)| {
                            scope.spawn(move || {
                                let mut local = false;
                                for k in 0..t.colors.class_count() {
                                    let class = t.colors.class(k);
                                    let chunk = class.len().div_ceil(threads);
                                    let lo = (tid * chunk).min(class.len());
                                    let hi = ((tid + 1) * chunk).min(class.len());
                                    for &iu in &class[lo..hi] {
                                        // SAFETY: vars of one class are
                                        // pairwise non-adjacent (see
                                        // `colored_move`).
                                        local |= unsafe {
                                            colored_move(model, t, pot, ptr, iu as usize, cost)
                                        };
                                    }
                                    barrier.wait();
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("colored ICM worker panicked"))
                        .collect::<Vec<_>>()
                });
                changed = flags.into_iter().any(|f| f);
            }
            if !changed {
                converged = true;
                break;
            }
        }
        let energy = energy_fast(model, &p.t, p.pot, &labels);
        ctl.report(sweeps, energy, None);
        Solution::new(labels, energy, None, sweeps, converged)
    }
}

impl MapSolver for Icm {
    fn name(&self) -> String {
        "icm".to_string()
    }

    /// Runs ICM from the unary-argmin labeling.
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        self.solve_from(model, model.unary_argmin(), ctl)
    }

    /// [`MapSolver::solve`] reusing the scratch's allocations when the
    /// colored schedule is active (`threads ≥ 2`); the sequential sweep
    /// needs no prepared structure and ignores the scratch.
    fn solve_with(
        &self,
        model: &MrfModel,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        if self.options.threads >= 2 {
            self.solve_from_with(model, model.unary_argmin(), ctl, scratch)
        } else {
            self.solve(model, ctl)
        }
    }

    /// ICM genuinely warm-starts: descends from `start` directly.
    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        self.solve_from(model, start, ctl)
    }

    /// Warm-start descent through the scratch (see
    /// [`Icm::solve_from_with`]).
    fn refine_with(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        ctl: &SolveControl,
        scratch: &mut SolveScratch,
    ) -> Solution {
        if self.options.threads >= 2 {
            self.solve_from_with(model, start, ctl, scratch)
        } else {
            self.solve_from(model, start, ctl)
        }
    }

    /// Masked coordinate descent: sweeps only the active region, activating
    /// every flipped variable's neighbors (a flip can create pressure one
    /// hop further out). Falls back to a full [`Icm::solve_from`] when the
    /// region grows past half the model (see [`crate::local`]).
    fn refine_local(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let n = model.var_count();
        let mut region = ActiveRegion::new(model, frontier);
        if region.count == 0 {
            return LocalRefine::noop(model, start);
        }
        if region.should_fall_back() {
            return LocalRefine::full(self.solve_from(model, start, ctl), model.live_var_count());
        }
        let mut labels = start;
        let mut cost = vec![0.0f64; model.max_labels()];
        let mut sweeps = 0usize;
        let mut converged = false;
        for sweep in 0..self.options.max_sweeps {
            if ctl.should_stop() {
                break;
            }
            sweeps = sweep + 1;
            let mut changed = false;
            for i in 0..n {
                if !region.mask[i] {
                    continue;
                }
                let best = conditional_argmin(model, &labels, i, &mut cost);
                if best != labels[i] && cost[best] < cost[labels[i]] {
                    labels[i] = best;
                    changed = true;
                    if region.activate_neighbors(model, i) > 0 {
                        region.expansions += 1;
                        if region.should_fall_back() {
                            // The wave stopped being local: finish with an
                            // unmasked descent from where we got to.
                            let expansions = region.expansions;
                            let full = self.solve_from(model, labels, ctl);
                            return LocalRefine {
                                solution: full,
                                swept_vars: model.live_var_count(),
                                expansions,
                                full_sweep: true,
                            };
                        }
                    }
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        let energy = model.energy(&labels);
        ctl.report(sweeps, energy, None);
        LocalRefine {
            solution: Solution::new(labels, energy, None, sweeps, converged),
            swept_vars: region.count,
            expansions: region.expansions,
            full_sweep: false,
        }
    }

    /// Masked coordinate descent with a hard freeze: sealed variables are
    /// never swept and never activated, and the past-half-the-model
    /// fallback widens the region to *every unsealed* variable instead of
    /// handing off to an unmasked full descent. No submodel is built — the
    /// seal is just a mask on the in-place sweep, which is what makes
    /// pinned warm re-solves as cheap as unpinned ones.
    fn refine_local_sealed(
        &self,
        model: &MrfModel,
        start: Vec<usize>,
        frontier: &[VarId],
        sealed: &[VarId],
        ctl: &SolveControl,
    ) -> LocalRefine {
        if sealed.is_empty() {
            return self.refine_local(model, start, frontier, ctl);
        }
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let n = model.var_count();
        let mut sealed_mask = vec![false; n];
        for v in sealed {
            if let Some(m) = sealed_mask.get_mut(v.0) {
                *m = true;
            }
        }
        let unsealed_total = (0..n)
            .filter(|&i| !sealed_mask[i] && model.is_live(VarId(i)))
            .count();
        let unsealed_frontier: Vec<VarId> = frontier
            .iter()
            .copied()
            .filter(|v| v.0 < n && !sealed_mask[v.0])
            .collect();
        let mut region = ActiveRegion::new(model, &unsealed_frontier);
        if region.count == 0 {
            return LocalRefine::noop(model, start);
        }
        let mut full_sweep = 2 * region.count > unsealed_total;
        if full_sweep {
            for (i, active) in region.mask.iter_mut().enumerate() {
                *active = !sealed_mask[i] && model.is_live(VarId(i));
            }
            region.count = unsealed_total;
        }
        let mut labels = start;
        let mut cost = vec![0.0f64; model.max_labels()];
        let mut sweeps = 0usize;
        let mut converged = false;
        for sweep in 0..self.options.max_sweeps {
            if ctl.should_stop() {
                break;
            }
            sweeps = sweep + 1;
            let mut changed = false;
            for i in 0..n {
                if !region.mask[i] || sealed_mask[i] {
                    continue;
                }
                let best = conditional_argmin(model, &labels, i, &mut cost);
                if best != labels[i] && cost[best] < cost[labels[i]] {
                    labels[i] = best;
                    changed = true;
                    if !full_sweep {
                        let mut added = 0;
                        for &eidx in model.incident_edges(VarId(i)) {
                            let e = model.edges()[eidx as usize];
                            let other = if e.a().0 == i { e.b().0 } else { e.a().0 };
                            if !sealed_mask[other] && !region.mask[other] {
                                region.mask[other] = true;
                                region.count += 1;
                                added += 1;
                            }
                        }
                        if added > 0 {
                            region.expansions += 1;
                            if 2 * region.count > unsealed_total {
                                // The wave stopped being local: widen to
                                // every live unsealed variable and keep
                                // going.
                                full_sweep = true;
                                for (v, active) in region.mask.iter_mut().enumerate() {
                                    *active = !sealed_mask[v] && model.is_live(VarId(v));
                                }
                                region.count = unsealed_total;
                            }
                        }
                    }
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        let energy = model.energy(&labels);
        ctl.report(sweeps, energy, None);
        LocalRefine {
            solution: Solution::new(labels, energy, None, sweeps, converged),
            swept_vars: region.count,
            expansions: region.expansions,
            full_sweep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    #[test]
    fn single_variable() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![2.0, 0.0, 1.0]).unwrap();
        let s = Icm::default().solve(&b.build(), &ctl());
        assert_eq!(s.labels(), &[1]);
        assert!(s.converged());
    }

    #[test]
    fn energy_never_increases_relative_to_start() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..8).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..2.0)).collect())
                    .unwrap();
            }
            for i in 0..8 {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % 8],
                    (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let start = m.unary_argmin();
            let start_energy = m.energy(&start);
            let s = Icm::default().solve_from(&m, start, &ctl());
            assert!(s.energy() <= start_energy + 1e-12);
        }
    }

    #[test]
    fn optimal_on_independent_variables() {
        let mut b = MrfBuilder::new();
        for i in 0..5 {
            let v = b.add_variable(4);
            b.set_unary(v, (0..4).map(|l| ((l + i) % 4) as f64).collect())
                .unwrap();
        }
        let m = b.build();
        let s = Icm::default().solve(&m, &ctl());
        let opt = Exhaustive::new().solve(&m, &ctl());
        assert_eq!(s.energy(), opt.energy());
    }

    #[test]
    fn respects_strong_pairwise_preferences() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![0.0, 0.1]).unwrap();
        b.set_unary(y, vec![0.0, 0.1]).unwrap();
        b.add_edge_dense(x, y, vec![10.0, 0.0, 0.0, 10.0]).unwrap();
        let s = Icm::default().solve(&b.build(), &ctl());
        assert_ne!(s.labels()[0], s.labels()[1]);
    }

    #[test]
    fn can_get_stuck_in_local_optimum() {
        // Frustrated symmetric start: from the all-zeros unary argmin, no
        // single flip improves, though the optimum flips both variables.
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![0.0, 0.4]).unwrap();
        b.set_unary(y, vec![0.0, 0.4]).unwrap();
        // (0,0) -> 1.0; flipping one -> 1.4+0.0... choose costs so single
        // flips are worse but the double flip wins.
        b.add_edge_dense(x, y, vec![1.0, 1.1, 1.1, 0.0]).unwrap();
        let m = b.build();
        let s = Icm::default().solve(&m, &ctl());
        let opt = Exhaustive::new().solve(&m, &ctl());
        assert_eq!(opt.labels(), &[1, 1]);
        assert!(s.energy() >= opt.energy());
        assert_eq!(s.labels(), &[0, 0], "ICM should be trapped by design here");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut b = MrfBuilder::new();
        b.add_variable(2);
        Icm::default().solve_from(&b.build(), vec![], &ctl());
    }
}
