//! Exact MAP by min-sum bucket (variable) elimination.
//!
//! Eliminates variables one by one in a greedy min-degree order: all cost
//! tables mentioning the variable are summed into one, the variable is
//! minimized out (recording argmins for back-substitution), and the reduced
//! table joins the pool. For a graph of induced width `w` the cost is
//! `O(n · L^(w+1))` — exponential in the treewidth but *exact*, which makes
//! this the solver of choice for structured instances like the paper's ICS
//! case study (sparse zone rings bridged by a few firewall links), where
//! message passing leaves an integrality gap.
//!
//! The eliminator refuses instances whose intermediate tables would exceed
//! a configurable cap, so callers can fall back to TRW-S.

use std::collections::BTreeSet;

use crate::model::{MrfModel, VarId};
use crate::solution::Solution;
use crate::solver::{best_effort, MapSolver, SolveControl};
use crate::{Error, Result};

/// Options for the exact eliminator.
#[derive(Debug, Clone, PartialEq)]
pub struct EliminationOptions {
    /// Maximum number of entries any intermediate table may reach. The
    /// default (16M) corresponds to induced width ≈ 12 at 4 labels.
    pub max_table_entries: usize,
}

impl Default for EliminationOptions {
    fn default() -> EliminationOptions {
        EliminationOptions {
            max_table_entries: 16_000_000,
        }
    }
}

/// The exact min-sum eliminator.
#[derive(Debug, Clone, Default)]
pub struct Elimination {
    options: EliminationOptions,
}

/// A cost table over a sorted scope of variables (row-major, last variable
/// fastest).
#[derive(Debug, Clone)]
struct CostTable {
    scope: Vec<usize>,
    cards: Vec<usize>,
    costs: Vec<f64>,
}

impl CostTable {
    fn index_of(&self, assignment: &[usize]) -> usize {
        let mut idx = 0;
        for (v, c) in assignment.iter().zip(&self.cards) {
            idx = idx * c + v;
        }
        idx
    }
}

/// Record kept per eliminated variable for back-substitution.
struct EliminationRecord {
    var: usize,
    scope: Vec<usize>,
    cards: Vec<usize>,
    argmin: Vec<u32>,
}

impl Elimination {
    /// Creates an eliminator with the given options.
    pub fn new(options: EliminationOptions) -> Elimination {
        Elimination { options }
    }

    /// Solves `model` to global optimality, with the error surface exposed.
    ///
    /// # Errors
    ///
    /// * [`Error::TreewidthExceeded`] — an intermediate table would exceed
    ///   the configured cap; the model is untouched and the caller can fall
    ///   back to an approximate solver.
    /// * [`Error::Interrupted`] — the control's deadline passed or the run
    ///   was cancelled mid-elimination (checked once per eliminated
    ///   variable). Elimination has no meaningful partial labeling, so this
    ///   surfaces as an error rather than a degraded solution; the
    ///   [`MapSolver`] impl and [`crate::solver::ExactFallback`] translate
    ///   it into a best-effort fallback.
    pub fn solve_exact(&self, model: &MrfModel, ctl: &SolveControl) -> Result<Solution> {
        let n = model.var_count();
        if model.live_var_count() == 0 {
            let labels = vec![0usize; n];
            let energy = model.energy(&labels);
            return Ok(Solution::new(labels, energy, Some(energy), 0, true));
        }
        // Initial tables: unaries and pairwise potentials (live slots only;
        // tombstones carry no cost and keep label 0 in the output).
        let mut tables: Vec<CostTable> = Vec::with_capacity(n + model.edge_count());
        for v in model.live_vars() {
            tables.push(CostTable {
                scope: vec![v.0],
                cards: vec![model.labels(v)],
                costs: model.unary(v).to_vec(),
            });
        }
        for (_, e) in model.live_edges() {
            let (a, b) = (e.a().0, e.b().0);
            let (la, lb) = (model.labels(e.a()), model.labels(e.b()));
            let mut costs = Vec::with_capacity(la * lb);
            // Scope must be sorted: (a, b) with a < b holds by construction.
            for xa in 0..la {
                for xb in 0..lb {
                    costs.push(model.edge_cost(e, xa, xb));
                }
            }
            tables.push(CostTable {
                scope: vec![a, b],
                cards: vec![la, lb],
                costs,
            });
        }

        let mut records: Vec<EliminationRecord> = Vec::with_capacity(n);
        let mut remaining: BTreeSet<usize> = model.live_vars().map(|v| v.0).collect();
        let mut constant = 0.0f64;

        while let Some(var) = pick_min_degree(&tables, &remaining) {
            if ctl.should_stop() {
                return Err(Error::Interrupted);
            }
            remaining.remove(&var);
            let (mentioning, rest): (Vec<CostTable>, Vec<CostTable>) =
                tables.into_iter().partition(|t| t.scope.contains(&var));
            tables = rest;
            // Combined scope minus the eliminated variable, sorted.
            let mut scope: Vec<usize> = mentioning
                .iter()
                .flat_map(|t| t.scope.iter().copied())
                .filter(|&v| v != var)
                .collect();
            scope.sort_unstable();
            scope.dedup();
            let cards: Vec<usize> = scope.iter().map(|&v| model.labels(VarId(v))).collect();
            let out_size: usize = cards.iter().product();
            let var_card = model.labels(VarId(var));
            if out_size.saturating_mul(var_card) > self.options.max_table_entries {
                return Err(Error::TreewidthExceeded {
                    entries: out_size.saturating_mul(var_card),
                    limit: self.options.max_table_entries,
                });
            }
            let mut costs = vec![f64::INFINITY; out_size];
            let mut argmin = vec![0u32; out_size];
            // Enumerate the reduced scope; for each configuration minimize
            // over the eliminated variable.
            let mut assignment = vec![0usize; scope.len()];
            let mut sub_assignments: Vec<Vec<usize>> = mentioning
                .iter()
                .map(|t| vec![0usize; t.scope.len()])
                .collect();
            // Positions of each table's scope vars within (scope + var).
            for out_idx in 0..out_size {
                // Decode out_idx into `assignment` (row-major).
                let mut rem = out_idx;
                for pos in (0..scope.len()).rev() {
                    assignment[pos] = rem % cards[pos];
                    rem /= cards[pos];
                }
                let mut best = f64::INFINITY;
                let mut best_label = 0u32;
                for xv in 0..var_card {
                    let mut total = 0.0;
                    for (t, sub) in mentioning.iter().zip(&mut sub_assignments) {
                        for (pos, &sv) in t.scope.iter().enumerate() {
                            sub[pos] = if sv == var {
                                xv
                            } else {
                                assignment[scope.binary_search(&sv).expect("scoped var")]
                            };
                        }
                        total += t.costs[t.index_of(sub)];
                    }
                    if total < best {
                        best = total;
                        best_label = xv as u32;
                    }
                }
                costs[out_idx] = best;
                argmin[out_idx] = best_label;
            }
            records.push(EliminationRecord {
                var,
                scope: scope.clone(),
                cards: cards.clone(),
                argmin,
            });
            if scope.is_empty() {
                constant += costs[0];
            } else {
                tables.push(CostTable {
                    scope,
                    cards,
                    costs,
                });
            }
        }
        // Any leftover empty-scope tables contribute constants.
        for t in &tables {
            debug_assert!(t.scope.is_empty());
            constant += t.costs.first().copied().unwrap_or(0.0);
        }

        // Back-substitution in reverse elimination order.
        let mut labels = vec![0usize; n];
        for rec in records.iter().rev() {
            let mut idx = 0usize;
            for (&sv, &c) in rec.scope.iter().zip(&rec.cards) {
                idx = idx * c + labels[sv];
            }
            labels[rec.var] = rec.argmin[idx] as usize;
        }
        let energy = model.energy(&labels);
        debug_assert!(
            (energy - constant).abs() < 1e-6 * energy.abs().max(1.0),
            "back-substituted energy {energy} disagrees with eliminated optimum {constant}"
        );
        ctl.report(n, energy, Some(constant));
        Ok(Solution::new(labels, energy, Some(constant), 1, true))
    }
}

impl MapSolver for Elimination {
    fn name(&self) -> String {
        "elimination".to_string()
    }

    /// Exact elimination with a silent best-effort degradation: when the
    /// treewidth cap or the budget is hit, a bounded greedy descent from the
    /// unary argmin is returned (`converged() == false`, no bound). Use
    /// [`Elimination::solve_exact`] for the error surface, or
    /// [`crate::solver::ExactFallback`] to both fall back *and* record why.
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        match self.solve_exact(model, ctl) {
            Ok(solution) => solution,
            Err(_) => best_effort(model, ctl),
        }
    }
}

/// Greedy min-degree: the remaining variable co-occurring with the fewest
/// other remaining variables.
fn pick_min_degree(tables: &[CostTable], remaining: &BTreeSet<usize>) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for &v in remaining {
        let mut neighbors: BTreeSet<usize> = BTreeSet::new();
        for t in tables {
            if t.scope.contains(&v) {
                neighbors.extend(t.scope.iter().copied().filter(|&w| w != v));
            }
        }
        let d = neighbors.len();
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((v, d)),
        }
    }
    best.map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    fn solve(model: &MrfModel) -> Solution {
        Elimination::default()
            .solve_exact(model, &ctl())
            .expect("within cap")
    }

    #[test]
    fn empty_and_single() {
        let s = solve(&MrfBuilder::new().build());
        assert_eq!(s.energy(), 0.0);
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        b.set_unary(x, vec![2.0, 1.0, 3.0]).unwrap();
        let s = solve(&b.build());
        assert_eq!(s.labels(), &[1]);
        assert_eq!(s.energy(), 1.0);
        assert!(s.is_certified_optimal(1e-12));
    }

    #[test]
    fn matches_exhaustive_on_random_loopy_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..12 {
            let mut b = MrfBuilder::new();
            let n = 8;
            let vars: Vec<_> = (0..n).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect())
                    .unwrap();
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.4) {
                        b.add_edge_dense(
                            vars[i],
                            vars[j],
                            (0..9).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                        )
                        .unwrap();
                    }
                }
            }
            let m = b.build();
            let exact = solve(&m);
            let brute = Exhaustive::new().solve(&m, &ctl());
            assert!(
                (exact.energy() - brute.energy()).abs() < 1e-9,
                "trial {trial}: elimination {} vs brute {}",
                exact.energy(),
                brute.energy()
            );
        }
    }

    #[test]
    fn solves_disconnected_components() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        let z = b.add_variable(2);
        b.set_unary(x, vec![1.0, 0.0]).unwrap();
        b.set_unary(z, vec![0.0, 1.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let m = b.build();
        let s = solve(&m);
        assert_eq!(s.labels(), &[1, 1, 0]);
        assert_eq!(s.energy(), 0.0);
    }

    #[test]
    fn handles_parallel_edges() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.add_edge_dense(x, y, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        b.add_edge_dense(x, y, vec![0.0, 0.5, 0.5, 0.0]).unwrap();
        let m = b.build();
        let s = solve(&m);
        // Disagreeing: 0 + 0.5; agreeing: 1 + 0 -> disagree wins at 0.5.
        assert_eq!(s.energy(), 0.5);
    }

    #[test]
    fn treewidth_cap_is_enforced() {
        // A clique over 12 four-label variables exceeds a tiny cap.
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..12).map(|_| b.add_variable(4)).collect();
        for i in 0..12 {
            for j in (i + 1)..12 {
                b.add_edge_dense(vars[i], vars[j], vec![0.0; 16]).unwrap();
            }
        }
        let m = b.build();
        let err = Elimination::new(EliminationOptions {
            max_table_entries: 1000,
        })
        .solve_exact(&m, &ctl())
        .unwrap_err();
        assert!(matches!(err, Error::TreewidthExceeded { .. }));
    }

    #[test]
    fn certifies_optimality() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = MrfBuilder::new();
        let vars: Vec<_> = (0..10).map(|_| b.add_variable(2)).collect();
        for w in vars.windows(2) {
            b.add_edge_dense(
                w[0],
                w[1],
                (0..4).map(|_| rng.gen_range(0.0..1.0)).collect(),
            )
            .unwrap();
        }
        let m = b.build();
        let s = solve(&m);
        assert!(s.is_certified_optimal(1e-9));
    }
}
