//! Iterated local search (ILS) refinement.
//!
//! Message passing solves the *dual* tightly, but on frustrated energies
//! (e.g. a clique that cannot be properly "colored" by the available
//! products) the decoded labeling can sit in a local optimum that no
//! single-variable move escapes. ILS is the classic remedy: repeatedly
//! *kick* the incumbent (re-randomize a small fraction of variables),
//! descend with ICM, and keep the result only if it improves. Deterministic
//! per seed.

use crate::icm::{Icm, IcmOptions};
use crate::model::{MrfModel, VarId};
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Options controlling an ILS refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct IlsOptions {
    /// Number of kick-and-descend rounds.
    pub kicks: usize,
    /// Fraction of variables re-randomized per kick (at least one).
    pub kick_fraction: f64,
    /// ICM sweeps per descent.
    pub sweeps: usize,
    /// Accept equal-energy results (within `1e-12`), letting the search walk
    /// plateaus of co-optimal labelings instead of stopping at the first one
    /// found. Which co-optimum the walk ends on is seed-controlled.
    pub plateau: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IlsOptions {
    fn default() -> IlsOptions {
        IlsOptions {
            kicks: 100,
            kick_fraction: 0.1,
            sweeps: 20,
            plateau: true,
            seed: 0x115,
        }
    }
}

/// A tiny deterministic RNG (SplitMix64), keeping this crate free of
/// runtime dependencies; statistical quality is ample for kick selection.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[0, n)`; modulo bias is irrelevant here.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The ILS refiner.
#[derive(Debug, Clone, Default)]
pub struct Ils {
    options: IlsOptions,
}

impl Ils {
    /// Creates a refiner with the given options.
    pub fn new(options: IlsOptions) -> Ils {
        Ils { options }
    }
}

impl MapSolver for Ils {
    fn name(&self) -> String {
        "ils".to_string()
    }

    /// Runs ILS from the unary-argmin labeling.
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        self.refine(model, model.unary_argmin(), ctl)
    }

    /// Refines `start`, returning a labeling with energy ≤ the start's.
    /// Honors the control's deadline/cancellation at kick granularity; a
    /// stopped run reports `converged() == false`.
    ///
    /// # Panics
    ///
    /// Panics if `start` has the wrong arity or out-of-range labels.
    fn refine(&self, model: &MrfModel, start: Vec<usize>, ctl: &SolveControl) -> Solution {
        assert_eq!(start.len(), model.var_count(), "labeling arity mismatch");
        let live: Vec<VarId> = model.live_vars().collect();
        if live.is_empty() {
            let energy = model.energy(&start);
            return Solution::new(start, energy, None, 0, true);
        }
        let icm = Icm::new(IcmOptions {
            max_sweeps: self.options.sweeps,
            ..IcmOptions::default()
        });
        let mut rng = SplitMix64::new(self.options.seed);
        let start_energy = model.energy(&start);
        let descended = icm.solve_from(model, start.clone(), ctl);
        // ICM cannot worsen its start (and under an expired budget returns
        // it unchanged); the guard keeps the anytime contract robust against
        // floating-point re-summation drift.
        let (mut best, mut best_energy) = if descended.energy() <= start_energy {
            (descended.labels().to_vec(), descended.energy())
        } else {
            (start, start_energy)
        };
        let n = live.len();
        let kick_size = ((n as f64 * self.options.kick_fraction).ceil() as usize).clamp(1, n);
        let mut kicks_run = 0usize;
        let mut stopped = false;
        for _ in 0..self.options.kicks {
            if ctl.should_stop() {
                stopped = true;
                break;
            }
            kicks_run += 1;
            let mut candidate = best.clone();
            for _ in 0..kick_size {
                let v = live[rng.below(n)];
                let labels = model.labels(v);
                candidate[v.0] = rng.below(labels);
            }
            let descended = icm.solve_from(model, candidate, ctl);
            let accept = if self.options.plateau {
                descended.energy() <= best_energy + 1e-12
            } else {
                descended.energy() < best_energy
            };
            if accept {
                best_energy = best_energy.min(descended.energy());
                best = descended.labels().to_vec();
            }
            ctl.report(kicks_run, best_energy, None);
        }
        Solution::new(best, best_energy, None, kicks_run, !stopped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::model::MrfBuilder;

    /// The frustrated instance ICM alone cannot solve (see icm.rs tests).
    fn frustrated() -> MrfModel {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![0.0, 0.4]).unwrap();
        b.set_unary(y, vec![0.0, 0.4]).unwrap();
        b.add_edge_dense(x, y, vec![1.0, 1.1, 1.1, 0.0]).unwrap();
        b.build()
    }

    #[test]
    fn escapes_the_icm_trap() {
        let m = frustrated();
        let opt = Exhaustive::new().solve(&m, &SolveControl::new());
        let refined = Ils::default().refine(&m, vec![0, 0], &SolveControl::new());
        assert_eq!(refined.energy(), opt.energy());
        assert_eq!(refined.labels(), &[1, 1]);
    }

    #[test]
    fn never_worse_than_start() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..10).map(|_| b.add_variable(3)).collect();
            for &v in &vars {
                b.set_unary(v, (0..3).map(|_| rng.gen_range(0.0..2.0)).collect())
                    .unwrap();
            }
            for i in 0..10 {
                b.add_edge_dense(
                    vars[i],
                    vars[(i + 1) % 10],
                    (0..9).map(|_| rng.gen_range(0.0..2.0)).collect(),
                )
                .unwrap();
            }
            let m = b.build();
            let start: Vec<usize> = (0..10).map(|_| rng.gen_range(0..3)).collect();
            let start_energy = m.energy(&start);
            let refined = Ils::default().refine(&m, start, &SolveControl::new());
            assert!(refined.energy() <= start_energy + 1e-12);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = frustrated();
        let a = Ils::default().refine(&m, vec![0, 0], &SolveControl::new());
        let b = Ils::default().refine(&m, vec![0, 0], &SolveControl::new());
        assert_eq!(a, b);
    }

    #[test]
    fn finds_global_optimum_on_small_frustrated_cliques() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            // K4 with 3 labels and Potts-like costs: the pigeonhole forces
            // one agreeing edge; ILS must find an optimal placement.
            let mut b = MrfBuilder::new();
            let vars: Vec<_> = (0..4).map(|_| b.add_variable(3)).collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let mut costs = vec![0.0; 9];
                    for l in 0..3 {
                        costs[l * 3 + l] = rng.gen_range(0.5..1.5);
                    }
                    b.add_edge_dense(vars[i], vars[j], costs).unwrap();
                }
            }
            let m = b.build();
            let opt = Exhaustive::new().solve(&m, &SolveControl::new());
            // Two-variable kicks: escaping a frustrated K4 coloring needs
            // coordinated moves a single re-randomized variable cannot make.
            let ils = Ils::new(IlsOptions {
                kicks: 200,
                kick_fraction: 0.5,
                ..IlsOptions::default()
            });
            let refined = ils.refine(&m, vec![0; 4], &SolveControl::new());
            assert!(
                (refined.energy() - opt.energy()).abs() < 1e-9,
                "ils {} vs optimum {}",
                refined.energy(),
                opt.energy()
            );
        }
    }

    #[test]
    fn empty_model() {
        let m = MrfBuilder::new().build();
        let s = Ils::default().refine(&m, vec![], &SolveControl::new());
        assert_eq!(s.energy(), 0.0);
    }
}
