//! Brute-force MAP solver — the test oracle.
//!
//! Enumerates the full labeling space; only usable for tiny models, which is
//! exactly its job: certifying that the message-passing solvers find true
//! optima on instances small enough to check.

use crate::model::MrfModel;
use crate::solution::Solution;
use crate::solver::{MapSolver, SolveControl};

/// Default cap on the number of labelings [`Exhaustive`] will enumerate.
pub const DEFAULT_LIMIT: f64 = 2e7;

/// The brute-force solver.
#[derive(Debug, Clone)]
pub struct Exhaustive {
    limit: f64,
}

impl Default for Exhaustive {
    fn default() -> Exhaustive {
        Exhaustive {
            limit: DEFAULT_LIMIT,
        }
    }
}

impl Exhaustive {
    /// Creates a solver with the default search-space cap.
    pub fn new() -> Exhaustive {
        Exhaustive::default()
    }

    /// Creates a solver willing to enumerate up to `limit` labelings.
    pub fn with_limit(limit: f64) -> Exhaustive {
        Exhaustive { limit }
    }
}

/// Deadline/cancellation is polled every this many evaluated labelings.
const CHECK_EVERY: u64 = 4096;

impl MapSolver for Exhaustive {
    fn name(&self) -> String {
        "exhaustive".to_string()
    }

    /// Finds the global optimum by enumeration. Honors the control's
    /// deadline/cancellation every `CHECK_EVERY` labelings, returning the
    /// best labeling seen so far (uncertified, `converged() == false`) when
    /// stopped early.
    ///
    /// # Panics
    ///
    /// Panics if the labeling space exceeds the configured limit — this
    /// solver is the test oracle; do not put it in portfolios over large
    /// instances.
    fn solve(&self, model: &MrfModel, ctl: &SolveControl) -> Solution {
        let space = model.search_space();
        assert!(
            space <= self.limit,
            "search space {space:.3e} exceeds exhaustive limit {:.3e}",
            self.limit
        );
        let n = model.var_count();
        if n == 0 {
            return Solution::new(Vec::new(), 0.0, Some(0.0), 0, true);
        }
        let mut current = vec![0usize; n];
        let mut best = current.clone();
        let mut best_energy = model.energy(&current);
        let mut evaluated = 1u64;
        let mut stopped = false;
        'outer: loop {
            if evaluated.is_multiple_of(CHECK_EVERY) {
                if ctl.should_stop() {
                    stopped = true;
                    break 'outer;
                }
                ctl.report(evaluated as usize, best_energy, None);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                current[i] += 1;
                if current[i] < model.labels(crate::VarId(i)) {
                    break;
                }
                current[i] = 0;
                i += 1;
                if i == n {
                    break 'outer;
                }
            }
            let e = model.energy(&current);
            evaluated += 1;
            if e < best_energy {
                best_energy = e;
                best = current.clone();
            }
        }
        let bound = (!stopped).then_some(best_energy);
        Solution::new(best, best_energy, bound, 1, !stopped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MrfBuilder;

    fn ctl() -> SolveControl {
        SolveControl::new()
    }

    #[test]
    fn finds_global_optimum() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(2);
        let y = b.add_variable(2);
        b.set_unary(x, vec![0.0, 0.2]).unwrap();
        b.set_unary(y, vec![0.0, 0.2]).unwrap();
        // Strong disagreement preference overrides the unary pull to (0, 0).
        b.add_edge_dense(x, y, vec![5.0, 0.0, 0.0, 5.0]).unwrap();
        let s = Exhaustive::new().solve(&b.build(), &ctl());
        assert_eq!(s.energy(), 0.2);
        assert_ne!(s.labels()[0], s.labels()[1]);
        assert_eq!(s.lower_bound(), Some(0.2));
    }

    #[test]
    fn empty_model() {
        let s = Exhaustive::new().solve(&MrfBuilder::new().build(), &ctl());
        assert_eq!(s.energy(), 0.0);
    }

    #[test]
    fn enumerates_heterogeneous_domains() {
        let mut b = MrfBuilder::new();
        let x = b.add_variable(3);
        let y = b.add_variable(4);
        b.set_unary(x, vec![2.0, 1.0, 3.0]).unwrap();
        b.set_unary(y, vec![5.0, 4.0, 0.5, 6.0]).unwrap();
        let s = Exhaustive::new().solve(&b.build(), &ctl());
        assert_eq!(s.labels(), &[1, 2]);
        assert_eq!(s.energy(), 1.5);
    }

    #[test]
    #[should_panic(expected = "exceeds exhaustive limit")]
    fn refuses_huge_spaces() {
        let mut b = MrfBuilder::new();
        for _ in 0..40 {
            b.add_variable(4);
        }
        Exhaustive::new().solve(&b.build(), &ctl());
    }

    #[test]
    fn custom_limit() {
        let mut b = MrfBuilder::new();
        b.add_variable(2);
        b.add_variable(2);
        let s = Exhaustive::with_limit(4.0).solve(&b.build(), &ctl());
        assert_eq!(s.labels().len(), 2);
    }

    #[test]
    fn every_solver_agrees_on_a_tombstoned_model() {
        // Mutate a model (leaving a tombstoned slot mid-array) and check
        // that the whole solver suite lands on the same optimum as brute
        // force — tombstones must be invisible to sweeps, message passing,
        // elimination and the enumeration odometer alike.
        use crate::model::MrfModel;

        let mut m = MrfModel::new();
        let vars: Vec<_> = (0..5).map(|_| m.add_var(2).unwrap()).collect();
        for w in vars.windows(2) {
            m.add_pairwise_dense(w[0], w[1], vec![1.0, 0.0, 0.0, 1.0])
                .unwrap();
        }
        m.set_unary(vars[0], vec![0.0, 5.0]).unwrap();
        m.remove_var(vars[2]).unwrap();
        // Re-bridge the gap the removal left: v1 — v3 prefer disagreement
        // too, so the chain stays solvable by greedy descent.
        m.add_pairwise_dense(vars[1], vars[3], vec![1.0, 0.0, 0.0, 1.0])
            .unwrap();
        assert_eq!(m.live_var_count(), 4);

        let opt = Exhaustive::new().solve(&m, &ctl());
        // Alternating labels along the chain v0—v1—v3—v4 cost nothing.
        assert_eq!(opt.energy(), 0.0);
        let solvers: Vec<Box<dyn crate::solver::MapSolver>> = vec![
            Box::new(crate::trws::Trws::default()),
            Box::new(crate::bp::Bp::default()),
            Box::new(crate::icm::Icm::default()),
            Box::new(crate::ils::Ils::default()),
            Box::new(crate::elimination::Elimination::default()),
            Box::new(crate::portfolio::SolverPortfolio::standard()),
        ];
        for solver in &solvers {
            let s = solver.solve(&m, &ctl());
            assert_eq!(s.labels().len(), m.var_count(), "{}", solver.name());
            assert_eq!(s.energy(), opt.energy(), "{} missed", solver.name());
        }
    }
}
