//! # ics-diversity
//!
//! Optimal network diversification for ICS resilience — a faithful, fully
//! self-contained reproduction of the DSN 2020 paper *"Scalable Approach to
//! Enhancing ICS Resilience by Network Diversity"* (Li, Feng, Hankin).
//!
//! Given a network of hosts, the services each host must run, the candidate
//! products for each service, and the pairwise **vulnerability similarity**
//! of products (Jaccard overlap of their CVE sets, crate `nvd`), this
//! crate computes the product assignment that minimizes a zero-day worm's
//! ability to propagate — optionally subject to real-world configuration
//! constraints (legacy hosts, mandated products, (un)desirable product
//! combinations) — and evaluates the result with the paper's two
//! instruments: the BN-based diversity metric `dbn` (crate [`bayesnet`])
//! and simulated mean-time-to-compromise (crate [`sim`]).
//!
//! * [`energy`] — translates a network + constraints into the discrete
//!   pairwise MRF of paper Eq. 1 (one variable per (host, service) slot).
//! * [`cache`] — the incremental form of that translation:
//!   [`cache::EnergyCache`] retains filtered domains, interned candidate
//!   sets and shared potential matrices across network revisions, rebuilding
//!   only what a [`netmodel::delta::NetworkDelta`] touched.
//! * [`engine`] — [`DiversityEngine`], the long-lived serving facade:
//!   `apply(delta)` mutates the network, refreshes the cached model, and
//!   warm-starts the re-solve from the previous MAP assignment, returning a
//!   [`ReassignmentReport`] (changed hosts, objective before/after, solver
//!   telemetry).
//! * [`shard`] — [`ShardedEngine`], the zone-sharded form of the engine:
//!   one `DiversityEngine` per zone, delta bursts routed to their owning
//!   shard(s), cross-shard links reconciled by a monotone
//!   boundary-coordination loop (freeze neighbors' boundary labels, fold
//!   them into unaries, solve locally in parallel, splice back only on
//!   improvement).
//! * [`serve`] — the concurrent serving front-end: [`ServingEngine`] puts
//!   either engine behind a single writer thread and epoch-versioned
//!   immutable [`snapshot::Snapshot`]s. Write bursts enter a bounded queue
//!   with explicit backpressure ([`serve::Enqueue`]) and coalesce into one
//!   `apply_batch`; readers clone the current snapshot lock-free and
//!   detect staleness by revision instead of blocking on absorption.
//! * [`churn`] — the dynamic-churn scenario: replay a random delta stream
//!   and measure MTTC before/after each re-optimization.
//! * [`journal`] — durability: a write-ahead delta journal with periodic
//!   snapshots and log compaction ([`DiversityEngine::with_journal`]), and
//!   [`recover`] — last snapshot + checksummed journal-tail replay, with
//!   corrupt or torn trailing records truncated at the last valid one.
//! * [`optimizer`] — the solver facade, built on the open
//!   [`mrf::MapSolver`] trait: TRW-S (default), loopy BP, ICM, ILS, exact
//!   elimination with a *recorded* fallback, brute force, parallel solver
//!   portfolios, or any user-supplied `MapSolver`. Runs accept wall-clock
//!   budgets, cancellation flags and progress callbacks
//!   ([`mrf::SolveControl`]), chain refinement stages, and report
//!   telemetry (solver name, wall time, fallback cause).
//! * [`evaluate`] — `dbn` and MTTC reports for any assignment.
//! * [`metrics`] — the complementary diversity metrics of the framework the
//!   paper adapts: effective richness and least attacking effort.
//! * [`scalability`] — the timing harness behind the paper's Tables VII–IX.
//! * [`report`] — plain-text tables for the reproduction binaries.
//!
//! # Quick start
//!
//! ```
//! use ics_diversity::optimizer::DiversityOptimizer;
//! use netmodel::casestudy::CaseStudy;
//!
//! # fn main() -> Result<(), ics_diversity::Error> {
//! let cs = CaseStudy::build();
//! let optimizer = DiversityOptimizer::new();
//! // The unconstrained optimal assignment α̂ of paper Fig. 4(a):
//! let optimal = optimizer.optimize(&cs.network, &cs.similarity)?;
//! // Constrained optimum α̂C1 (host constraints of §VII-B):
//! let constrained =
//!     optimizer.optimize_constrained(&cs.network, &cs.similarity, &cs.constraints_c1())?;
//! assert!(constrained.assignment().total_edge_similarity(&cs.network, &cs.similarity)
//!     >= optimal.assignment().total_edge_similarity(&cs.network, &cs.similarity) - 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! # Budgeted portfolio solves
//!
//! ```
//! use std::time::Duration;
//! use ics_diversity::optimizer::{DiversityOptimizer, SolverKind};
//! use netmodel::casestudy::CaseStudy;
//!
//! # fn main() -> Result<(), ics_diversity::Error> {
//! let cs = CaseStudy::build();
//! // Race TRW-S against exact elimination under a 250 ms budget; the
//! // lowest-energy member wins, and telemetry says who and how long.
//! let solved = DiversityOptimizer::new()
//!     .with_solver(SolverKind::Portfolio(vec![
//!         SolverKind::Trws(Default::default()),
//!         SolverKind::Exact(Default::default()),
//!     ]))
//!     .with_time_budget(Duration::from_millis(250))
//!     .optimize(&cs.network, &cs.similarity)?;
//! assert!(solved.solver_name().starts_with("portfolio["));
//! assert!(solved.assignment().validate(&cs.network).is_ok());
//! # Ok(())
//! # }
//! ```
//!
//! # Incremental serving: absorb a delta
//!
//! ```
//! use ics_diversity::engine::DiversityEngine;
//! use netmodel::delta::NetworkDelta;
//! use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
//!
//! # fn main() -> Result<(), ics_diversity::Error> {
//! let g = generate(
//!     &RandomNetworkConfig {
//!         hosts: 12,
//!         mean_degree: 3,
//!         services: 2,
//!         products_per_service: 3,
//!         vendors_per_service: 2,
//!         topology: TopologyKind::Random,
//!     },
//!     7,
//! );
//! let mut engine = DiversityEngine::new(g.network, g.catalog, g.similarity);
//! engine.solve()?;
//!
//! // A product mandate arrives: one delta, one incremental step — the
//! // cache refilters only the touched host and the re-solve warm-starts
//! // from the previous MAP assignment.
//! let os = engine.catalog().service_by_name("service0").unwrap();
//! let host = netmodel::HostId(3);
//! let product = engine.network().host(host).unwrap().candidates_for(os).unwrap()[0];
//! let report = engine.apply(&NetworkDelta::fix_slot(host, os, product))?;
//! assert!(report.warm_started);
//! assert_eq!(report.rebuild.hosts_refiltered, 1);
//! assert!(report.improvement().unwrap() >= -1e-9);
//! assert_eq!(engine.assignment().unwrap().products_at(host)[0], product);
//! # Ok(())
//! # }
//! ```
//!
//! # Concurrent serving: snapshots under write bursts
//!
//! ```
//! use ics_diversity::serve::ServingEngine;
//! use ics_diversity::DiversityEngine;
//! use netmodel::delta::NetworkDelta;
//! use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};
//! use netmodel::HostId;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), ics_diversity::Error> {
//! let g = generate(
//!     &RandomNetworkConfig {
//!         hosts: 10,
//!         mean_degree: 2,
//!         services: 1,
//!         products_per_service: 3,
//!         vendors_per_service: 2,
//!         topology: TopologyKind::Random,
//!     },
//!     11,
//! );
//! let serving = ServingEngine::start(DiversityEngine::new(g.network, g.catalog, g.similarity))?;
//! let mut reader = serving.reader(); // one per query thread; reads never block
//! serving.submit(vec![NetworkDelta::remove_host(HostId(9))]);
//! assert!(serving.wait_for_revision(1, Duration::from_secs(30)));
//! assert!(reader.current().products_at(HostId(9)).is_empty());
//! let (_engine, report) = serving.shutdown();
//! assert_eq!(report.last_revision, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Sharded serving: one engine per zone
//!
//! ```
//! use ics_diversity::shard::ShardedEngine;
//! use netmodel::delta::NetworkDelta;
//! use netmodel::topology::{generate_zoned, TopologyKind, ZonedNetworkConfig};
//!
//! # fn main() -> Result<(), ics_diversity::Error> {
//! let g = generate_zoned(
//!     &ZonedNetworkConfig {
//!         zones: 2,
//!         hosts_per_zone: 8,
//!         gateway_links: 1,
//!         mean_degree: 3,
//!         services: 2,
//!         products_per_service: 3,
//!         vendors_per_service: 2,
//!         topology: TopologyKind::Random,
//!     },
//!     3,
//! );
//! let mut engine = ShardedEngine::new(g.network, g.catalog, g.similarity);
//! let cold = engine.solve()?;
//! assert_eq!(engine.shard_count(), 2);
//!
//! // A burst confined to zone 0 pays only shard 0's rebuild + re-solve.
//! let os = engine.catalog().service_by_name("service0").unwrap();
//! let host = netmodel::HostId(2);
//! let product = engine.network().host(host).unwrap().candidates_for(os).unwrap()[0];
//! let report = engine.apply(&NetworkDelta::fix_slot(host, os, product))?;
//! assert_eq!(report.shards_touched, vec![0]);
//! assert!(report.shard_reports[1].is_none(), "zone 1 did no work");
//! // Re-optimizing never loses to carrying the old assignment forward.
//! assert!(report.improvement().unwrap() >= -1e-9);
//! # let _ = cold;
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod churn;
pub mod energy;
pub mod engine;
pub mod evaluate;
pub mod journal;
pub mod metrics;
pub mod optimizer;
pub mod report;
pub mod scalability;
pub mod serve;
pub mod shard;
pub mod snapshot;

mod error;

pub use engine::{DiversityEngine, ReassignmentReport};
pub use error::Error;
pub use journal::{recover, recover_with, Journal, Recovered, RecoveryReport};
pub use optimizer::{DiversityOptimizer, OptimizedAssignment, SolverKind};
pub use serve::{DrainReport, Enqueue, ServingConfig, ServingEngine, ServingStats, WriterCore};
pub use shard::{ShardReport, ShardedEngine};
pub use snapshot::{Snapshot, SnapshotReader};

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;
