//! The scalability harness (paper §VIII, Tables VII–IX).
//!
//! Generates random networks of configurable scale and times the
//! optimization alone (problem generation is excluded, as in the paper).
//! The bench binaries sweep these points to regenerate the three tables.

use std::time::Instant;

use netmodel::topology::{generate, RandomNetworkConfig};

use crate::optimizer::DiversityOptimizer;
use crate::Result;

/// One timed optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Hosts in the generated network.
    pub hosts: usize,
    /// Target mean degree.
    pub degree: usize,
    /// Services per host.
    pub services: usize,
    /// Actual undirected host links.
    pub links: usize,
    /// MRF variables the instance produced.
    pub variables: usize,
    /// MRF edges the instance produced.
    pub edges: usize,
    /// Optimization wall-clock seconds (excludes generation).
    pub seconds: f64,
    /// Final objective value.
    pub objective: f64,
    /// Certified lower bound, if the solver provides one.
    pub lower_bound: Option<f64>,
    /// Whether the solver converged before its iteration cap.
    pub converged: bool,
    /// Name of the solver that produced the point.
    pub solver: String,
    /// Cause of the exact-elimination fallback, when one fired.
    pub fallback: Option<String>,
}

/// Generates an instance from `config` (seeded) and times `optimizer` on it.
///
/// # Errors
///
/// Propagates optimizer errors (none are expected for generated instances).
pub fn time_optimization(
    optimizer: &DiversityOptimizer,
    config: &RandomNetworkConfig,
    seed: u64,
) -> Result<SweepPoint> {
    let g = generate(config, seed);
    let start = Instant::now();
    let solved = optimizer.optimize(&g.network, &g.similarity)?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(SweepPoint {
        hosts: config.hosts,
        degree: config.mean_degree,
        services: config.services,
        links: g.network.link_count(),
        variables: solved.variables(),
        edges: solved.edges(),
        seconds,
        objective: solved.objective(),
        lower_bound: solved.lower_bound(),
        converged: solved.converged(),
        solver: solved.solver_name().to_string(),
        fallback: solved.exact_fallback().map(str::to_string),
    })
}

/// Sweeps one axis: applies `vary` to a base configuration for each value
/// and times each point.
///
/// # Errors
///
/// Propagates the first optimizer error.
pub fn sweep<T: Copy>(
    optimizer: &DiversityOptimizer,
    base: &RandomNetworkConfig,
    values: &[T],
    seed: u64,
    vary: impl Fn(&mut RandomNetworkConfig, T),
) -> Result<Vec<SweepPoint>> {
    values
        .iter()
        .map(|&v| {
            let mut config = base.clone();
            vary(&mut config, v);
            time_optimization(optimizer, &config, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SolverKind;
    use mrf::trws::TrwsOptions;

    fn fast_optimizer() -> DiversityOptimizer {
        DiversityOptimizer::new().with_solver(SolverKind::Trws(TrwsOptions {
            max_iterations: 10,
            ..TrwsOptions::default()
        }))
    }

    fn small_base() -> RandomNetworkConfig {
        RandomNetworkConfig {
            hosts: 50,
            mean_degree: 6,
            services: 3,
            products_per_service: 3,
            ..RandomNetworkConfig::default()
        }
    }

    #[test]
    fn timing_point_has_consistent_shape() {
        let p = time_optimization(&fast_optimizer(), &small_base(), 1).unwrap();
        assert_eq!(p.hosts, 50);
        assert_eq!(p.services, 3);
        assert!(p.seconds > 0.0);
        assert!(p.variables > 0);
        // Every link carries `services` MRF edges (full service overlap).
        assert_eq!(p.edges, p.links * p.services);
        assert!(p.lower_bound.unwrap() <= p.objective + 1e-9);
        assert_eq!(p.solver, "trws");
        assert!(p.fallback.is_none());
    }

    #[test]
    fn sweep_varies_the_axis() {
        let points = sweep(
            &fast_optimizer(),
            &small_base(),
            &[20usize, 40, 60],
            7,
            |cfg, hosts| cfg.hosts = hosts,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].hosts, 20);
        assert_eq!(points[2].hosts, 60);
        // More hosts, more work (variables grow linearly).
        assert!(points[2].variables > points[0].variables);
    }

    #[test]
    fn time_grows_with_hosts() {
        // Qualitative shape check (generous: only requires the 4x larger
        // instance not to be faster than half the small one's time).
        let opt = fast_optimizer();
        let small = time_optimization(&opt, &small_base(), 3).unwrap();
        let mut big_cfg = small_base();
        big_cfg.hosts = 200;
        let big = time_optimization(&opt, &big_cfg, 3).unwrap();
        assert!(
            big.seconds > small.seconds * 0.5,
            "big {}s vs small {}s",
            big.seconds,
            small.seconds
        );
    }
}
