use std::fmt;

use netmodel::{HostId, ServiceId};

/// Errors produced while constructing or solving diversification problems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Constraints leave a (host, service) slot with no feasible product.
    Infeasible {
        /// The host whose slot became empty.
        host: HostId,
        /// The service with no remaining candidate.
        service: ServiceId,
    },
    /// The decoded optimal assignment violates a hard constraint — the
    /// constraint system is jointly unsatisfiable (conditional constraints
    /// can conflict even when every slot has candidates).
    UnsatisfiableConstraints {
        /// Number of violated (constraint, host) pairs.
        violations: usize,
    },
    /// A sharded engine could not route a delta to an owning shard. Since
    /// shards became dynamic (zones are created on demand by `AddHost`
    /// deltas naming fresh labels, drained zones retire and revive in
    /// place), no current engine path raises this — the variant is kept for
    /// API stability and for future routing modes that do pin the zone set.
    UnknownZone {
        /// The zone label the delta carried (`None`: an unzoned host, with
        /// no unzoned shard to route it to).
        zone: Option<String>,
    },
    /// A sharded engine rejected a delta burst: one delta failed
    /// validation, attributed to the shard that owns it. The sharded
    /// analogue of [`netmodel::Error::BatchRejected`], carrying the shard
    /// id a serving queue needs to attribute rejections; the engine is
    /// untouched.
    ShardRejected {
        /// The shard whose sub-batch rejected the delta (`None`: a
        /// cross-shard link delta, owned by the master network rather than
        /// any single shard).
        shard: Option<usize>,
        /// Position of the rejected delta in the caller's burst.
        index: usize,
        /// Why that delta was rejected.
        cause: netmodel::Error,
    },
    /// An error from the network model layer.
    Model(netmodel::Error),
    /// An error from the MRF layer.
    Mrf(mrf::Error),
    /// An error from the Bayesian-network layer.
    Bayes(bayesnet::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Infeasible { host, service } => write!(
                f,
                "constraints leave no feasible product for service {service} at host {host}"
            ),
            Error::UnsatisfiableConstraints { violations } => write!(
                f,
                "constraint system unsatisfiable: optimal assignment violates {violations} constraint instance(s)"
            ),
            Error::UnknownZone { zone: Some(zone) } => {
                write!(f, "no shard owns zone {zone:?}")
            }
            Error::UnknownZone { zone: None } => {
                write!(f, "no shard owns unzoned hosts")
            }
            Error::ShardRejected {
                shard: Some(shard),
                index,
                cause,
            } => write!(f, "shard {shard} rejected burst at delta {index}: {cause}"),
            Error::ShardRejected {
                shard: None,
                index,
                cause,
            } => write!(f, "cross-shard delta {index} rejected: {cause}"),
            Error::Model(e) => write!(f, "network model error: {e}"),
            Error::Mrf(e) => write!(f, "mrf error: {e}"),
            Error::Bayes(e) => write!(f, "bayesian network error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::ShardRejected { cause, .. } => Some(cause),
            Error::Model(e) => Some(e),
            Error::Mrf(e) => Some(e),
            Error::Bayes(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netmodel::Error> for Error {
    fn from(e: netmodel::Error) -> Error {
        Error::Model(e)
    }
}

impl From<mrf::Error> for Error {
    fn from(e: mrf::Error) -> Error {
        Error::Mrf(e)
    }
}

impl From<bayesnet::Error> for Error {
    fn from(e: bayesnet::Error) -> Error {
        Error::Bayes(e)
    }
}
