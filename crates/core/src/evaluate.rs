//! Evaluation of assignments: the `dbn` diversity metric and MTTC.
//!
//! Wraps the [`bayesnet`] and [`sim`] crates into the two reports the
//! paper's case study presents (Tables V and VI).

use bayesnet::attack::{diversity_metric, AttackModelConfig, DiversityMetric};

use netmodel::assignment::Assignment;
use netmodel::catalog::ProductSimilarity;
use netmodel::network::Network;
use netmodel::HostId;

use sim::mttc::{estimate_mttc, MttcEstimate, MttcOptions};
use sim::scenario::Scenario;

use crate::Result;

/// Everything needed to evaluate assignments against one attack scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationConfig {
    /// BN attack-model parameters (Table V).
    pub attack: AttackModelConfig,
    /// Simulation batch parameters (Table VI).
    pub mttc: MttcOptions,
    /// Exploit success scale for the simulator. Deliberately independent of
    /// `attack.exploit_success`: the BN metric is calibrated for probability
    /// magnitudes, while the simulator is calibrated for tick counts in the
    /// paper's 10–60 range.
    pub exploit_success: f64,
    /// Residual zero-day rate for the simulator.
    pub sim_baseline_rate: f64,
    /// Tick budget per simulated run.
    pub max_ticks: u32,
}

impl Default for EvaluationConfig {
    fn default() -> EvaluationConfig {
        EvaluationConfig {
            attack: AttackModelConfig::default(),
            mttc: MttcOptions::default(),
            exploit_success: 0.9,
            sim_baseline_rate: 0.02,
            max_ticks: 10_000,
        }
    }
}

/// One row of a Table V-style report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityRow {
    /// Label of the assignment (`α̂`, `α̂C1`, `α_m`, ...).
    pub label: String,
    /// The metric (`P`, `P'`, `dbn`).
    pub metric: DiversityMetric,
}

/// Computes the BN diversity metric for a set of labelled assignments, all
/// against the same entry and target (paper Table V).
///
/// # Errors
///
/// Propagates [`bayesnet`] errors (unreachable target, degenerate metric).
pub fn diversity_report(
    network: &Network,
    similarity: &ProductSimilarity,
    assignments: &[(&str, &Assignment)],
    entry: HostId,
    target: HostId,
    attack: AttackModelConfig,
) -> Result<Vec<DiversityRow>> {
    assignments
        .iter()
        .map(|(label, a)| {
            let metric = diversity_metric(network, a, similarity, entry, target, attack)?;
            Ok(DiversityRow {
                label: (*label).to_owned(),
                metric,
            })
        })
        .collect()
}

/// One cell of a Table VI-style report: MTTC for an (assignment, entry) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MttcCell {
    /// Label of the assignment.
    pub label: String,
    /// The entry host.
    pub entry: HostId,
    /// The batch estimate.
    pub estimate: MttcEstimate,
}

/// Runs the MTTC campaign: every assignment × every entry point against one
/// target (paper Table VI).
pub fn mttc_report(
    network: &Network,
    similarity: &ProductSimilarity,
    assignments: &[(&str, &Assignment)],
    entries: &[HostId],
    target: HostId,
    config: &EvaluationConfig,
) -> Vec<MttcCell> {
    let mut out = Vec::with_capacity(assignments.len() * entries.len());
    for (label, a) in assignments {
        for &entry in entries {
            let scenario = Scenario::new(entry, target)
                .with_exploit_success(config.exploit_success)
                .with_baseline_rate(config.sim_baseline_rate)
                .with_max_ticks(config.max_ticks);
            let estimate = estimate_mttc(network, a, similarity, &scenario, &config.mttc);
            out.push(MttcCell {
                label: (*label).to_owned(),
                entry,
                estimate,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::DiversityOptimizer;
    use netmodel::casestudy::CaseStudy;
    use netmodel::strategies::{mono_assignment, random_assignment};

    fn quick_config() -> EvaluationConfig {
        EvaluationConfig {
            mttc: MttcOptions {
                runs: 60,
                threads: 4,
                ..MttcOptions::default()
            },
            max_ticks: 2_000,
            ..EvaluationConfig::default()
        }
    }

    #[test]
    fn table5_ordering_on_case_study() {
        let cs = CaseStudy::build();
        let optimizer = DiversityOptimizer::new();
        let optimal = optimizer.optimize(&cs.network, &cs.similarity).unwrap();
        let mono = mono_assignment(&cs.network);
        let random = random_assignment(&cs.network, 11);
        let rows = diversity_report(
            &cs.network,
            &cs.similarity,
            &[
                ("optimal", optimal.assignment()),
                ("random", &random),
                ("mono", &mono),
            ],
            cs.bn_entry,
            cs.target,
            AttackModelConfig::default(),
        )
        .unwrap();
        // P' identical across rows; dbn strictly ordered optimal > random > mono.
        assert!(
            (rows[0].metric.p_without_similarity - rows[2].metric.p_without_similarity).abs()
                < 1e-12
        );
        assert!(
            rows[0].metric.dbn > rows[1].metric.dbn,
            "optimal {} vs random {}",
            rows[0].metric.dbn,
            rows[1].metric.dbn
        );
        assert!(
            rows[1].metric.dbn > rows[2].metric.dbn,
            "random {} vs mono {}",
            rows[1].metric.dbn,
            rows[2].metric.dbn
        );
    }

    #[test]
    fn mttc_report_covers_the_grid() {
        let cs = CaseStudy::build();
        let mono = mono_assignment(&cs.network);
        let random = random_assignment(&cs.network, 2);
        let cells = mttc_report(
            &cs.network,
            &cs.similarity,
            &[("mono", &mono), ("random", &random)],
            &cs.entry_points,
            cs.target,
            &quick_config(),
        );
        assert_eq!(cells.len(), 2 * cs.entry_points.len());
        // Every mono cell should reach the target easily.
        for c in cells.iter().filter(|c| c.label == "mono") {
            assert!(
                c.estimate.success_rate() > 0.9,
                "mono from {} failed",
                c.entry
            );
        }
    }

    #[test]
    fn optimal_has_higher_mttc_than_mono() {
        let cs = CaseStudy::build();
        let optimizer = DiversityOptimizer::new();
        let optimal = optimizer.optimize(&cs.network, &cs.similarity).unwrap();
        let mono = mono_assignment(&cs.network);
        let cfg = quick_config();
        let cells = mttc_report(
            &cs.network,
            &cs.similarity,
            &[("optimal", optimal.assignment()), ("mono", &mono)],
            &[cs.bn_entry],
            cs.target,
            &cfg,
        );
        let get = |label: &str| {
            cells
                .iter()
                .find(|c| c.label == label)
                .and_then(|c| c.estimate.mean_ticks())
                .expect("some runs succeed")
        };
        assert!(
            get("optimal") > get("mono"),
            "optimal {} should out-survive mono {}",
            get("optimal"),
            get("mono")
        );
    }
}
