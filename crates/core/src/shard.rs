//! Sharded serving: one [`DiversityEngine`] per zone, coordinated at the
//! boundary by dual decomposition.
//!
//! [`crate::engine::DiversityEngine`] owns one network. Real deployments —
//! the paper's case study included — are *zoned*: a Corporate sub-network
//! and a Control sub-network joined by a handful of firewall-mediated
//! links. [`ShardedEngine`] exploits that shape:
//!
//! * the network is partitioned by zone
//!   ([`netmodel::partition::partition_by_zone`]) into N shards, each a
//!   full [`DiversityEngine`] over the zone's induced sub-network, plus an
//!   explicit **boundary set** — the hosts with cross-shard links,
//! * delta bursts are routed to the owning shard(s): a burst confined to
//!   one zone pays that shard's rebuild and localized re-solve only, on a
//!   network a fraction of the full size — and bursts spanning shards are
//!   absorbed by the owners *in parallel* (`std::thread::scope`),
//! * cross-shard links live in **no** shard's model. Steady-state bursts
//!   account for them with a cheap greedy boundary sweep (the *Light*
//!   pass); cold solves and cross-topology changes run **dual
//!   decomposition** (the *Strong* pass, below) and report a **certified
//!   primal−dual gap**.
//!
//! # Zone lifecycle and the incremental partition
//!
//! The partition is a *maintained* structure, not a per-burst recompute:
//! topology deltas replay onto [`netmodel::partition::ZonePartition`]'s
//! incremental mutators (boundary promotion/demotion on link deltas,
//! membership in O(touched)), so a burst at 10k hosts never pays an
//! O(V+E) re-partition ([`ShardedEngine::partition_recomputes`] stays 0
//! after construction). Zones are dynamic: an `AddHost` naming an unknown
//! zone *creates* a shard for it on the spot (inheriting the engine
//! configuration), and a zone that drains to tombstones *retires* its
//! shard — the engine releases its interned model state
//! ([`ShardedEngine::footprint`] shrinks) while the slot remains, ready to
//! revive on the next `AddHost` naming the zone.
//!
//! # Dual decomposition and the certified gap
//!
//! For every cross-shard link and shared service whose two endpoint slots
//! are both free variables, the Strong pass maintains per-label Lagrange
//! multipliers `λ` on each endpoint. Each subgradient round it
//!
//! 1. folds the multipliers into the owning shards' boundary unaries (an
//!    in-place [`mrf::model::UnaryOverlay`] — no model clone), and
//!    minimizes every shard's λ-augmented model in parallel (TRW-S decode,
//!    floored by the current primal labeling's augmented energy so the
//!    subproblem value never exceeds the primal's share),
//! 2. solves each relaxed cross-link term `min_{x̂a,x̂b} sim(x̂a,x̂b) −
//!    λ_a(x̂a) − λ_b(x̂b)` by enumeration,
//! 3. recovers a primal candidate by splicing the shard labelings through
//!    the accept-only-if-better splice, and
//! 4. takes the subgradient step `λ += α_t (𝟙[x] − 𝟙[x̂])` with the
//!    diminishing rule `α_t = α₀ / (1 + t)`.
//!
//! Cross terms with one fixed endpoint fold into the variable side's
//! unaries as constants; fixed–fixed terms are a constant `C`. The sum of
//! shard subproblem values, relaxed cross terms and `C` is the Lagrangian
//! dual value `D(λ)` of the cross-link decomposition — a lower bound on
//! the full objective *for any* `λ` whenever the shard subproblems are
//! solved to optimality, and in general a bound *modulo the shard solver
//! as minimization oracle* (the only relaxation the certificate takes on
//! faith; it is exact on small shards). What makes the reported bound safe
//! is the closing certificate: after the loop, `D` is re-evaluated at the
//! final `λ` **on the final primal labeling itself**, where per cross term
//! `λ_a(x*) + λ_b(x*) + min(cost − λ_a − λ_b) ≤ cost(x*)` holds
//! identically — so that value is ≤ the primal by construction, and it
//! replaces any mid-loop dual value an approximate subproblem solve
//! inflated past the primal. The reported [`ShardReport::dual_bound`] (the
//! best safe `D` seen) certifies [`ShardReport::certified_gap`]
//! `= (P − D)/|P|` — replacing the old "within 1% empirically" claim with
//! a per-solve certificate of the *decomposition's* loss: how much the
//! cross-link relaxation plus boundary coordination left on the table,
//! given the shards' solves. The loop stops at [`DUAL_GAP_TOLERANCE`], on
//! a stalled bound, or at [`ShardedEngine::with_max_rounds`]; a final
//! polish round refines each shard's full cross-augmented model with the
//! configured coordinator (bounded ILS by default), closing the primal gap
//! the message-passing decodes leave.
//!
//! The accept-only-if-better splice keeps every pass *monotone*: the
//! global objective (shard model energies + cross-link similarity
//! residual) never increases during coordination. Coordination is
//! *skipped* entirely when it cannot matter: no cross-shard links, or a
//! burst that neither changed any boundary host's label nor touched a
//! boundary host nor rewired a cross link. That skip is what keeps an
//! interior-confined burst as cheap as its owning shard.
//!
//! # Constraints
//!
//! [`ShardedEngine::with_constraints`] accepts the same global
//! [`ConstraintSet`] as the single engine and splits it exactly: every
//! constraint form is intra-host, so host-scoped constraints remap to the
//! owning shard's local ids and `ALL`-scoped constraints replicate to
//! every shard (including ones created later for new zones). The split
//! realizes the same feasible set as the unsharded encoding; validation is
//! all-or-nothing with [`Error::ShardRejected`] attribution.
//!
//! # Objective decomposition
//!
//! For any assignment `α`, the full-network objective decomposes exactly:
//!
//! ```text
//! E_full(α) = Σ_shards (E_shard(α|shard) + base_shard) + Σ_cross-links sim(α)
//! ```
//!
//! because every unary, every intra-shard edge and every folded fixed-slot
//! cost appears in exactly one shard model, and every cross-shard link
//! appears in exactly one residual term. [`ShardReport::objective`] is that
//! quantity — directly comparable to
//! [`crate::engine::ReassignmentReport::objective_after`] on the unsharded
//! engine.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrf::ils::{Ils, IlsOptions};
use mrf::model::{MrfBuilder, MrfModel, UnaryOverlay, VarId};
use mrf::solver::{MapSolver, SolveControl};
use mrf::trws::{Trws, TrwsOptions};

use netmodel::assignment::Assignment;
use netmodel::catalog::{Catalog, ProductSimilarity};
use netmodel::constraints::{Constraint, ConstraintSet, Scope};
use netmodel::delta::NetworkDelta;
use netmodel::journal::{Preamble, SnapshotRecord, FORMAT_VERSION};
use netmodel::network::Network;
use netmodel::partition::{extract_shard, partition_by_zone, ZonePartition};
use netmodel::HostId;

use crate::energy::SlotBinding;
use crate::engine::{DiversityEngine, ReassignmentReport};
use crate::journal::{Journal, DEFAULT_SNAPSHOT_EVERY};
use crate::optimizer::SolverKind;
use crate::{Error, Result};

/// Default cap on boundary-coordination rounds per step. Coordination
/// normally converges in one or two rounds (a boundary label flips, the
/// neighbor re-responds, done); the cap bounds pathological ping-pong on
/// frustrated boundaries.
pub const DEFAULT_COORDINATION_ROUNDS: usize = 8;

/// Kick budget of the default Strong-pass coordinator (a bounded ILS).
/// The Strong pass's final polish round doubles as the post-TRW-S primal
/// repair stage: per-shard message-passing decodes leave a primal gap that
/// iterated local search closes, so the sharded fixpoint typically lands
/// *below* a plain single-engine solve, at a bounded one-time cost per
/// cold solve or cross-topology change.
pub const DEFAULT_COORDINATOR_KICKS: usize = 20;

/// Relative primal−dual gap at which the Strong pass's subgradient loop
/// declares victory and stops: once `(P − D)/|P|` certifies the primal
/// within 1%, further dual rounds buy nothing a report can state.
pub const DUAL_GAP_TOLERANCE: f64 = 0.01;

/// Initial subgradient step size `α₀` of the diminishing rule
/// `α_t = α₀ / (1 + t)`. Similarities live in `[0, 1]` and the per-term
/// slack the multipliers must close is a fraction of that, so a
/// quarter-unit first step tracks it without the overshoot a unit step
/// produces (a distorted λ wrecks every shard decode for several rounds).
const DUAL_STEP: f64 = 0.25;

/// Cap on the Strong pass's subgradient rounds. The loop's real stops are
/// the gap tolerance and the patience rule — this cap only bounds
/// pathological oscillation, so it is deliberately larger than
/// [`DEFAULT_COORDINATION_ROUNDS`] (which governs the Light pass;
/// `with_max_rounds(0)` still disables coordination entirely, and a larger
/// explicit `max_rounds` raises this cap too).
const DUAL_SUBGRADIENT_ROUNDS: usize = 48;

/// Subgradient rounds without a dual-bound improvement before the Strong
/// pass stops early — the subproblem solves are deterministic per `λ`, so
/// a long-stalled bound means the multipliers are cycling, not converging.
const DUAL_PATIENCE: usize = 6;

/// Per-round TRW-S iteration cap for the dual subproblem solves. Each
/// round only needs a good decode of the λ-augmented model (the dual value
/// floors it with the warm primal labeling anyway), so capping trades
/// per-round decode quality for round throughput; the cold solve that
/// precedes coordination already did the expensive full pass.
const DUAL_TRWS_ITERATIONS: usize = 40;

/// What one sharded step (a delta burst, or an explicit solve) did.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The master-network revision this report corresponds to.
    pub revision: u64,
    /// Number of deltas the step absorbed (0 for an explicit solve).
    pub deltas_applied: usize,
    /// Indices of the shards whose sub-network the burst mutated, in shard
    /// order (empty for an explicit solve and for cross-link-only bursts).
    pub shards_touched: Vec<usize>,
    /// Per-shard engine reports for this step (`None` for shards the step
    /// did not re-solve locally).
    pub shard_reports: Vec<Option<ReassignmentReport>>,
    /// Wall-clock time each shard spent in its local step (`ZERO` for
    /// shards that did no local work). Shards run in parallel: the step's
    /// local-solve latency is the *maximum*, not the sum.
    pub per_shard_solve: Vec<Duration>,
    /// Boundary-coordination rounds run (0: coordination was skipped or
    /// unnecessary).
    pub rounds: usize,
    /// Boundary hosts whose product assignment changed during coordination,
    /// summed over rounds.
    pub boundary_flips: usize,
    /// Size of the boundary set after the step.
    pub boundary_hosts: usize,
    /// Number of cross-shard links after the step.
    pub cross_links: usize,
    /// Global objective of the carried-forward assignment (the old products
    /// projected onto the new network; what a non-reoptimizing deployment
    /// would run). `None` on the first solve.
    pub objective_before: Option<f64>,
    /// Global objective after local re-solves and coordination (see module
    /// docs for the decomposition).
    pub objective: f64,
    /// The carried-forward global assignment itself (`None` on the first
    /// solve).
    pub carried: Option<Assignment>,
    /// Dual value of the cross-link decomposition (module docs): the best
    /// dual value any subgradient round achieved, guarded by the closing
    /// certificate at the final `λ` (which is ≤ the primal by
    /// construction). A lower bound on the full-network objective modulo
    /// the shard solver as subproblem oracle — exact when shard solves
    /// are. `None` when the step ran no Strong pass (skipped or Light
    /// coordination).
    pub dual_bound: Option<f64>,
    /// Wall-clock time of the coordination loop (zero when skipped).
    pub coordination_wall: Duration,
    /// Wall-clock time of the whole step.
    pub total_wall: Duration,
}

impl ShardReport {
    /// How much the step improved on carrying the old assignment forward
    /// (`None` on the first solve). Non-negative: local refinement and
    /// coordination both only ever accept improvements.
    pub fn improvement(&self) -> Option<f64> {
        self.objective_before.map(|b| b - self.objective)
    }

    /// The certified relative optimality gap `(P − D) / |P|` between the
    /// reported objective and [`ShardReport::dual_bound`], clamped at 0
    /// (the closing certificate keeps the bound ≤ the primal; the clamp
    /// absorbs floating-point dust when they coincide). `None` when no
    /// Strong pass certified a bound this step.
    pub fn certified_gap(&self) -> Option<f64> {
        self.dual_bound
            .map(|d| ((self.objective - d) / self.objective.abs().max(1e-9)).max(0.0))
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rev {:>4} objective {:>9.4} | {} deltas -> shards {:?} | {} rounds, {} boundary flips | {:?}",
            self.revision,
            self.objective,
            self.deltas_applied,
            self.shards_touched,
            self.rounds,
            self.boundary_flips,
            self.total_wall,
        )?;
        if let Some(gap) = self.certified_gap() {
            write!(f, " | gap {:.2}%", 100.0 * gap)?;
        }
        Ok(())
    }
}

/// One shard: a per-zone engine plus the local→global host-id mapping.
struct Shard {
    engine: DiversityEngine,
    /// Local host id → master host id (index = local id).
    to_global: Vec<HostId>,
    /// Whether the shard's zone has drained to tombstones: the engine
    /// released its model state ([`DiversityEngine::release_model`]) and
    /// solves/compositions skip it. The slot itself stays — ids remain
    /// resolvable and the next `AddHost` naming the zone revives it (cold
    /// rebuild).
    retired: bool,
}

/// How hard a step's boundary coordination works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordinationMode {
    /// Nothing the step did can have leaked across shards: evaluate the
    /// objective, run no rounds.
    Skip,
    /// Boundary labels moved but the cross structure did not: proposals
    /// re-solve only the conditioned boundary region (cheap, the
    /// steady-state serving path).
    Light,
    /// The cross structure changed or the engine is solving from cold: the
    /// dual-decomposition subgradient loop runs (module docs), certifying
    /// a primal−dual gap, followed by one full-model polish round
    /// (expensive, the quality path).
    Strong,
}

/// What one coordination pass reports back to the step.
struct CoordTelemetry {
    rounds: usize,
    flips: usize,
    wall: Duration,
    objective: f64,
    /// Best certified dual bound (Strong pass only).
    dual_bound: Option<f64>,
}

/// The running primal state both coordination passes splice into: the
/// composed global assignment plus the cached pieces of its objective
/// (per-shard model energies, cross residual, total), kept consistent by
/// [`ShardedEngine::try_splice`] so accepting a proposal costs one shard
/// re-encode and one residual scan, not a full re-evaluation.
struct SpliceState {
    global: Assignment,
    /// Per shard: its slice of `global` encoded into shard-model labels
    /// (lazily filled — most shards never propose).
    labels: Vec<Option<Vec<usize>>>,
    shard_energies: Vec<f64>,
    residual: f64,
    total: f64,
}

/// One relaxed cross-shard term of the Strong pass: a (cross link, shared
/// service) pair whose two endpoint slots are both free variables, carrying
/// per-label Lagrange multipliers for each endpoint and the enumerated
/// similarity table over the two candidate lists.
struct DualEdge {
    /// Owning shard and shard-model variable of endpoint `a`.
    sa: usize,
    va: VarId,
    /// Per-label multipliers `λ_a` (len = `a`'s candidate count).
    lambda_a: Vec<f64>,
    sb: usize,
    vb: VarId,
    lambda_b: Vec<f64>,
    /// Row-major `sim(candidate_a[xa], candidate_b[xb])`.
    cost: Vec<f64>,
}

impl DualEdge {
    /// The relaxed term's minimizer: `min_{x̂a,x̂b} cost − λ_a − λ_b` by
    /// enumeration, with the argmin for the subgradient step.
    fn minimize(&self) -> (f64, usize, usize) {
        let lb = self.lambda_b.len();
        let mut best = f64::INFINITY;
        let (mut bxa, mut bxb) = (0, 0);
        for xa in 0..self.lambda_a.len() {
            for xb in 0..lb {
                let v = self.cost[xa * lb + xb] - self.lambda_a[xa] - self.lambda_b[xb];
                if v < best {
                    best = v;
                    bxa = xa;
                    bxb = xb;
                }
            }
        }
        (best, bxa, bxb)
    }
}

/// A zone-sharded diversity service over one evolving network (module
/// docs). Constraint sets split exactly across shards — see
/// [`ShardedEngine::with_constraints`].
pub struct ShardedEngine {
    master: Network,
    catalog: Catalog,
    similarity: ProductSimilarity,
    partition: ZonePartition,
    shards: Vec<Shard>,
    /// Master host id → (shard index, local host id). Total: every master
    /// host is owned by exactly one shard.
    locator: Vec<(usize, HostId)>,
    coordinator: Arc<dyn MapSolver>,
    max_rounds: usize,
    budget: Option<Duration>,
    /// The full, unsplit constraint set — the `ALL`-scoped subset seeds
    /// shards created later for new zones.
    constraints: ConstraintSet,
    /// From-scratch `partition_by_zone` recomputes since construction.
    /// Stays 0: topology deltas replay incrementally onto the partition
    /// (the field exists so tests and benches can assert exactly that).
    partition_recomputes: u64,
    /// The composed global assignment of the last step.
    last: Option<Assignment>,
    /// Cached per-shard objective (model energy + base) of the current
    /// labeling — kept in sync by every step so the global objective is a
    /// sum plus the cross residual, not an O(model) re-encode per burst.
    shard_objectives: Vec<f64>,
    /// Write-ahead delta journal over the *master* network, when attached
    /// ([`ShardedEngine::with_journal`]). Batches are journaled globally
    /// (pre-routing), so [`crate::journal::recover`] rebuilds the whole
    /// deployment as one [`DiversityEngine`] regardless of sharding.
    journal: Option<Journal>,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("revision", &self.master.revision())
            .field("hosts", &self.master.host_count())
            .field("shards", &self.shards.len())
            .field("boundary_hosts", &self.partition.boundary().len())
            .field("cross_links", &self.partition.cross_links().len())
            .field("solved", &self.last.is_some())
            .field("journaled", &self.journal.is_some())
            .finish()
    }
}

/// What routing one delta burst produced: the per-shard local sub-batches
/// plus the shard/local-id assignments of hosts the burst adds.
struct RoutePlan {
    per_shard: Vec<Vec<NetworkDelta>>,
    /// For each shard, the position in the *original* batch of each routed
    /// delta — how a shard-local rejection maps back to the caller's
    /// indices.
    per_shard_indices: Vec<Vec<usize>>,
    /// `(shard, local id)` per added host, in global-id order starting at
    /// the pre-batch master host count.
    new_hosts: Vec<(usize, HostId)>,
    /// Zone labels (first-appearance order) for which the burst plans a
    /// brand-new shard: planned shard index `shards.len() + i`. The shards
    /// are created only after the whole burst validates.
    new_zones: Vec<Option<String>>,
}

impl ShardedEngine {
    /// Creates a sharded engine over `network`, one shard per distinct zone
    /// label (hosts without a label form one implicit shard). Construction
    /// is lazy like [`DiversityEngine::new`]: shard models are built at the
    /// first [`ShardedEngine::solve`] or [`ShardedEngine::apply_batch`].
    ///
    /// A single-zone network degenerates to one shard with an empty
    /// boundary — the coordination loop never runs and results match the
    /// unsharded engine exactly.
    pub fn new(network: Network, catalog: Catalog, similarity: ProductSimilarity) -> ShardedEngine {
        let partition = partition_by_zone(&network);
        let mut locator = vec![(usize::MAX, HostId(0)); network.host_count()];
        let mut shards = Vec::with_capacity(partition.shard_count());
        for (idx, zone_shard) in partition.shards().iter().enumerate() {
            let view = extract_shard(&network, &zone_shard.members);
            for (local, &global) in view.to_global.iter().enumerate() {
                locator[global.index()] = (idx, HostId(local as u32));
            }
            shards.push(Shard {
                engine: DiversityEngine::new(view.network, catalog.clone(), similarity.clone()),
                to_global: view.to_global,
                retired: false,
            });
        }
        let shard_count = shards.len();
        let mut engine = ShardedEngine {
            master: network,
            catalog,
            similarity,
            partition,
            shards,
            locator,
            coordinator: Arc::new(Ils::new(IlsOptions {
                kicks: DEFAULT_COORDINATOR_KICKS,
                ..IlsOptions::default()
            })),
            max_rounds: DEFAULT_COORDINATION_ROUNDS,
            budget: None,
            constraints: ConstraintSet::new(),
            partition_recomputes: 0,
            last: None,
            shard_objectives: vec![0.0; shard_count],
            journal: None,
        };
        engine.refresh_pinned();
        engine
    }

    /// Re-pins every shard's boundary hosts against local warm re-solves:
    /// a shard engine cannot value the cross-shard edges its boundary
    /// hosts sit on, so only the coordination loop may move them (see
    /// [`DiversityEngine::set_pinned_hosts`]). Called whenever the
    /// partition changes.
    fn refresh_pinned(&mut self) {
        for s in 0..self.shards.len() {
            let pinned: Vec<HostId> = self
                .partition
                .boundary_of_shard(s)
                .map(|g| self.locator[g.index()].1)
                .collect();
            self.shards[s].engine.set_pinned_hosts(pinned);
        }
    }

    /// Caps the boundary-coordination rounds per step (default
    /// [`DEFAULT_COORDINATION_ROUNDS`]). `0` disables coordination
    /// entirely — shards then ignore cross-shard links, trading objective
    /// quality for latency.
    pub fn with_max_rounds(mut self, rounds: usize) -> ShardedEngine {
        self.max_rounds = rounds;
        self
    }

    /// Sets a wall-clock budget for each shard (re-)solve and each
    /// coordination round's proposal solves.
    pub fn with_time_budget(mut self, budget: Duration) -> ShardedEngine {
        self.budget = Some(budget);
        self.map_engines(|e| e.with_time_budget(budget))
    }

    /// Replaces every shard's cold-start solver (see
    /// [`DiversityEngine::with_solver`]).
    pub fn with_solver(self, kind: SolverKind) -> ShardedEngine {
        self.map_engines(|e| e.with_solver(kind.clone()))
    }

    /// Sets the k-hop locality of every shard's warm re-solves (see
    /// [`DiversityEngine::with_locality`]).
    pub fn with_locality(self, k_hops: Option<usize>) -> ShardedEngine {
        self.map_engines(|e| e.with_locality(k_hops))
    }

    /// Replaces the solver that refines *Strong* coordination proposals
    /// (default: a bounded ILS, [`DEFAULT_COORDINATOR_KICKS`], whose
    /// refinement both responds to cross-shard costs and closes the primal
    /// gap the shards' TRW-S decodes leave). Light steady-state proposals
    /// always use a greedy boundary sweep — they sit on every burst's
    /// serving path.
    pub fn with_coordinator(mut self, coordinator: Box<dyn MapSolver>) -> ShardedEngine {
        self.coordinator = Arc::from(coordinator);
        self
    }

    /// Splits a global constraint set exactly across the shards (module
    /// docs): host-scoped constraints remap to the owning shard's local
    /// host ids, `ALL`-scoped constraints replicate to every shard —
    /// including shards created later for new zones, which inherit the
    /// `ALL` subset. The union realizes the same feasible set as handing
    /// the whole set to one unsharded engine. Every shard re-solves cold
    /// on the next step.
    ///
    /// # Errors
    ///
    /// All-or-nothing: [`Error::ShardRejected`] with `shard: None`, the
    /// offending constraint's index, and an
    /// [`netmodel::Error::UnknownHost`] cause when a host-scoped
    /// constraint names a host outside the master network; no engine is
    /// modified. (Constraints that *validate* but are unsatisfiable
    /// surface at solve time as [`Error::Infeasible`], with the host id
    /// remapped back to the master network.)
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> Result<ShardedEngine> {
        for (index, c) in constraints.iter().enumerate() {
            if let Some(h) = constraint_host(c) {
                if h.index() >= self.locator.len() {
                    return Err(Error::ShardRejected {
                        shard: None,
                        index,
                        cause: netmodel::Error::UnknownHost(h),
                    });
                }
            }
        }
        let mut per_shard: Vec<ConstraintSet> = vec![ConstraintSet::new(); self.shards.len()];
        for c in constraints.iter() {
            match constraint_host(c) {
                Some(h) => {
                    let (s, local) = self.locator[h.index()];
                    per_shard[s].push(remap_constraint(c.clone(), local));
                }
                None => {
                    for set in per_shard.iter_mut() {
                        set.push(c.clone());
                    }
                }
            }
        }
        let mut sets = per_shard.into_iter();
        self = self.map_engines(|e| {
            e.with_constraints(sets.next().expect("one constraint set per shard"))
        });
        self.constraints = constraints;
        self.last = None;
        self.shard_objectives.iter_mut().for_each(|o| *o = 0.0);
        Ok(self)
    }

    /// Attaches a write-ahead journal at `path` with the default snapshot
    /// cadence, exactly like [`DiversityEngine::with_journal`] — but over
    /// the **master** network: delta bursts are journaled globally before
    /// routing, and snapshots capture the composed assignment, so
    /// [`crate::journal::recover`] rebuilds the deployment as one
    /// [`DiversityEngine`] regardless of how it was sharded when recorded.
    /// Attach after [`ShardedEngine::with_constraints`]: the preamble
    /// captures the full (unsplit) constraint set as configured.
    ///
    /// # Errors
    ///
    /// [`Error::Model`] wrapping [`netmodel::Error::Journal`] on I/O
    /// failure.
    pub fn with_journal(self, path: impl AsRef<Path>) -> Result<ShardedEngine> {
        self.with_journal_cadence(path, Some(DEFAULT_SNAPSHOT_EVERY))
    }

    /// [`ShardedEngine::with_journal`] with an explicit snapshot cadence
    /// (see [`DiversityEngine::with_journal_cadence`]).
    ///
    /// # Errors
    ///
    /// See [`ShardedEngine::with_journal`].
    pub fn with_journal_cadence(
        mut self,
        path: impl AsRef<Path>,
        snapshot_every: Option<usize>,
    ) -> Result<ShardedEngine> {
        let preamble = Preamble {
            format: FORMAT_VERSION,
            catalog: self.catalog.clone(),
            similarity: self.similarity.clone(),
            constraints: self.constraints.clone(),
        };
        let snapshot = self.snapshot_record();
        self.journal =
            Some(Journal::create(path, &preamble, snapshot, snapshot_every).map_err(Error::Model)?);
        Ok(self)
    }

    /// Appends an application-defined mark record to the journal, if one
    /// is attached (no-op otherwise) — see
    /// [`DiversityEngine::journal_mark`].
    ///
    /// # Errors
    ///
    /// [`Error::Model`] wrapping [`netmodel::Error::Journal`] on I/O
    /// failure.
    pub fn journal_mark(&mut self, label: &str, fields: &[(&str, f64)]) -> Result<()> {
        match self.journal.as_mut() {
            Some(journal) => journal
                .append_mark(netmodel::journal::MarkRecord::new(label, fields))
                .map_err(Error::Model),
            None => Ok(()),
        }
    }

    /// A full snapshot of the committed master state.
    fn snapshot_record(&self) -> SnapshotRecord {
        SnapshotRecord {
            revision: self.master.revision(),
            network: self.master.clone(),
            assignment: self.last.clone(),
        }
    }

    /// Journals one committed burst (globally, pre-routing), plus a
    /// periodic snapshot when due. Post-commit: an I/O failure surfaces as
    /// an error while the in-memory commit stands.
    fn journal_batch(&mut self, deltas: &[NetworkDelta]) -> Result<()> {
        if self.journal.is_none() {
            return Ok(());
        }
        let revision = self.master.revision();
        let assignment = self.last.clone();
        let due = match self.journal.as_mut() {
            None => return Ok(()),
            Some(journal) => {
                journal
                    .append_batch(deltas, revision, assignment.as_ref())
                    .map_err(Error::Model)?;
                journal.snapshot_due()
            }
        };
        if due {
            self.journal_snapshot()?;
        }
        Ok(())
    }

    /// Journals a full snapshot of the committed state, if a journal is
    /// attached (after every explicit solve — see
    /// `DiversityEngine::journal_snapshot`).
    fn journal_snapshot(&mut self) -> Result<()> {
        if self.journal.is_none() {
            return Ok(());
        }
        let snapshot = self.snapshot_record();
        if let Some(journal) = self.journal.as_mut() {
            journal.append_snapshot(snapshot).map_err(Error::Model)?;
        }
        Ok(())
    }

    /// The `ALL`-scoped subset of the stored constraint set — what a shard
    /// created for a new zone starts under.
    fn all_scoped_constraints(&self) -> ConstraintSet {
        self.constraints
            .iter()
            .filter(|c| constraint_host(c).is_none())
            .cloned()
            .collect()
    }

    fn map_engines(mut self, f: impl FnMut(DiversityEngine) -> DiversityEngine) -> ShardedEngine {
        let mut f = f;
        self.shards = self
            .shards
            .into_iter()
            .map(|s| Shard {
                engine: f(s.engine),
                to_global: s.to_global,
                retired: s.retired,
            })
            .collect();
        self
    }

    /// The master network (all zones, cross-shard links included).
    pub fn network(&self) -> &Network {
        &self.master
    }

    /// The catalog backing delta validation.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The similarity matrix in use.
    pub fn similarity(&self) -> &ProductSimilarity {
        &self.similarity
    }

    /// The current zone partition (boundary set, cross links, ownership).
    pub fn partition(&self) -> &ZonePartition {
        &self.partition
    }

    /// Number of shards, retired ones included (shard indices are stable
    /// for the engine's lifetime).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether a shard's zone has drained to tombstones and its engine
    /// released its model state (module docs: zone lifecycle).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_retired(&self, shard: usize) -> bool {
        self.shards[shard].retired
    }

    /// From-scratch partition recomputes since construction. Always 0:
    /// topology bursts replay incrementally onto the maintained
    /// [`ZonePartition`] — the accessor exists so tests and benches can
    /// pin that down rather than trust the docs.
    pub fn partition_recomputes(&self) -> u64 {
        self.partition_recomputes
    }

    /// Roll-up of every shard engine's memory-footprint drivers
    /// ([`DiversityEngine::footprint`]): `(interned domains, cached cost
    /// matrices)`, summed. Retired shards contribute 0 — retiring a zone
    /// releases its interned model state — so the roll-up tracks the
    /// *live* deployment even under zone churn.
    pub fn footprint(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(d, c), s| {
            let (sd, sc) = s.engine.footprint();
            (d + sd, c + sc)
        })
    }

    /// The master-network revision.
    pub fn revision(&self) -> u64 {
        self.master.revision()
    }

    /// The sub-network one shard serves (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_network(&self, shard: usize) -> &Network {
        self.shards[shard].engine.network()
    }

    /// The composed global MAP assignment, if any step has run. Indexed by
    /// master host ids.
    pub fn assignment(&self) -> Option<&Assignment> {
        self.last.as_ref()
    }

    /// Solves every shard (cold the first time, warm afterwards) — in
    /// parallel — and coordinates the boundary.
    ///
    /// # Errors
    ///
    /// Shard model construction errors (see [`DiversityEngine::solve`];
    /// with no constraints, none arise for validated networks).
    pub fn solve(&mut self) -> Result<ShardReport> {
        let start = Instant::now();
        let carried = self.last.clone();
        let cached_previous = self.shard_objectives.clone();
        let (reports, walls) = self
            .run_shards(None)
            .map_err(|(s, e)| self.remap_local_error(s, e))?;
        self.refresh_cached_objectives(&reports);
        let current = self.compose();
        let (coordinated, coordination_changed, telemetry) =
            self.coordinate(current, CoordinationMode::Strong, None);
        self.commit_assignment(coordinated, coordination_changed);
        let objective_before = carried
            .as_ref()
            .map(|c| self.carried_objective(&cached_previous, &reports, c));
        let report = self.report(
            0,
            Vec::new(),
            reports,
            walls,
            telemetry,
            objective_before,
            carried,
            start,
        );
        self.journal_snapshot()?;
        Ok(report)
    }

    /// Applies one delta end to end (routing, local re-solve, boundary
    /// coordination). Equivalent to a one-delta
    /// [`ShardedEngine::apply_batch`], except that validation errors
    /// surface unwrapped (no [`Error::ShardRejected`] envelope).
    ///
    /// # Errors
    ///
    /// See [`ShardedEngine::apply_batch`].
    pub fn apply(&mut self, delta: &NetworkDelta) -> Result<ShardReport> {
        self.apply_batch(std::slice::from_ref(delta))
            .map_err(|e| match e {
                Error::ShardRejected { cause, .. } => Error::Model(cause),
                Error::Model(m) => Error::Model(m.into_batch_cause()),
                other => other,
            })
    }

    /// Absorbs a delta burst: validates it against the master network
    /// (all-or-nothing), routes each delta to its owning shard (cross-shard
    /// link deltas update the master and the partition only), lets the
    /// touched shards absorb their sub-batches in parallel, replays the
    /// burst's topology changes onto the maintained partition (no
    /// from-scratch recompute), and runs the boundary-coordination loop
    /// when the burst could have affected other shards (module docs).
    ///
    /// Zone lifecycle: an `AddHost` naming a zone no shard owns creates a
    /// new shard for it (inheriting the engine configuration and the
    /// `ALL`-scoped constraints); a `RemoveHost` draining a zone's last
    /// live host retires its shard, releasing the engine's model state.
    ///
    /// An empty batch degenerates to [`ShardedEngine::solve`].
    ///
    /// # Errors
    ///
    /// [`Error::ShardRejected`] — a delta failed validation, reported with
    /// its position in the caller's burst and the id of the shard that
    /// owns it (`None` for cross-shard link deltas); the engine is
    /// untouched.
    pub fn apply_batch(&mut self, deltas: &[NetworkDelta]) -> Result<ShardReport> {
        if deltas.is_empty() {
            return self.solve();
        }
        if self.last.is_none() {
            // Establish per-shard models and a carried baseline first, so
            // the burst itself is measured as a warm absorption.
            self.solve()?;
        }
        let start = Instant::now();
        let slot_only = deltas.iter().all(|d| {
            matches!(
                d,
                NetworkDelta::FixSlot { .. }
                    | NetworkDelta::UnfixSlot { .. }
                    | NetworkDelta::ExtendCandidates { .. }
            )
        });
        let plan = self.route(deltas)?;
        let base_global = self.master.host_count();
        let pre_shards = self.shards.len();
        let cached_previous = self.shard_objectives.clone();
        let old_cross = self.partition.cross_links().to_vec();
        let old_boundary_rows = self.boundary_rows();

        let shards_touched: Vec<usize> = plan
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(s, _)| s)
            .collect();
        let (reports, walls, effect) = if slot_only {
            // Fast path: slot deltas never change topology or zones, and
            // each one is validated transactionally by its owning shard —
            // the master applies in place afterwards, skipping the
            // full-network staging clone (the dominant fixed cost on the
            // burst serving path).
            if shards_touched.len() > 1 {
                // Pre-validate every sub-batch so a late shard rejection
                // cannot leave an earlier shard committed.
                for &s in &shards_touched {
                    let mut scratch = self.shards[s].engine.network().clone();
                    if let Err(e) = scratch.apply_all(&plan.per_shard[s], &self.catalog) {
                        return Err(remap_shard_error(&plan, s, Error::Model(e)));
                    }
                }
            }
            debug_assert!(plan.new_zones.is_empty(), "slot deltas never add zones");
            let (reports, walls) = self
                .run_shards(Some(&plan.per_shard))
                .map_err(|(s, e)| remap_shard_error(&plan, s, self.remap_local_error(s, e)))?;
            let effect = self
                .master
                .apply_all(deltas, &self.catalog)
                .expect("slot burst was validated by its owning shards");
            (reports, walls, effect)
        } else {
            let mut staged = self.master.clone();
            let effect = staged
                .apply_all(deltas, &self.catalog)
                .map_err(|e| attribute_master_error(&plan, e))?;
            // The burst validated against the full network: create the
            // shards its new zones need (empty sub-networks inheriting
            // this engine's configuration — the routed `AddHost` deltas
            // populate them next). On the never-expected late shard
            // failure the fresh shards are dropped again, restoring the
            // engine-untouched contract.
            for _ in &plan.new_zones {
                self.push_new_shard();
            }
            match self
                .run_shards(Some(&plan.per_shard))
                .map_err(|(s, e)| remap_shard_error(&plan, s, self.remap_local_error(s, e)))
            {
                Ok((reports, walls)) => {
                    self.master = staged;
                    (reports, walls, effect)
                }
                Err(e) => {
                    self.shards.truncate(pre_shards);
                    return Err(e);
                }
            }
        };
        // Every fallible step is behind us: from here on the burst commits.
        // Move the previous assignment out instead of cloning it — it
        // becomes the base of the carried composition, and `self.last` is
        // rewritten by `commit_assignment` at the end of the step. (Taking
        // it any earlier would leak it on a rejected burst, breaking the
        // engine-is-untouched error contract.)
        let carried_previous = self.last.take();
        self.shard_objectives.resize(self.shards.len(), 0.0);
        self.refresh_cached_objectives(&reports);
        // A retired shard that absorbed part of the burst (an `AddHost`
        // naming its drained zone) is live again.
        for &s in &shards_touched {
            self.shards[s].retired = false;
        }

        // Commit id mappings and the partition. Topology deltas replay
        // incrementally onto the maintained partition — never a
        // from-scratch recompute (slot-only bursts reuse it untouched).
        for (i, &(shard, local)) in plan.new_hosts.iter().enumerate() {
            debug_assert_eq!(self.shards[shard].to_global.len(), local.index());
            let global = HostId(self.locator.len() as u32);
            debug_assert_eq!(
                global.index(),
                self.master.host_count() - plan.new_hosts.len() + i
            );
            self.locator.push((shard, local));
            self.shards[shard].to_global.push(global);
        }
        if effect.topology_changed {
            self.replay_partition(deltas, base_global);
            self.refresh_pinned();
        }

        // The carried composition — built *before* coordination, while the
        // shard engines still hold their pre-coordination solves: touched
        // shards contribute their projected old assignment, untouched
        // shards their (unchanged) previous one. A shard born (or revived
        // from empty) this very burst has nothing to carry — its own cold
        // solve is the baseline, so the carry includes the new hosts'
        // energy and cross links and `improvement()` measures only what
        // re-solving and coordination bought on top.
        let carried = carried_previous.map(|previous| {
            let mut rows = previous.into_slots();
            rows.resize(self.master.host_count(), Vec::new());
            for (s, report) in reports.iter().enumerate() {
                let Some(report) = report else { continue };
                let fresh = self.shards[s].engine.assignment();
                let shard_carried = match (&report.carried, fresh) {
                    (Some(carried), _) => carried,
                    (None, Some(cold)) => cold,
                    (None, None) => continue,
                };
                for (local, &global) in self.shards[s].to_global.iter().enumerate() {
                    rows[global.index()] = shard_carried.products_at(HostId(local as u32)).to_vec();
                }
            }
            Assignment::from_slots(rows)
        });
        let objective_before = carried
            .as_ref()
            .map(|c| self.carried_objective(&cached_previous, &reports, c));

        // Coordinate only when the burst could have leaked across shards —
        // and only as hard as the leak warrants: a rewired cross structure
        // gets the full-model Strong pass, while a mere boundary-label
        // wobble (a local re-solve moving a boundary host) gets the cheap
        // conditioned-region Light pass.
        let current = self.compose();
        let cross_changed = old_cross != self.partition.cross_links();
        let touched_boundary = effect
            .touched
            .iter()
            .any(|&h| self.partition.is_boundary(h));
        let boundary_label_changed = {
            let new_rows = self.boundary_rows_of(&current);
            new_rows != old_boundary_rows
        };
        // Boundary hosts are pinned against local re-solves, so their own
        // labels only move here — but a re-solve changing their *interior
        // neighbors* (or a structural touch at the boundary itself) shifts
        // what that shard's boundary best response is. `stale` flags
        // exactly those shards, per shard.
        let stale: Vec<bool> = {
            let mut changed = std::collections::HashSet::new();
            for (s, report) in reports.iter().enumerate() {
                let Some(report) = report else { continue };
                for &local in &report.changed_hosts {
                    changed.insert(self.shards[s].to_global[local.index()]);
                }
            }
            (0..self.shards.len())
                .map(|s| {
                    self.partition.boundary_of_shard(s).any(|b| {
                        effect.touched.contains(&b)
                            || self.master.neighbors(b).iter().any(|n| changed.contains(n))
                    })
                })
                .collect()
        };
        let mode = if cross_changed {
            CoordinationMode::Strong
        } else if touched_boundary || boundary_label_changed || stale.iter().any(|&s| s) {
            CoordinationMode::Light
        } else {
            CoordinationMode::Skip
        };
        // A trigger outside the per-shard stale flags (a boundary row that
        // moved structurally) re-opens every shard.
        let stale_filter = (!(touched_boundary || boundary_label_changed)
            && mode == CoordinationMode::Light)
            .then_some(stale.as_slice());
        // A rewired cross structure can strand the local solves above the
        // carried composition: a fresh boundary host is labeled blind to
        // its cross links, and the Strong pass is allowed to stop within
        // its gap tolerance without clawing that back. Seed coordination
        // with the better of the two states, so a step never ends worse
        // than carrying forward. (Strong-only: the extra full-network
        // evaluation is noise next to the dual pass, and without a cross
        // rewire the pinned boundaries make local solves monotone against
        // the carry already.)
        let (current, seeded_carry) = match (&carried, objective_before) {
            (Some(carry), Some(before))
                if mode == CoordinationMode::Strong
                    && before < self.global_objective(&current) - 1e-12 =>
            {
                (carry.clone(), true)
            }
            _ => (current, false),
        };
        let (coordinated, coordination_changed, telemetry) =
            self.coordinate(current, mode, stale_filter);
        // A carry seed means the committed assignment differs from the
        // shard engines' own re-solves even when coordination spliced
        // nothing — force the write-back sync.
        self.commit_assignment(coordinated, coordination_changed || seeded_carry);

        let report = self.report(
            effect.applied,
            shards_touched,
            reports,
            walls,
            telemetry,
            objective_before,
            carried,
            start,
        );
        self.journal_batch(deltas)?;
        Ok(report)
    }

    /// The global objective of any assignment over the master network:
    /// shard model energies plus the cross-link similarity residual
    /// (module docs). Meaningful once every shard has a model (i.e. after
    /// any step).
    pub fn global_objective(&self, assignment: &Assignment) -> f64 {
        let mut total = self.cross_residual(assignment);
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.retired {
                continue;
            }
            let energy = shard.engine.energy();
            let labels = self.encode_shard(s, assignment);
            total += energy.model().energy(&labels) + energy.base_energy();
        }
        total
    }

    fn control(&self) -> SolveControl {
        match self.budget {
            Some(budget) => SolveControl::new().with_budget(budget),
            None => SolveControl::new(),
        }
    }

    /// Syncs the cached per-shard objectives with the shards that just
    /// re-solved.
    fn refresh_cached_objectives(&mut self, reports: &[Option<ReassignmentReport>]) {
        for (s, report) in reports.iter().enumerate() {
            if let Some(report) = report {
                self.shard_objectives[s] = report.objective_after;
            }
        }
    }

    /// The global objective of the carried composition, from cached parts:
    /// shards that re-solved contribute the carried objective their own
    /// report measured; untouched shards contribute their pre-step cached
    /// objective (their model and labels did not move). A shard whose
    /// report has no carry cold-solved this burst (it was just created or
    /// revived): its own solve is its baseline, matching the carried
    /// assignment's fallback above.
    fn carried_objective(
        &self,
        cached_previous: &[f64],
        reports: &[Option<ReassignmentReport>],
        carried: &Assignment,
    ) -> f64 {
        let mut total = self.cross_residual(carried);
        for (s, report) in reports.iter().enumerate() {
            let cached = cached_previous.get(s).copied().unwrap_or(0.0);
            total += match report {
                Some(report) => report.objective_before.unwrap_or(report.objective_after),
                None => cached,
            };
        }
        total
    }

    /// Runs the shards' local steps in parallel: `solve()` on every shard
    /// when `batches` is `None`, `apply_batch(batch)` on shards with a
    /// non-empty sub-batch otherwise. An error is tagged with the shard it
    /// came from so the caller can map sub-batch indices back to the
    /// original burst.
    #[allow(clippy::type_complexity)]
    fn run_shards(
        &mut self,
        batches: Option<&[Vec<NetworkDelta>]>,
    ) -> std::result::Result<(Vec<Option<ReassignmentReport>>, Vec<Duration>), (usize, Error)> {
        // A burst confined to one shard needs no threads — spawn/join would
        // cost more than they buy on the serving path.
        if let Some(per_shard) = batches {
            let working: Vec<usize> = per_shard
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(s, _)| s)
                .collect();
            if let [only] = working[..] {
                let mut reports = vec![None; self.shards.len()];
                let mut walls = vec![Duration::ZERO; self.shards.len()];
                let t = Instant::now();
                let report = self.shards[only]
                    .engine
                    .apply_batch(&per_shard[only])
                    .map_err(|e| (only, e))?;
                walls[only] = t.elapsed();
                reports[only] = Some(report);
                return Ok((reports, walls));
            }
        }
        let mut outcomes: Vec<Option<(Result<ReassignmentReport>, Duration)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(s, shard)| {
                    let work: Option<Option<&[NetworkDelta]>> = match batches {
                        // A retired shard has no live hosts and no model —
                        // a full solve skips it (a non-empty sub-batch,
                        // the revival path, still runs below).
                        None if shard.retired => None,
                        None => Some(None),
                        Some(per_shard) if !per_shard[s].is_empty() => {
                            Some(Some(per_shard[s].as_slice()))
                        }
                        Some(_) => None,
                    };
                    work.map(|batch| {
                        scope.spawn(move || {
                            let t = Instant::now();
                            let result = match batch {
                                None => shard.engine.solve(),
                                Some(deltas) => shard.engine.apply_batch(deltas),
                            };
                            (result, t.elapsed())
                        })
                    })
                })
                .collect();
            outcomes = handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard step does not panic")))
                .collect();
        });
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut walls = Vec::with_capacity(outcomes.len());
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some((result, wall)) => {
                    reports.push(Some(result.map_err(|e| (s, e))?));
                    walls.push(wall);
                }
                None => {
                    reports.push(None);
                    walls.push(Duration::ZERO);
                }
            }
        }
        Ok((reports, walls))
    }

    /// Splits a burst into per-shard local sub-batches (host ids
    /// remapped), leaving cross-shard link deltas to the master. An
    /// `AddHost` naming a zone no shard owns plans a brand-new shard
    /// (`new_zones`); the shard is created only once the burst validates.
    /// Rejects out-of-range host references; everything else is validated
    /// by the shard (and, for structural bursts, master) apply.
    fn route(&self, deltas: &[NetworkDelta]) -> Result<RoutePlan> {
        let mut per_shard: Vec<Vec<NetworkDelta>> = vec![Vec::new(); self.shards.len()];
        let mut per_shard_indices: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut new_hosts: Vec<(usize, HostId)> = Vec::new();
        let mut new_zones: Vec<Option<String>> = Vec::new();
        let mut next_local: Vec<u32> = self
            .shards
            .iter()
            .map(|s| s.engine.network().host_count() as u32)
            .collect();
        let base_global = self.master.host_count();
        let lookup = |h: HostId, new_hosts: &[(usize, HostId)]| -> Result<(usize, HostId)> {
            if h.index() < self.locator.len() {
                Ok(self.locator[h.index()])
            } else {
                // Hosts this very burst added, or a bogus reference.
                new_hosts
                    .get(h.index() - base_global)
                    .copied()
                    .ok_or(Error::Model(netmodel::Error::UnknownHost(h)))
            }
        };
        for (index, delta) in deltas.iter().enumerate() {
            let routed: Option<(usize, NetworkDelta)> = match delta {
                NetworkDelta::AddHost {
                    name,
                    zone,
                    services,
                    links,
                } => {
                    let shard = match self.partition.shard_of_zone(zone.as_deref()) {
                        Some(s) => s,
                        // Zone lifecycle (module docs): an unknown zone
                        // plans a new shard at the next free index.
                        None => match new_zones.iter().position(|z| z == zone) {
                            Some(i) => self.shards.len() + i,
                            None => {
                                new_zones.push(zone.clone());
                                per_shard.push(Vec::new());
                                per_shard_indices.push(Vec::new());
                                next_local.push(0);
                                self.shards.len() + new_zones.len() - 1
                            }
                        },
                    };
                    // Same-shard links join the shard sub-network; links to
                    // other shards exist only in the master and surface as
                    // cross links (boundary promotion) after the commit.
                    let mut local_links = Vec::new();
                    for &peer in links {
                        let (s, local) = lookup(peer, &new_hosts)?;
                        if s == shard {
                            local_links.push(local);
                        }
                    }
                    new_hosts.push((shard, HostId(next_local[shard])));
                    next_local[shard] += 1;
                    Some((
                        shard,
                        NetworkDelta::AddHost {
                            name: name.clone(),
                            zone: zone.clone(),
                            services: services.clone(),
                            links: local_links,
                        },
                    ))
                }
                NetworkDelta::RemoveHost { host } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((s, NetworkDelta::remove_host(local)))
                }
                NetworkDelta::AddLink { a, b } | NetworkDelta::RemoveLink { a, b } => {
                    let (sa, la) = lookup(*a, &new_hosts)?;
                    let (sb, lb) = lookup(*b, &new_hosts)?;
                    if sa == sb {
                        Some((
                            sa,
                            match delta {
                                NetworkDelta::AddLink { .. } => NetworkDelta::add_link(la, lb),
                                _ => NetworkDelta::remove_link(la, lb),
                            },
                        ))
                    } else {
                        None
                    }
                }
                NetworkDelta::FixSlot {
                    host,
                    service,
                    product,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((s, NetworkDelta::fix_slot(local, *service, *product)))
                }
                NetworkDelta::UnfixSlot {
                    host,
                    service,
                    candidates,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((
                        s,
                        NetworkDelta::unfix_slot(local, *service, candidates.clone()),
                    ))
                }
                NetworkDelta::ExtendCandidates {
                    host,
                    service,
                    products,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((
                        s,
                        NetworkDelta::extend_candidates(local, *service, products.clone()),
                    ))
                }
            };
            if let Some((s, local_delta)) = routed {
                per_shard[s].push(local_delta);
                per_shard_indices[s].push(index);
            }
        }
        Ok(RoutePlan {
            per_shard,
            per_shard_indices,
            new_hosts,
            new_zones,
        })
    }

    /// Appends a brand-new shard for a zone the current burst introduces:
    /// an engine over the empty sub-network, inheriting this engine's
    /// solver/refiner/budget/locality configuration and the `ALL`-scoped
    /// constraints. The burst's routed `AddHost` deltas populate it in the
    /// same step.
    fn push_new_shard(&mut self) {
        let view = extract_shard(&self.master, &[]);
        let engine = match self.shards.first() {
            Some(template) => template.engine.configured_like(
                view.network,
                self.catalog.clone(),
                self.similarity.clone(),
            ),
            None => {
                let mut engine = DiversityEngine::new(
                    view.network,
                    self.catalog.clone(),
                    self.similarity.clone(),
                );
                if let Some(budget) = self.budget {
                    engine = engine.with_time_budget(budget);
                }
                engine
            }
        };
        self.shards.push(Shard {
            // `configured_like` copies the template's constraint set, which
            // includes host-scoped locals of the *template's* zone; a new
            // zone starts under the `ALL`-scoped subset only.
            engine: engine.with_constraints(self.all_scoped_constraints()),
            to_global: view.to_global,
            retired: false,
        });
    }

    /// Retires a drained shard (module docs: zone lifecycle): the engine
    /// releases its interned model state, and solves/compositions skip the
    /// slot until an `AddHost` naming the zone revives it.
    fn retire_shard(&mut self, s: usize) {
        self.shards[s].retired = true;
        self.shards[s].engine.release_model();
        self.shard_objectives[s] = 0.0;
    }

    /// Replays a committed burst's topology deltas onto the maintained
    /// partition, in burst order — incremental boundary promotion and
    /// demotion, O(touched · degree), never a from-scratch recompute. A
    /// `RemoveHost` draining a zone's last live host retires its shard on
    /// the spot. `next_global` is the master host count *before* the burst:
    /// the k-th `AddHost` owns global id `next_global + k`, matching the
    /// locator commit.
    fn replay_partition(&mut self, deltas: &[NetworkDelta], mut next_global: usize) {
        for delta in deltas {
            match delta {
                NetworkDelta::AddHost { zone, links, .. } => {
                    let host = HostId(next_global as u32);
                    next_global += 1;
                    let (shard, _) = self.partition.add_host(host, zone.as_deref());
                    debug_assert!(
                        shard < self.shards.len(),
                        "partition zone creation tracks the routed shard creation"
                    );
                    for &peer in links {
                        self.partition.add_link(host, peer);
                    }
                }
                NetworkDelta::RemoveHost { host } => {
                    let shard = self.partition.shard_of(*host);
                    if self.partition.remove_host(*host) == 0 {
                        let shard = shard.expect("removed host was live in the partition");
                        self.retire_shard(shard);
                    }
                }
                NetworkDelta::AddLink { a, b } => self.partition.add_link(*a, *b),
                NetworkDelta::RemoveLink { a, b } => self.partition.remove_link(*a, *b),
                _ => {}
            }
        }
    }

    /// Maps a shard-local solve error's host ids back to master ids —
    /// [`Error::Infeasible`] is the one solve-time error naming a host.
    fn remap_local_error(&self, s: usize, e: Error) -> Error {
        match e {
            Error::Infeasible { host, service } => Error::Infeasible {
                host: self.shards[s]
                    .to_global
                    .get(host.index())
                    .copied()
                    .unwrap_or(host),
                service,
            },
            other => other,
        }
    }

    /// Composes the global assignment from the shards' current ones.
    fn compose(&self) -> Assignment {
        let mut rows: Vec<Vec<netmodel::ProductId>> = vec![Vec::new(); self.master.host_count()];
        for shard in &self.shards {
            if shard.retired {
                // A drained zone's hosts are tombstones in the master:
                // their rows stay empty, same as the unsharded engine's.
                continue;
            }
            let assignment = shard
                .engine
                .assignment()
                .expect("compose runs only after every live shard has solved");
            for (local, &global) in shard.to_global.iter().enumerate() {
                rows[global.index()] = assignment.products_at(HostId(local as u32)).to_vec();
            }
        }
        Assignment::from_slots(rows)
    }

    /// Writes the step's global assignment back: the whole into
    /// `self.last`, and — only when coordination actually changed labels —
    /// each shard's slice into its engine so the next warm start continues
    /// from the coordinated labeling (when nothing changed, the engines
    /// already hold exactly these labels).
    fn commit_assignment(&mut self, global: Assignment, coordination_changed: bool) {
        if coordination_changed {
            for shard in &mut self.shards {
                let rows: Vec<Vec<netmodel::ProductId>> = shard
                    .to_global
                    .iter()
                    .map(|&g| global.products_at(g).to_vec())
                    .collect();
                shard.engine.set_assignment(Assignment::from_slots(rows));
            }
        }
        self.last = Some(global);
    }

    /// The boundary hosts' current product rows (the state compared across
    /// a step to decide whether coordination is needed).
    fn boundary_rows(&self) -> Vec<(HostId, Vec<netmodel::ProductId>)> {
        match &self.last {
            Some(assignment) => self.boundary_rows_of(assignment),
            None => Vec::new(),
        }
    }

    fn boundary_rows_of(&self, assignment: &Assignment) -> Vec<(HostId, Vec<netmodel::ProductId>)> {
        self.partition
            .boundary()
            .iter()
            .map(|&h| (h, assignment.products_at(h).to_vec()))
            .collect()
    }

    /// Encodes `assignment`'s products at shard `s`'s hosts into that
    /// shard's model labels.
    fn encode_shard(&self, s: usize, assignment: &Assignment) -> Vec<usize> {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let mut labels = vec![0usize; energy.model().var_count()];
        for (local, host_slots) in energy.slots().iter().enumerate() {
            let global = shard.to_global[local];
            let row = assignment.products_at(global);
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    labels[var.0] = candidates
                        .iter()
                        .position(|p| Some(p) == row.get(slot))
                        .expect("assignment product is a current candidate");
                }
            }
        }
        labels
    }

    /// Σ over cross-shard links of the assignment-level similarity — the
    /// part of the objective no shard model sees.
    fn cross_residual(&self, assignment: &Assignment) -> f64 {
        self.partition
            .cross_links()
            .iter()
            .map(|&(a, b)| assignment.edge_similarity(&self.master, &self.similarity, a, b))
            .sum()
    }

    /// The shard's boundary slot variables with what the cross-cost fold
    /// needs to know about each: the owning (global) host, the slot's
    /// service, and its candidate list.
    #[allow(clippy::type_complexity)]
    fn boundary_entries(
        &self,
        s: usize,
    ) -> Vec<(
        VarId,
        HostId,
        netmodel::ServiceId,
        Arc<Vec<netmodel::ProductId>>,
    )> {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let mut entries = Vec::new();
        for global in self.partition.boundary_of_shard(s) {
            let (_, local) = self.locator[global.index()];
            let Ok(host) = shard.engine.network().host(local) else {
                continue;
            };
            let Some(host_slots) = energy.slots().get(local.index()) else {
                continue;
            };
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    entries.push((
                        *var,
                        global,
                        host.services()[slot].service(),
                        Arc::clone(candidates),
                    ));
                }
            }
        }
        entries
    }

    /// A Light coordination proposal: a greedy masked sweep *in place* on
    /// the shard model, seeded at the boundary variables, with the
    /// cross-shard edge costs against the neighbors' frozen labels added
    /// as per-variable cost addons. Flips activate intra-shard neighbors
    /// (which carry no addon — their cross cost is zero by definition of
    /// the boundary), so the sweep expands exactly as far as the response
    /// wave carries. No submodel, no allocation beyond the label vector:
    /// cheap enough to run on every burst.
    fn light_proposal(
        &self,
        s: usize,
        start: &[usize],
        global: &Assignment,
        boundary: &[(
            VarId,
            HostId,
            netmodel::ServiceId,
            Arc<Vec<netmodel::ProductId>>,
        )],
    ) -> Vec<usize> {
        let shard = &self.shards[s];
        let model = shard.engine.energy().model();
        let n = model.var_count();
        let addon = self.cross_addons(n, global, boundary);
        let mut labels = start.to_vec();
        let mut active = vec![false; n];
        for (var, ..) in boundary {
            if var.0 < n {
                active[var.0] = true;
            }
        }
        let mut cost = vec![0.0f64; model.max_labels()];
        const LIGHT_SWEEPS: usize = 8;
        for _ in 0..LIGHT_SWEEPS {
            let mut changed = false;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                let l = model.labels(VarId(i));
                cost[..l].copy_from_slice(model.unary(VarId(i)));
                for &eidx in model.incident_edges(VarId(i)) {
                    let edge = model.edges()[eidx as usize];
                    if edge.a().0 == i {
                        let xb = labels[edge.b().0];
                        for (xa, c) in cost[..l].iter_mut().enumerate() {
                            *c += model.edge_cost(&edge, xa, xb);
                        }
                    } else {
                        let xa = labels[edge.a().0];
                        for (xb, c) in cost[..l].iter_mut().enumerate() {
                            *c += model.edge_cost(&edge, xa, xb);
                        }
                    }
                }
                if let Some(extra) = &addon[i] {
                    for (x, c) in cost[..l].iter_mut().enumerate() {
                        *c += extra[x];
                    }
                }
                let best = cost[..l]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(x, _)| x)
                    .unwrap_or(0);
                if best != labels[i] && cost[best] < cost[labels[i]] {
                    labels[i] = best;
                    changed = true;
                    for &eidx in model.incident_edges(VarId(i)) {
                        let edge = model.edges()[eidx as usize];
                        let other = if edge.a().0 == i {
                            edge.b().0
                        } else {
                            edge.a().0
                        };
                        active[other] = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        labels
    }

    /// The cross-shard cost addon per variable of a shard, against the
    /// neighbors' current (frozen) labels in `global`: for each boundary
    /// variable, the extra unary cost each candidate pays over that host's
    /// cross links. The single source of truth for the residual fold — the
    /// Strong augmentation and the Light sweep must optimize the same
    /// objective or the accept-only-if-better invariant silently breaks.
    #[allow(clippy::type_complexity)]
    fn cross_addons(
        &self,
        var_count: usize,
        global: &Assignment,
        boundary: &[(
            VarId,
            HostId,
            netmodel::ServiceId,
            Arc<Vec<netmodel::ProductId>>,
        )],
    ) -> Vec<Option<Vec<f64>>> {
        let mut addon: Vec<Option<Vec<f64>>> = vec![None; var_count];
        for (var, ghost, service, candidates) in boundary {
            let mut extra = vec![0.0; candidates.len()];
            let mut any = false;
            for &(a, b) in self.partition.cross_links() {
                let peer = if a == *ghost {
                    b
                } else if b == *ghost {
                    a
                } else {
                    continue;
                };
                let Some(pb) = global.product_for(&self.master, peer, *service) else {
                    continue;
                };
                for (label, &candidate) in candidates.iter().enumerate() {
                    extra[label] += self.similarity.get(candidate, pb);
                }
                any = true;
            }
            if any {
                addon[var.0] = Some(extra);
            }
        }
        addon
    }

    /// Builds shard `s`'s *full* model with the cross-shard edge costs
    /// against the neighbors' current labels folded into the boundary
    /// variables' unaries — the Strong coordination path's model, on which
    /// [`MapSolver::refine_local`] is free to expand from the boundary as
    /// far as flips carry (up to a full shard sweep).
    fn augmented_full_model(&self, s: usize, global: &Assignment) -> MrfModel {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let model = energy.model();
        let addons = self.cross_addons(model.var_count(), global, &self.boundary_entries(s));
        let mut builder = MrfBuilder::new();
        // Mirror the shard model's slot layout so labelings transfer
        // verbatim; tombstoned slots become inert 1-label placeholders
        // (their label in any transferred labeling is ignored either way).
        for v in 0..model.var_count() {
            builder.add_variable(model.labels(VarId(v)).max(1));
        }
        for (v, addon) in addons.iter().enumerate() {
            if !model.is_live(VarId(v)) {
                continue;
            }
            let mut unary = model.unary(VarId(v)).to_vec();
            if let Some(extra) = addon {
                for (label, u) in unary.iter_mut().enumerate() {
                    *u += extra[label];
                }
            }
            builder
                .set_unary(VarId(v), unary)
                .expect("arity is copied from the shard model");
        }
        for (_, edge) in model.live_edges() {
            let (la, lb) = (model.labels(edge.a()), model.labels(edge.b()));
            let mut costs = Vec::with_capacity(la * lb);
            for xa in 0..la {
                for xb in 0..lb {
                    costs.push(model.edge_cost(edge, xa, xb));
                }
            }
            builder
                .add_edge_dense(edge.a(), edge.b(), costs)
                .expect("edges are copied from the shard model");
        }
        builder.build()
    }

    /// The boundary-coordination dispatcher (module docs). Returns the
    /// (possibly improved) global assignment, whether any proposal was
    /// accepted, and the pass telemetry; syncs the cached per-shard
    /// objectives. With mode `Skip` (or no cross links, or a zero round
    /// cap) it only evaluates the objective from the cached parts.
    /// `stale`, when given, restricts the Light pass's first-round
    /// proposals to the flagged shards — the only ones whose boundary
    /// best-response can have changed; an accepted proposal re-opens every
    /// shard for the following rounds.
    fn coordinate(
        &mut self,
        current: Assignment,
        mode: CoordinationMode,
        stale: Option<&[bool]>,
    ) -> (Assignment, bool, CoordTelemetry) {
        let wall = Instant::now();
        if mode == CoordinationMode::Skip
            || self.partition.cross_links().is_empty()
            || self.max_rounds == 0
        {
            let objective =
                self.shard_objectives.iter().sum::<f64>() + self.cross_residual(&current);
            return (
                current,
                false,
                CoordTelemetry {
                    rounds: 0,
                    flips: 0,
                    wall: wall.elapsed(),
                    objective,
                    dual_bound: None,
                },
            );
        }
        let residual = self.cross_residual(&current);
        let shard_energies = self.shard_objectives.clone();
        let total = shard_energies.iter().sum::<f64>() + residual;
        let mut st = SpliceState {
            global: current,
            labels: vec![None; self.shards.len()],
            shard_energies,
            residual,
            total,
        };
        let (any_accepted, rounds, flips, dual_bound) = match mode {
            CoordinationMode::Strong => self.coordinate_dual(&mut st),
            _ => self.coordinate_light(&mut st, stale),
        };
        self.shard_objectives = st.shard_energies;
        (
            st.global,
            any_accepted,
            CoordTelemetry {
                rounds,
                flips,
                wall: wall.elapsed(),
                objective: st.total,
                dual_bound,
            },
        )
    }

    /// Splices one shard's proposed labeling into the running primal
    /// state, accepted only on strict global improvement — the
    /// monotonicity guarantee every pass shares. Returns the number of
    /// boundary hosts the accepted proposal moved (`None`: rejected, or a
    /// no-op proposal).
    fn try_splice(&self, st: &mut SpliceState, s: usize, proposal: Vec<usize>) -> Option<usize> {
        if st.labels[s].is_none() {
            st.labels[s] = Some(self.encode_shard(s, &st.global));
        }
        if Some(&proposal) == st.labels[s].as_ref() {
            return None;
        }
        let energy = self.shards[s].engine.energy();
        let candidate_shard_energy = energy.model().energy(&proposal) + energy.base_energy();
        let local_rows = energy.decode(&proposal);
        let mut candidate_rows = st.global.clone().into_slots();
        candidate_rows.resize(self.master.host_count(), Vec::new());
        for (local, &g) in self.shards[s].to_global.iter().enumerate() {
            candidate_rows[g.index()] = local_rows.products_at(HostId(local as u32)).to_vec();
        }
        let candidate = Assignment::from_slots(candidate_rows);
        let candidate_residual = self.cross_residual(&candidate);
        let candidate_total = st.total - st.shard_energies[s] - st.residual
            + candidate_shard_energy
            + candidate_residual;
        if candidate_total >= st.total - 1e-12 {
            return None;
        }
        let flips = self
            .partition
            .boundary_of_shard(s)
            .filter(|&h| st.global.products_at(h) != candidate.products_at(h))
            .count();
        st.labels[s] = Some(proposal);
        st.shard_energies[s] = candidate_shard_energy;
        st.residual = candidate_residual;
        st.total = candidate_total;
        st.global = candidate;
        Some(flips)
    }

    /// The Light pass: rounds of greedy in-place boundary sweeps, run
    /// inline — this sits on every burst's serving path, where thread
    /// spawns would cost more than the work. Each shard re-responds to its
    /// neighbors' frozen labels; the pass stops on the first round with no
    /// accepted proposal.
    fn coordinate_light(
        &self,
        st: &mut SpliceState,
        stale: Option<&[bool]>,
    ) -> (bool, usize, usize, Option<f64>) {
        let shard_count = self.shards.len();
        let boundary_entries: Vec<_> = (0..shard_count).map(|s| self.boundary_entries(s)).collect();
        let mut rounds = 0usize;
        let mut flips = 0usize;
        let mut any_accepted = false;
        for round in 0..self.max_rounds {
            rounds += 1;
            let mut accepted = 0usize;
            for s in 0..shard_count {
                let skip_fresh = round == 0 && !stale.is_none_or(|f| f[s]);
                if boundary_entries[s].is_empty() || skip_fresh {
                    continue;
                }
                if st.labels[s].is_none() {
                    st.labels[s] = Some(self.encode_shard(s, &st.global));
                }
                let proposal = self.light_proposal(
                    s,
                    st.labels[s].as_ref().expect("encoded above"),
                    &st.global,
                    &boundary_entries[s],
                );
                if let Some(f) = self.try_splice(st, s, proposal) {
                    flips += f;
                    accepted += 1;
                }
            }
            if accepted == 0 {
                break;
            }
            any_accepted = true;
        }
        (any_accepted, rounds, flips, None)
    }

    /// The Strong pass: dual decomposition over the cross-shard links
    /// (module docs), then one full-model polish round. Each subgradient
    /// round solves every λ-touched shard in parallel with a capped TRW-S
    /// on its multiplier-augmented model (an in-place [`UnaryOverlay`] —
    /// no clone), sums the certified lower bounds with the relaxed
    /// cross-term minima into the dual value `D`, recovers a primal
    /// candidate through the improve-only splice, and steps the
    /// multipliers along the subgradient. Returns the best certified `D`
    /// as the dual bound.
    fn coordinate_dual(&mut self, st: &mut SpliceState) -> (bool, usize, usize, Option<f64>) {
        let shard_count = self.shards.len();
        let boundary_entries: Vec<_> = (0..shard_count).map(|s| self.boundary_entries(s)).collect();
        // Boundary slot variables by (host, service) — the endpoints a
        // relaxed cross term duplicates.
        #[allow(clippy::type_complexity)]
        let slot_index: BTreeMap<
            (HostId, netmodel::ServiceId),
            (usize, VarId, Arc<Vec<netmodel::ProductId>>),
        > = boundary_entries
            .iter()
            .enumerate()
            .flat_map(|(s, entries)| {
                entries.iter().map(move |(var, host, service, candidates)| {
                    ((*host, *service), (s, *var, Arc::clone(candidates)))
                })
            })
            .collect();
        // Decompose the cross residual term by term, mirroring
        // `Assignment::edge_similarity`: per cross link (a, b) and service
        // of `a` that `b` also runs, one similarity term. Both endpoints
        // free → a relaxed dual edge; one free → an exact constant fold
        // into the free side's unaries (the fixed side cannot move); none
        // free → a constant.
        let mut edges: Vec<DualEdge> = Vec::new();
        let mut fixed_addons: Vec<BTreeMap<usize, Vec<f64>>> = vec![BTreeMap::new(); shard_count];
        let mut constant = 0.0f64;
        for &(a, b) in self.partition.cross_links() {
            let Ok(host_a) = self.master.host(a) else {
                continue;
            };
            for (slot, inst) in host_a.services().iter().enumerate() {
                let service = inst.service();
                let pb_now = st.global.product_for(&self.master, b, service);
                if pb_now.is_none() {
                    continue; // `b` does not run the service: no term.
                }
                let pa_now = st.global.products_at(a).get(slot).copied();
                match (slot_index.get(&(a, service)), slot_index.get(&(b, service))) {
                    (Some((sa, va, ca)), Some((sb, vb, cb))) => {
                        let mut cost = Vec::with_capacity(ca.len() * cb.len());
                        for &pa in ca.iter() {
                            for &pb in cb.iter() {
                                cost.push(self.similarity.get(pa, pb));
                            }
                        }
                        edges.push(DualEdge {
                            sa: *sa,
                            va: *va,
                            lambda_a: vec![0.0; ca.len()],
                            sb: *sb,
                            vb: *vb,
                            lambda_b: vec![0.0; cb.len()],
                            cost,
                        });
                    }
                    (Some((sa, va, ca)), None) => {
                        let pb = pb_now.expect("checked above");
                        let row = fixed_addons[*sa]
                            .entry(va.0)
                            .or_insert_with(|| vec![0.0; ca.len()]);
                        for (x, &pa) in ca.iter().enumerate() {
                            row[x] += self.similarity.get(pa, pb);
                        }
                    }
                    (None, Some((sb, vb, cb))) => {
                        let Some(pa) = pa_now else { continue };
                        let row = fixed_addons[*sb]
                            .entry(vb.0)
                            .or_insert_with(|| vec![0.0; cb.len()]);
                        for (x, &pb) in cb.iter().enumerate() {
                            row[x] += self.similarity.get(pa, pb);
                        }
                    }
                    (None, None) => {
                        if let (Some(pa), Some(pb)) = (pa_now, pb_now) {
                            constant += self.similarity.get(pa, pb);
                        }
                    }
                }
            }
        }
        // Only shards a multiplier reaches need re-solving after round 0 —
        // every other subproblem is λ-invariant, so its round-0 bound is
        // cached and reused.
        let mut touched = vec![false; shard_count];
        for e in &edges {
            touched[e.sa] = true;
            touched[e.sb] = true;
        }
        let ctl = self.control();
        // Per shard: its latest (oracle subproblem value, base energy)
        // contribution to the dual value. The oracle value is the best
        // λ-augmented energy the shard's solver found — an upper bound on
        // the true subproblem minimum that is guaranteed ≤ the current
        // primal labeling's augmented energy (the solve is seeded with it),
        // which is what keeps `D ≤ P` (module docs).
        let mut contrib: Vec<Option<(f64, f64)>> = vec![None; shard_count];
        let mut prev_dual = f64::NEG_INFINITY;
        let mut rounds = 0usize;
        let mut flips = 0usize;
        let mut any_accepted = false;
        let mut stall = 0usize;
        for t in 0..DUAL_SUBGRADIENT_ROUNDS.max(self.max_rounds) {
            rounds += 1;
            // Addon rows per shard: the λ-independent fixed-peer folds,
            // then one row per dual-edge endpoint (the overlay stacks
            // repeated variables).
            let mut addons: Vec<Vec<(VarId, Vec<f64>)>> = fixed_addons
                .iter()
                .map(|rows| {
                    rows.iter()
                        .map(|(&v, row)| (VarId(v), row.clone()))
                        .collect()
                })
                .collect();
            for e in &edges {
                addons[e.sa].push((e.va, e.lambda_a.clone()));
                addons[e.sb].push((e.vb, e.lambda_b.clone()));
            }
            let solve_now: Vec<bool> = (0..shard_count)
                .map(|s| !self.shards[s].retired && (t == 0 || touched[s]))
                .collect();
            for s in (0..shard_count).filter(|&s| solve_now[s]) {
                if st.labels[s].is_none() {
                    st.labels[s] = Some(self.encode_shard(s, &st.global));
                }
            }
            let warm: Vec<Option<&Vec<usize>>> = st.labels.iter().map(Option::as_ref).collect();
            #[allow(clippy::type_complexity)]
            let mut results: Vec<Option<(Vec<usize>, f64, bool, f64)>> = vec![None; shard_count];
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(addons)
                    .enumerate()
                    .map(|(s, (shard, addon))| {
                        if !solve_now[s] {
                            return None;
                        }
                        let ctl = ctl.clone();
                        let warm = warm[s];
                        Some(scope.spawn(move || {
                            let energy = shard.engine.energy_mut();
                            let base = energy.base_energy();
                            let model = energy.model_mut();
                            let mut overlay = UnaryOverlay::new();
                            overlay
                                .apply(model, addon.iter().map(|(v, row)| (*v, row.as_slice())))
                                .expect("boundary addons mirror the shard model's arity");
                            let solution = Trws::new(TrwsOptions {
                                max_iterations: DUAL_TRWS_ITERATIONS,
                                ..TrwsOptions::default()
                            })
                            .solve(model, &ctl);
                            // Oracle value: the TRW-S decode vs the current
                            // primal labeling, both under the λ-augmented
                            // model — the seed guarantees the subproblem
                            // value never exceeds the primal's share.
                            let decode_value = solution.energy();
                            let warm_value = warm.map_or(f64::INFINITY, |seed| model.energy(seed));
                            overlay.revert(model);
                            (
                                solution.labels().to_vec(),
                                decode_value.min(warm_value),
                                warm_value < decode_value,
                                base,
                            )
                        }))
                    })
                    .collect();
                for (s, handle) in handles.into_iter().enumerate() {
                    if let Some(handle) = handle {
                        results[s] = Some(handle.join().expect("dual subproblem does not panic"));
                    }
                }
            });
            for s in 0..shard_count {
                if let Some((_, value, _, base)) = &results[s] {
                    contrib[s] = Some((*value, *base));
                }
            }
            // The dual value: shard subproblem values + relaxed cross
            // minima + the constant (module docs; exact subproblem solves
            // would make this the true Lagrangian dual).
            let mut d = constant;
            for (s, entry) in contrib.iter().enumerate() {
                if self.shards[s].retired {
                    continue;
                }
                if let Some((value, base)) = entry {
                    d += value + base;
                }
            }
            let argmins: Vec<(usize, usize)> = edges
                .iter()
                .map(|e| {
                    let (m, xa, xb) = e.minimize();
                    d += m;
                    (xa, xb)
                })
                .collect();
            if d > prev_dual + 1e-12 {
                stall = 0;
            } else {
                stall += 1;
            }
            prev_dual = d;
            if std::env::var_os("DUAL_TRACE").is_some() {
                eprintln!("round {t}: d {d:.4} primal {:.4} stall {stall}", st.total);
            }
            // The subproblem argmin's endpoint label per dual edge at this
            // λ — the warm labeling when it beat the decode — captured
            // before the splice mutates the primal state.
            let shard_label = |s: usize, v: VarId| -> Option<usize> {
                let (labels, _, warm_won, _) = results[s].as_ref()?;
                if *warm_won {
                    st.labels[s].as_ref().map(|l| l[v.0])
                } else {
                    Some(labels[v.0])
                }
            };
            let endpoints: Vec<Option<(usize, usize)>> = edges
                .iter()
                .map(|e| Some((shard_label(e.sa, e.va)?, shard_label(e.sb, e.vb)?)))
                .collect();
            // Primal recovery: each re-solved shard's labeling is a
            // candidate (the splice evaluates it under the *true* model).
            for s in (0..shard_count).filter(|&s| solve_now[s]) {
                let Some((labels, _, _, _)) = &results[s] else {
                    continue;
                };
                if let Some(f) = self.try_splice(st, s, labels.clone()) {
                    flips += f;
                    any_accepted = true;
                }
            }
            // `d ≤ P` holds within a round (the oracle is floored by the
            // current primal), so a small in-round slack is a sound stop.
            let gap = (st.total - d) / st.total.abs().max(1e-9);
            if gap <= DUAL_GAP_TOLERANCE || stall >= DUAL_PATIENCE || edges.is_empty() {
                break;
            }
            let step = DUAL_STEP / (1.0 + t as f64);
            for ((e, &(xa_hat, xb_hat)), endpoint) in edges.iter_mut().zip(&argmins).zip(&endpoints)
            {
                let Some((xa, xb)) = *endpoint else { continue };
                if xa != xa_hat {
                    e.lambda_a[xa] += step;
                    e.lambda_a[xa_hat] -= step;
                }
                if xb != xb_hat {
                    e.lambda_b[xb] += step;
                    e.lambda_b[xb_hat] -= step;
                }
            }
        }
        // One full-model polish round: the subgradient loop's primal
        // recovery is improve-only splicing of subproblem labelings; a
        // bounded coordinator pass (ILS by default) over each boundary
        // shard's cross-augmented full model closes the primal gap the
        // message-passing decodes leave.
        rounds += 1;
        let polish: Vec<usize> = (0..shard_count)
            .filter(|&s| !boundary_entries[s].is_empty())
            .collect();
        for &s in &polish {
            if st.labels[s].is_none() {
                st.labels[s] = Some(self.encode_shard(s, &st.global));
            }
        }
        let mut proposals: Vec<Option<Vec<usize>>> = vec![None; shard_count];
        std::thread::scope(|scope| {
            let this = &*self;
            let global_ref = &st.global;
            let handles: Vec<_> = polish
                .iter()
                .map(|&s| {
                    let start_labels = st.labels[s].clone().expect("encoded above");
                    let coordinator = Arc::clone(&this.coordinator);
                    let ctl = ctl.clone();
                    let frontier: Vec<VarId> = boundary_entries[s].iter().map(|e| e.0).collect();
                    (
                        s,
                        scope.spawn(move || {
                            let augmented = this.augmented_full_model(s, global_ref);
                            coordinator
                                .refine_local(&augmented, start_labels, &frontier, &ctl)
                                .solution
                                .labels()
                                .to_vec()
                        }),
                    )
                })
                .collect();
            for (s, handle) in handles {
                proposals[s] = Some(handle.join().expect("proposal does not panic"));
            }
        });
        for (s, proposal) in proposals.into_iter().enumerate() {
            let Some(proposal) = proposal else { continue };
            if let Some(f) = self.try_splice(st, s, proposal) {
                flips += f;
                any_accepted = true;
            }
        }
        // The reported certificate: the dual evaluated at the last λ on the
        // *final* primal labeling (mid-loop dual values compare against
        // their own round's primal, which the polish may since have beaten,
        // so none of them certify the final answer). Per shard the
        // λ-augmented energy of its final labeling, plus each relaxed cross
        // term's minimum. Every edge term satisfies
        // `λ_a(x*) + λ_b(x*) + min(cost − λ_a − λ_b) ≤ cost(x*)`, so this
        // value is ≤ the final primal by construction.
        let mut final_dual = constant;
        for (s, addons) in fixed_addons.iter().enumerate() {
            if self.shards[s].retired {
                continue;
            }
            if st.labels[s].is_none() {
                st.labels[s] = Some(self.encode_shard(s, &st.global));
            }
            let labels = st.labels[s].as_ref().expect("encoded above");
            let energy = self.shards[s].engine.energy();
            let mut aug = energy.model().energy(labels) + energy.base_energy();
            for (&v, row) in addons {
                aug += row[labels[v]];
            }
            final_dual += aug;
        }
        for e in &edges {
            let la = st.labels[e.sa].as_ref().expect("dual-edge shard is live");
            let lb = st.labels[e.sb].as_ref().expect("dual-edge shard is live");
            final_dual += e.lambda_a[la[e.va.0]] + e.lambda_b[lb[e.vb.0]];
            final_dual += e.minimize().0;
        }
        (any_accepted, rounds, flips, Some(final_dual))
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        deltas_applied: usize,
        shards_touched: Vec<usize>,
        shard_reports: Vec<Option<ReassignmentReport>>,
        per_shard_solve: Vec<Duration>,
        telemetry: CoordTelemetry,
        objective_before: Option<f64>,
        carried: Option<Assignment>,
        start: Instant,
    ) -> ShardReport {
        ShardReport {
            revision: self.master.revision(),
            deltas_applied,
            shards_touched,
            shard_reports,
            per_shard_solve,
            rounds: telemetry.rounds,
            boundary_flips: telemetry.flips,
            boundary_hosts: self.partition.boundary().len(),
            cross_links: self.partition.cross_links().len(),
            objective_before,
            objective: telemetry.objective,
            carried,
            dual_bound: telemetry.dual_bound,
            coordination_wall: telemetry.wall,
            total_wall: start.elapsed(),
        }
    }
}

/// The single host a constraint is scoped to, `None` for `ALL`-scoped
/// conditional combinations (which replicate to every shard unchanged).
fn constraint_host(c: &Constraint) -> Option<HostId> {
    match *c {
        Constraint::Fix { host, .. } => Some(host),
        Constraint::ForbidCombination { scope, .. }
        | Constraint::RequireCombination { scope, .. } => match scope {
            Scope::Host(h) => Some(h),
            Scope::All => None,
        },
    }
}

/// Rewrites a host-scoped constraint onto the owning shard's local host
/// id. Exact: every constraint form is intra-host, so no residual cross
/// term arises from the split.
fn remap_constraint(c: Constraint, local: HostId) -> Constraint {
    match c {
        Constraint::Fix {
            service, product, ..
        } => Constraint::Fix {
            host: local,
            service,
            product,
        },
        Constraint::ForbidCombination {
            if_service,
            if_product,
            then_service,
            forbidden,
            ..
        } => Constraint::ForbidCombination {
            scope: Scope::Host(local),
            if_service,
            if_product,
            then_service,
            forbidden,
        },
        Constraint::RequireCombination {
            if_service,
            if_product,
            then_service,
            required,
            ..
        } => Constraint::RequireCombination {
            scope: Scope::Host(local),
            if_service,
            if_product,
            then_service,
            required,
        },
    }
}

/// Maps a shard-local [`netmodel::Error::BatchRejected`] index back to the
/// caller's position in the original burst and attributes it to the
/// rejecting shard ([`Error::ShardRejected`]), so a serving queue can tell
/// *which* shard bounced a burst without replaying it.
fn remap_shard_error(plan: &RoutePlan, shard: usize, error: Error) -> Error {
    match error {
        Error::Model(netmodel::Error::BatchRejected { index, cause }) => Error::ShardRejected {
            shard: Some(shard),
            index: plan.per_shard_indices[shard]
                .get(index)
                .copied()
                .unwrap_or(index),
            cause: *cause,
        },
        other => other,
    }
}

/// Attributes a master-network staging rejection (already indexed by the
/// caller's burst positions) to the shard owning the failing delta —
/// `None` for cross-shard link deltas, which only the master applies.
fn attribute_master_error(plan: &RoutePlan, error: netmodel::Error) -> Error {
    match error {
        netmodel::Error::BatchRejected { index, cause } => Error::ShardRejected {
            shard: plan
                .per_shard_indices
                .iter()
                .position(|indices| indices.contains(&index)),
            index,
            cause: *cause,
        },
        other => Error::Model(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::catalog::Catalog;
    use netmodel::network::NetworkBuilder;
    use netmodel::topology::{generate_zoned, TopologyKind, ZonedNetworkConfig};

    fn zoned(zones: usize, hosts_per_zone: usize, seed: u64) -> ShardedEngine {
        let g = generate_zoned(
            &ZonedNetworkConfig {
                zones,
                hosts_per_zone,
                gateway_links: 2,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            seed,
        );
        ShardedEngine::new(g.network, g.catalog, g.similarity)
    }

    /// Two single-host zones joined by one cross link; one service with two
    /// products whose similarity strongly punishes agreement. Local solves
    /// cannot see the cross link, so both shards pick the (identical)
    /// unary-argmin product — only coordination can break the tie.
    fn two_host_gateway() -> ShardedEngine {
        let mut c = Catalog::new();
        let os = c.add_service("os");
        let p0 = c.add_product("p0", os).unwrap();
        let p1 = c.add_product("p1", os).unwrap();
        let mut b = NetworkBuilder::new();
        let a = b.add_host_in_zone("a", "A");
        let z = b.add_host_in_zone("z", "B");
        b.add_service(a, os, vec![p0, p1]).unwrap();
        b.add_service(z, os, vec![p0, p1]).unwrap();
        b.add_link(a, z).unwrap();
        let net = b.build(&c).unwrap();
        // sim(p,p) = 1, sim(p0,p1) = 0.1.
        let sim = netmodel::catalog::ProductSimilarity::from_dense(2, vec![1.0, 0.1, 0.1, 1.0]);
        ShardedEngine::new(net, c, sim)
    }

    fn single_engine_of(sharded: &ShardedEngine) -> DiversityEngine {
        DiversityEngine::new(
            sharded.network().clone(),
            sharded.catalog().clone(),
            sharded.similarity().clone(),
        )
    }

    /// The objective identity of the module docs: the sharded
    /// decomposition evaluated on the sharded assignment equals the full
    /// single-network model's energy on the same assignment.
    fn full_model_objective(sharded: &ShardedEngine, assignment: &Assignment) -> f64 {
        use crate::energy::build_energy;
        use netmodel::constraints::ConstraintSet;
        let energy = build_energy(
            sharded.network(),
            sharded.similarity(),
            &ConstraintSet::new(),
            crate::energy::EnergyParams::default(),
        )
        .unwrap();
        let mut labels = vec![0usize; energy.model().var_count()];
        for (host, host_slots) in energy.slots().iter().enumerate() {
            let row = assignment.products_at(HostId(host as u32));
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    labels[var.0] = candidates
                        .iter()
                        .position(|p| Some(p) == row.get(slot))
                        .expect("assignment product is a candidate");
                }
            }
        }
        energy.model().energy(&labels) + energy.base_energy()
    }

    #[test]
    fn coordination_breaks_the_gateway_tie() {
        let mut engine = two_host_gateway();
        let report = engine.solve().unwrap();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(report.cross_links, 1);
        assert_eq!(report.boundary_hosts, 2);
        assert!(report.rounds >= 1, "cross links must trigger coordination");
        assert!(
            report.boundary_flips >= 1,
            "one endpoint must flip away from the shared argmin"
        );
        let assignment = engine.assignment().unwrap();
        assert_ne!(
            assignment.products_at(HostId(0)),
            assignment.products_at(HostId(1)),
            "coordinated endpoints must diversify"
        );
        // Prconst × 2 + sim(p0, p1).
        assert!((report.objective - (0.02 + 0.1)).abs() < 1e-9);
        // And the decomposition matches the full single-network model.
        let full = full_model_objective(&engine, assignment);
        assert!((full - report.objective).abs() < 1e-9);
    }

    #[test]
    fn gateway_dual_bound_certifies_the_optimum() {
        let mut engine = two_host_gateway();
        let report = engine.solve().unwrap();
        // The 2-host gateway is solved exactly, so the subgradient loop
        // must certify it: D = P = 0.12 after one multiplier step.
        let dual = report.dual_bound.expect("Strong pass certifies a bound");
        assert!(
            dual <= report.objective + 1e-9,
            "a dual bound can never exceed the primal ({dual} vs {})",
            report.objective
        );
        let gap = report.certified_gap().unwrap();
        assert!(gap >= 0.0);
        assert!(
            gap <= DUAL_GAP_TOLERANCE,
            "the exactly-solvable gateway must certify within tolerance, got {:.4}",
            gap
        );
        assert!((report.objective - 0.12).abs() < 1e-9);
        // The Display line carries the certificate.
        assert!(format!("{report}").contains("gap"));
    }

    #[test]
    fn dual_bound_is_valid_on_zoned_networks() {
        for seed in [3u64, 11, 29] {
            let mut engine = zoned(3, 12, seed);
            let report = engine.solve().unwrap();
            let dual = report.dual_bound.expect("cold zoned solve runs Strong");
            assert!(
                dual <= report.objective + 1e-9,
                "seed {seed}: dual {dual} above primal {}",
                report.objective
            );
            let gap = report.certified_gap().unwrap();
            assert!(gap >= 0.0, "seed {seed}: negative gap {gap}");
            // Skip/Light steps never pretend to certify.
            let os = engine.catalog().service_by_name("service0").unwrap();
            let interior = (0..36u32)
                .map(HostId)
                .find(|&h| !engine.partition().is_boundary(h))
                .unwrap();
            let current = engine.assignment().unwrap().products_at(interior)[0];
            let light = engine
                .apply(&NetworkDelta::fix_slot(interior, os, current))
                .unwrap();
            assert!(light.dual_bound.is_none());
            assert!(light.certified_gap().is_none());
        }
    }

    #[test]
    fn constraints_split_matches_the_single_engine() {
        let mut c = Catalog::new();
        let os = c.add_service("os");
        let db = c.add_service("db");
        let p0 = c.add_product("p0", os).unwrap();
        let p1 = c.add_product("p1", os).unwrap();
        let d0 = c.add_product("d0", db).unwrap();
        let d1 = c.add_product("d1", db).unwrap();
        let mut b = NetworkBuilder::new();
        let a = b.add_host_in_zone("a", "A");
        let m = b.add_host_in_zone("m", "A");
        let z = b.add_host_in_zone("z", "B");
        for h in [a, m, z] {
            b.add_service(h, os, vec![p0, p1]).unwrap();
            b.add_service(h, db, vec![d0, d1]).unwrap();
        }
        b.add_link(a, m).unwrap();
        b.add_link(m, z).unwrap();
        let net = b.build(&c).unwrap();
        let sim = netmodel::catalog::ProductSimilarity::from_dense(
            4,
            vec![
                1.0, 0.1, 0.0, 0.0, //
                0.1, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.3, //
                0.0, 0.0, 0.3, 1.0,
            ],
        );
        let constraints: ConstraintSet = vec![
            // Host-scoped, on the *second* shard: exercises the local-id
            // remap (global z is local 0 of shard 1).
            Constraint::Fix {
                host: z,
                service: os,
                product: p1,
            },
            // ALL-scoped: replicated to every shard.
            Constraint::ForbidCombination {
                scope: Scope::All,
                if_service: os,
                if_product: p0,
                then_service: db,
                forbidden: d0,
            },
        ]
        .into_iter()
        .collect();
        let mut sharded = ShardedEngine::new(net.clone(), c.clone(), sim.clone())
            .with_constraints(constraints.clone())
            .unwrap();
        let mut single = DiversityEngine::new(net, c, sim).with_constraints(constraints);
        let sharded_report = sharded.solve().unwrap();
        let single_report = single.solve().unwrap();
        assert!(
            (sharded_report.objective - single_report.objective_after).abs() < 1e-9,
            "remapped constraints must realize the single-engine feasible set: {} vs {}",
            sharded_report.objective,
            single_report.objective_after
        );
        let assignment = sharded.assignment().unwrap();
        assert_eq!(
            assignment.product_for(sharded.network(), z, os),
            Some(p1),
            "the remapped Fix must hold"
        );
        for h in [a, m, z] {
            if assignment.product_for(sharded.network(), h, os) == Some(p0) {
                assert_ne!(
                    assignment.product_for(sharded.network(), h, db),
                    Some(d0),
                    "the replicated ALL-scoped forbid must hold at {h}"
                );
            }
        }
    }

    #[test]
    fn constraint_validation_is_all_or_nothing() {
        let engine = zoned(2, 6, 13);
        let os = engine.catalog().service_by_name("service0").unwrap();
        let p = engine.catalog().products_of(os)[0];
        let constraints: ConstraintSet = vec![
            Constraint::Fix {
                host: HostId(0),
                service: os,
                product: p,
            },
            Constraint::Fix {
                host: HostId(99),
                service: os,
                product: p,
            },
        ]
        .into_iter()
        .collect();
        let err = engine.with_constraints(constraints).unwrap_err();
        match err {
            Error::ShardRejected {
                shard,
                index,
                cause,
            } => {
                assert_eq!(shard, None, "validation rejects before any shard is picked");
                assert_eq!(index, 1, "the offending constraint's position");
                assert!(matches!(cause, netmodel::Error::UnknownHost(h) if h == HostId(99)));
            }
            other => panic!("expected ShardRejected, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_constraint_reports_the_master_host_id() {
        let engine = zoned(2, 6, 13);
        let os = engine.catalog().service_by_name("service0").unwrap();
        let db = engine.catalog().service_by_name("service1").unwrap();
        // A product of the wrong service can never be a candidate: the
        // slot drains at build time. Host 7 lives in shard 1 (local id 1);
        // the error must surface the *master* id.
        let bogus = engine.catalog().products_of(db)[0];
        let mut engine = engine
            .with_constraints(
                vec![Constraint::Fix {
                    host: HostId(7),
                    service: os,
                    product: bogus,
                }]
                .into_iter()
                .collect(),
            )
            .unwrap();
        let err = engine.solve().unwrap_err();
        match err {
            Error::Infeasible { host, service } => {
                assert_eq!(host, HostId(7), "host id must be remapped to master");
                assert_eq!(service, os);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn new_zone_shards_inherit_all_scoped_constraints() {
        let engine = zoned(2, 6, 13);
        let os = engine.catalog().service_by_name("service0").unwrap();
        let db = engine.catalog().service_by_name("service1").unwrap();
        let trigger = engine.catalog().products_of(os)[0];
        let forbidden = engine.catalog().products_of(db)[0];
        let os_products = engine.catalog().products_of(os).to_vec();
        let db_products = engine.catalog().products_of(db).to_vec();
        let mut engine = engine
            .with_constraints(
                vec![Constraint::ForbidCombination {
                    scope: Scope::All,
                    if_service: os,
                    if_product: trigger,
                    then_service: db,
                    forbidden,
                }]
                .into_iter()
                .collect(),
            )
            .unwrap();
        engine.solve().unwrap();
        // Force the trigger on a brand-new zone's host: the inherited
        // ALL-scoped forbid must bind in the freshly created shard.
        engine
            .apply_batch(&[
                NetworkDelta::AddHost {
                    name: "fresh".into(),
                    zone: Some("zone-new".into()),
                    services: vec![(os, os_products), (db, db_products)],
                    links: vec![HostId(0)],
                },
                NetworkDelta::fix_slot(HostId(12), os, trigger),
            ])
            .unwrap();
        assert_eq!(engine.shard_count(), 3);
        let assignment = engine.assignment().unwrap();
        assert_eq!(
            assignment.product_for(engine.network(), HostId(12), os),
            Some(trigger)
        );
        assert_ne!(
            assignment.product_for(engine.network(), HostId(12), db),
            Some(forbidden),
            "the new shard must enforce the inherited ALL-scoped constraint"
        );
    }

    #[test]
    fn sharded_objective_matches_single_engine_within_tolerance() {
        for seed in [3u64, 7, 21] {
            let mut sharded = zoned(2, 20, seed);
            let mut single = single_engine_of(&sharded);
            let sharded_report = sharded.solve().unwrap();
            let single_report = single.solve().unwrap();
            // Identity: the reported objective is the true full-model
            // objective of the composed assignment.
            let full = full_model_objective(&sharded, sharded.assignment().unwrap());
            assert!(
                (full - sharded_report.objective).abs() < 1e-9,
                "decomposition identity broke: {} vs {}",
                full,
                sharded_report.objective
            );
            // Quality: close to the single-engine solve. At these tiny
            // 20-host zones the gap is dominated by decode variance, so
            // the bound is loose; the binding 1% acceptance check runs at
            // §VIII scale in `tests/tests/sharded.rs`, where the ILS
            // Strong pass typically lands *below* the single engine.
            let gap = (sharded_report.objective - single_report.objective_after)
                / single_report.objective_after.abs().max(1e-9);
            assert!(
                gap < 0.05,
                "seed {seed}: sharded {:.4} vs single {:.4} (gap {:.2}%)",
                sharded_report.objective,
                single_report.objective_after,
                100.0 * gap
            );
        }
    }

    #[test]
    fn interior_burst_routes_to_one_shard_and_leaves_the_other_untouched() {
        let mut engine = zoned(2, 20, 5);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        // Interior hosts of zone 0 (not boundary).
        let targets: Vec<HostId> = (0..20u32)
            .map(HostId)
            .filter(|&h| !engine.partition().is_boundary(h))
            .take(4)
            .collect();
        let deltas: Vec<NetworkDelta> = targets
            .iter()
            .map(|&h| {
                let p = engine
                    .network()
                    .host(h)
                    .unwrap()
                    .candidates_for(os)
                    .unwrap()[1];
                NetworkDelta::fix_slot(h, os, p)
            })
            .collect();
        let other_before = engine.shard_network(1).clone();
        let other_revision = engine.shard_network(1).revision();
        let report = engine.apply_batch(&deltas).unwrap();
        assert_eq!(report.deltas_applied, 4);
        assert_eq!(report.shards_touched, vec![0]);
        assert!(report.shard_reports[0].is_some());
        assert!(report.shard_reports[1].is_none(), "shard 1 did no work");
        assert_eq!(
            engine.shard_network(1).revision(),
            other_revision,
            "the burst must never reach shard 1's network"
        );
        assert_eq!(engine.shard_network(1), &other_before);
        assert!(report.improvement().unwrap() >= -1e-9);
        // Master and shard views stay consistent.
        assert_eq!(engine.revision(), 4);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
    }

    #[test]
    fn interior_burst_skips_coordination() {
        let mut engine = zoned(2, 20, 9);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let target = (0..20u32)
            .map(HostId)
            .find(|&h| {
                !engine.partition().is_boundary(h)
                    && engine
                        .partition()
                        .cross_links()
                        .iter()
                        .all(|&(a, b)| a != h && b != h)
            })
            .unwrap();
        // Re-mandating the host's current product changes no label at all.
        let current = engine.assignment().unwrap().products_at(target)[0];
        let report = engine
            .apply(&NetworkDelta::fix_slot(target, os, current))
            .unwrap();
        assert_eq!(
            report.rounds, 0,
            "an interior no-label-change burst must skip coordination"
        );
        assert_eq!(report.boundary_flips, 0);
    }

    #[test]
    fn cross_link_deltas_update_partition_and_objective() {
        let mut engine = two_host_gateway();
        engine.solve().unwrap();
        // Removing the only cross link empties the boundary...
        let report = engine
            .apply(&NetworkDelta::remove_link(HostId(0), HostId(1)))
            .unwrap();
        assert_eq!(report.cross_links, 0);
        assert_eq!(report.boundary_hosts, 0);
        assert_eq!(engine.shard_network(0).link_count(), 0);
        assert!((report.objective - 0.02).abs() < 1e-9, "residual vanished");
        // ...and re-adding it restores coordination pressure.
        let report = engine
            .apply(&NetworkDelta::add_link(HostId(0), HostId(1)))
            .unwrap();
        assert_eq!(report.cross_links, 1);
        assert_eq!(report.boundary_hosts, 2);
        assert!((report.objective - 0.12).abs() < 1e-9);
        let assignment = engine.assignment().unwrap();
        assert_ne!(
            assignment.products_at(HostId(0)),
            assignment.products_at(HostId(1))
        );
    }

    #[test]
    fn add_host_routes_by_zone_and_unknown_zone_creates_a_shard() {
        let mut engine = zoned(2, 6, 13);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let ps = engine.catalog().products_of(os).to_vec();
        // A new zone-1 host linked into both zones: shard 1 grows, the
        // zone-0 link becomes a cross link.
        let delta = NetworkDelta::AddHost {
            name: "newcomer".into(),
            zone: Some("zone1".into()),
            services: vec![(os, ps.clone())],
            links: vec![HostId(0), HostId(6)],
        };
        let shard0_hosts = engine.shard_network(0).host_count();
        let report = engine.apply(&delta).unwrap();
        let newcomer = HostId(12);
        assert_eq!(engine.partition().shard_of(newcomer), Some(1));
        assert_eq!(engine.shard_network(0).host_count(), shard0_hosts);
        assert_eq!(engine.shard_network(1).host_count(), 7);
        assert!(engine
            .partition()
            .cross_links()
            .contains(&(HostId(0), newcomer)));
        assert!(engine.partition().is_boundary(newcomer));
        assert!(report.shard_reports[1].is_some());
        // The newcomer got a product.
        assert_eq!(engine.assignment().unwrap().products_at(newcomer).len(), 1);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();

        // An unknown zone creates a brand-new shard on the spot (zone
        // lifecycle, module docs) — cross-linked into zone 0 here, so the
        // fresh singleton immediately joins the boundary.
        let report = engine
            .apply(&NetworkDelta::AddHost {
                name: "pioneer".into(),
                zone: Some("zone9".into()),
                services: vec![(os, ps)],
                links: vec![HostId(0)],
            })
            .unwrap();
        let pioneer = HostId(13);
        assert_eq!(engine.shard_count(), 3, "zone9 got its own shard");
        assert_eq!(engine.partition().shard_of(pioneer), Some(2));
        assert!(!engine.shard_retired(2));
        assert_eq!(engine.shard_network(2).host_count(), 1);
        assert!(engine
            .partition()
            .cross_links()
            .contains(&(HostId(0), pioneer)));
        assert!(report.shards_touched.contains(&2));
        assert!(report.shard_reports[2].is_some());
        assert_eq!(engine.assignment().unwrap().products_at(pioneer).len(), 1);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
        // The whole stream never recomputed the partition from scratch.
        assert_eq!(engine.partition_recomputes(), 0);
    }

    #[test]
    fn draining_a_zone_retires_its_shard_and_revives_on_return() {
        let mut engine = zoned(2, 4, 21);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let ps = engine.catalog().products_of(os).to_vec();
        let (domains_before, costs_before) = engine.footprint();
        assert!(domains_before > 0);
        // Drain zone 1 (hosts 4..8) to tombstones: its shard retires and
        // releases its model state.
        let burst: Vec<NetworkDelta> = (4..8u32)
            .map(|h| NetworkDelta::remove_host(HostId(h)))
            .collect();
        engine.apply_batch(&burst).unwrap();
        assert!(engine.shard_retired(1), "drained zone 1 must retire");
        assert!(!engine.shard_retired(0));
        let (domains_after, _) = engine.footprint();
        assert!(
            domains_after < domains_before,
            "retiring must release interned domains ({domains_before} -> {domains_after})"
        );
        assert_eq!(engine.partition().cross_links().len(), 0);
        // Steps keep working with the retired shard skipped.
        let report = engine.solve().unwrap();
        assert!(report.shard_reports[1].is_none());
        // An AddHost naming the drained zone revives the shard cold.
        let report = engine
            .apply(&NetworkDelta::AddHost {
                name: "returner".into(),
                zone: Some("zone1".into()),
                services: vec![(os, ps)],
                links: vec![HostId(0)],
            })
            .unwrap();
        assert!(!engine.shard_retired(1), "zone 1 is live again");
        assert_eq!(engine.shard_count(), 2, "the slot was reused, not grown");
        let returner = HostId(8);
        assert_eq!(engine.partition().shard_of(returner), Some(1));
        assert!(report.shard_reports[1].is_some());
        assert_eq!(engine.assignment().unwrap().products_at(returner).len(), 1);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
        assert_eq!(engine.partition_recomputes(), 0);
        let _ = costs_before;
    }

    #[test]
    fn rejected_batch_leaves_master_and_shards_untouched() {
        let mut engine = zoned(2, 6, 17);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let p = engine
            .network()
            .host(HostId(1))
            .unwrap()
            .candidates_for(os)
            .unwrap()[0];
        let revision = engine.revision();
        let shard0 = engine.shard_network(0).clone();
        let assignment_before = engine.assignment().unwrap().clone();
        let err = engine
            .apply_batch(&[
                NetworkDelta::fix_slot(HostId(1), os, p),
                NetworkDelta::add_link(HostId(2), HostId(2)), // self-loop
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: Some(0),
                index: 1,
                ..
            }
        ));
        assert_eq!(engine.revision(), revision);
        assert_eq!(engine.shard_network(0), &shard0, "no shard saw the batch");
        // Regression: the assignment must survive a rejected burst too — an
        // early `self.last.take()` used to leak it, degrading the next
        // apply into a cold solve.
        assert_eq!(engine.assignment(), Some(&assignment_before));

        // A slot-only burst rejected mid-batch exercises the fast path's
        // shard-side validation (no master staging); same contract, and
        // the reported index maps back to the original batch position.
        let other = engine
            .network()
            .host(HostId(1))
            .unwrap()
            .candidates_for(os)
            .unwrap()[1];
        let err = engine
            .apply_batch(&[
                NetworkDelta::fix_slot(HostId(1), os, p),
                // After the fix, `other` is no longer a candidate.
                NetworkDelta::fix_slot(HostId(1), os, other),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: Some(0),
                index: 1,
                cause: netmodel::Error::NotACandidate { .. },
            }
        ));
        assert_eq!(engine.revision(), revision);
        assert_eq!(engine.shard_network(0), &shard0);
        assert_eq!(engine.assignment(), Some(&assignment_before));

        // A failing cross-shard link delta is owned by the master, not any
        // shard: the attribution is `None`. (Whichever of the two add_links
        // is the duplicate depends on the generated gateways; the shape is
        // what matters.)
        let err = engine
            .apply_batch(&[
                NetworkDelta::add_link(HostId(1), HostId(7)),
                NetworkDelta::add_link(HostId(1), HostId(7)),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: None,
                cause: netmodel::Error::DuplicateLink(..),
                ..
            }
        ));
        assert_eq!(engine.revision(), revision);
    }

    #[test]
    fn remove_host_tombstones_across_views() {
        let mut engine = zoned(2, 6, 23);
        engine.solve().unwrap();
        // Remove an interior zone-1 host.
        let victim = (6..12u32)
            .map(HostId)
            .find(|&h| !engine.partition().is_boundary(h))
            .unwrap();
        let report = engine.apply(&NetworkDelta::remove_host(victim)).unwrap();
        assert!(engine.network().host(victim).unwrap().is_removed());
        let (shard, local) = (
            1usize,
            engine.shards[1]
                .to_global
                .iter()
                .position(|&g| g == victim)
                .unwrap(),
        );
        assert!(engine
            .shard_network(shard)
            .host(HostId(local as u32))
            .unwrap()
            .is_removed());
        assert!(report.shard_reports[1].is_some());
        assert!(engine.assignment().unwrap().products_at(victim).is_empty());
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
    }

    #[test]
    fn single_zone_degenerates_to_the_unsharded_engine() {
        let g = netmodel::topology::generate(
            &netmodel::topology::RandomNetworkConfig {
                hosts: 18,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            31,
        );
        let mut sharded =
            ShardedEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        let mut single = DiversityEngine::new(g.network, g.catalog, g.similarity);
        let sr = sharded.solve().unwrap();
        let br = single.solve().unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sr.rounds, 0, "no cross links, no coordination");
        assert!((sr.objective - br.objective_after).abs() < 1e-9);
        assert_eq!(sharded.assignment(), single.assignment());
    }

    #[test]
    fn objective_is_monotone_across_a_coordinated_stream() {
        let mut engine = zoned(3, 8, 41);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service1").unwrap();
        for h in [1u32, 9, 17, 3, 11] {
            let host = HostId(h);
            let p = engine
                .network()
                .host(host)
                .unwrap()
                .candidates_for(os)
                .unwrap()[0];
            let report = engine.apply(&NetworkDelta::fix_slot(host, os, p)).unwrap();
            assert!(
                report.improvement().unwrap() >= -1e-9,
                "step at {host} regressed on carrying forward"
            );
            let full = full_model_objective(&engine, engine.assignment().unwrap());
            assert!((full - report.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn report_display_is_total() {
        let mut engine = two_host_gateway();
        let report = engine.solve().unwrap();
        let text = report.to_string();
        assert!(text.contains("objective"));
        assert!(text.contains("rounds") || text.contains("boundary"));
    }
}
