//! Sharded serving: one [`DiversityEngine`] per zone, coordinated at the
//! boundary.
//!
//! [`crate::engine::DiversityEngine`] owns one network. Real deployments —
//! the paper's case study included — are *zoned*: a Corporate sub-network
//! and a Control sub-network joined by a handful of firewall-mediated
//! links. [`ShardedEngine`] exploits that shape:
//!
//! * the network is partitioned by zone
//!   ([`netmodel::partition::partition_by_zone`]) into N shards, each a
//!   full [`DiversityEngine`] over the zone's induced sub-network, plus an
//!   explicit **boundary set** — the hosts with cross-shard links,
//! * delta bursts are routed to the owning shard(s): a burst confined to
//!   one zone pays that shard's rebuild and localized re-solve only, on a
//!   network a fraction of the full size — and bursts spanning shards are
//!   absorbed by the owners *in parallel* (`std::thread::scope`),
//! * cross-shard links live in **no** shard's model. They are accounted
//!   for by the **boundary-coordination loop**: each round, every shard
//!   with boundary hosts builds a [`mrf::local::condition_submodel`] of
//!   its boundary region (interior labels frozen and folded into unaries),
//!   folds the cross-shard edge costs against its neighbors' *current*
//!   boundary labels into the same unaries, and re-solves that small
//!   submodel — all shards in parallel — and the proposals are then
//!   spliced back one shard at a time, each **accepted only if the global
//!   objective improves**. Rounds repeat until no proposal is accepted or
//!   [`ShardedEngine::with_max_rounds`] is reached.
//!
//! The accept-only-if-better splice is what makes the loop *monotone*: the
//! global objective (shard model energies + cross-link similarity residual)
//! never increases during coordination, and since each accepted splice
//! strictly decreases it over a finite labeling space, the loop reaches a
//! fixpoint — a labeling no single shard can improve given the others'
//! boundary labels — in finitely many rounds (the round cap bounds the
//! worst case; [`ShardReport::rounds`] says when it bit).
//!
//! The coordination loop is *skipped* entirely when it cannot matter: no
//! cross-shard links, or a burst that neither changed any boundary host's
//! label nor touched a boundary host nor rewired a cross link. That skip is
//! what keeps an interior-confined burst as cheap as its owning shard.
//!
//! # Objective decomposition
//!
//! For any assignment `α`, the full-network objective decomposes exactly:
//!
//! ```text
//! E_full(α) = Σ_shards (E_shard(α|shard) + base_shard) + Σ_cross-links sim(α)
//! ```
//!
//! because every unary, every intra-shard edge and every folded fixed-slot
//! cost appears in exactly one shard model, and every cross-shard link
//! appears in exactly one residual term. [`ShardReport::objective`] is that
//! quantity — directly comparable to
//! [`crate::engine::ReassignmentReport::objective_after`] on the unsharded
//! engine.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrf::ils::{Ils, IlsOptions};
use mrf::model::{MrfBuilder, MrfModel, VarId};
use mrf::solver::{MapSolver, SolveControl};

use netmodel::assignment::Assignment;
use netmodel::catalog::{Catalog, ProductSimilarity};
use netmodel::delta::NetworkDelta;
use netmodel::network::Network;
use netmodel::partition::{extract_shard, partition_by_zone, ZonePartition};
use netmodel::HostId;

use crate::energy::SlotBinding;
use crate::engine::{DiversityEngine, ReassignmentReport};
use crate::optimizer::SolverKind;
use crate::{Error, Result};

/// Default cap on boundary-coordination rounds per step. Coordination
/// normally converges in one or two rounds (a boundary label flips, the
/// neighbor re-responds, done); the cap bounds pathological ping-pong on
/// frustrated boundaries.
pub const DEFAULT_COORDINATION_ROUNDS: usize = 8;

/// Kick budget of the default Strong-pass coordinator (a bounded ILS).
/// The Strong pass doubles as the post-TRW-S polish stage: per-shard
/// message-passing decodes leave a primal gap that iterated local search
/// closes, so the sharded fixpoint typically lands *below* a plain
/// single-engine solve, at a bounded one-time cost per cold solve or
/// cross-topology change.
pub const DEFAULT_COORDINATOR_KICKS: usize = 20;

/// What one sharded step (a delta burst, or an explicit solve) did.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The master-network revision this report corresponds to.
    pub revision: u64,
    /// Number of deltas the step absorbed (0 for an explicit solve).
    pub deltas_applied: usize,
    /// Indices of the shards whose sub-network the burst mutated, in shard
    /// order (empty for an explicit solve and for cross-link-only bursts).
    pub shards_touched: Vec<usize>,
    /// Per-shard engine reports for this step (`None` for shards the step
    /// did not re-solve locally).
    pub shard_reports: Vec<Option<ReassignmentReport>>,
    /// Wall-clock time each shard spent in its local step (`ZERO` for
    /// shards that did no local work). Shards run in parallel: the step's
    /// local-solve latency is the *maximum*, not the sum.
    pub per_shard_solve: Vec<Duration>,
    /// Boundary-coordination rounds run (0: coordination was skipped or
    /// unnecessary).
    pub rounds: usize,
    /// Boundary hosts whose product assignment changed during coordination,
    /// summed over rounds.
    pub boundary_flips: usize,
    /// Size of the boundary set after the step.
    pub boundary_hosts: usize,
    /// Number of cross-shard links after the step.
    pub cross_links: usize,
    /// Global objective of the carried-forward assignment (the old products
    /// projected onto the new network; what a non-reoptimizing deployment
    /// would run). `None` on the first solve.
    pub objective_before: Option<f64>,
    /// Global objective after local re-solves and coordination (see module
    /// docs for the decomposition).
    pub objective: f64,
    /// The carried-forward global assignment itself (`None` on the first
    /// solve).
    pub carried: Option<Assignment>,
    /// Wall-clock time of the coordination loop (zero when skipped).
    pub coordination_wall: Duration,
    /// Wall-clock time of the whole step.
    pub total_wall: Duration,
}

impl ShardReport {
    /// How much the step improved on carrying the old assignment forward
    /// (`None` on the first solve). Non-negative: local refinement and
    /// coordination both only ever accept improvements.
    pub fn improvement(&self) -> Option<f64> {
        self.objective_before.map(|b| b - self.objective)
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rev {:>4} objective {:>9.4} | {} deltas -> shards {:?} | {} rounds, {} boundary flips | {:?}",
            self.revision,
            self.objective,
            self.deltas_applied,
            self.shards_touched,
            self.rounds,
            self.boundary_flips,
            self.total_wall,
        )
    }
}

/// One shard: a per-zone engine plus the local→global host-id mapping.
struct Shard {
    engine: DiversityEngine,
    /// Local host id → master host id (index = local id).
    to_global: Vec<HostId>,
}

/// How hard a step's boundary coordination works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordinationMode {
    /// Nothing the step did can have leaked across shards: evaluate the
    /// objective, run no rounds.
    Skip,
    /// Boundary labels moved but the cross structure did not: proposals
    /// re-solve only the conditioned boundary region (cheap, the
    /// steady-state serving path).
    Light,
    /// The cross structure changed or the engine is solving from cold:
    /// proposals run [`MapSolver::refine_local`] on the shard's *full*
    /// cross-augmented model, free to expand as far as flips carry
    /// (expensive, the quality path).
    Strong,
}

/// A zone-sharded diversity service over one evolving network (module
/// docs).
///
/// The sharded engine is **unconstrained**: constraint sets are scoped to
/// the single-engine pipeline ([`DiversityEngine::with_constraints`]) —
/// remapping global constraint scopes into shard-local ones is future work.
pub struct ShardedEngine {
    master: Network,
    catalog: Catalog,
    similarity: ProductSimilarity,
    partition: ZonePartition,
    shards: Vec<Shard>,
    /// Master host id → (shard index, local host id). Total: every master
    /// host is owned by exactly one shard.
    locator: Vec<(usize, HostId)>,
    coordinator: Arc<dyn MapSolver>,
    max_rounds: usize,
    budget: Option<Duration>,
    /// The composed global assignment of the last step.
    last: Option<Assignment>,
    /// Cached per-shard objective (model energy + base) of the current
    /// labeling — kept in sync by every step so the global objective is a
    /// sum plus the cross residual, not an O(model) re-encode per burst.
    shard_objectives: Vec<f64>,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("revision", &self.master.revision())
            .field("hosts", &self.master.host_count())
            .field("shards", &self.shards.len())
            .field("boundary_hosts", &self.partition.boundary().len())
            .field("cross_links", &self.partition.cross_links().len())
            .field("solved", &self.last.is_some())
            .finish()
    }
}

/// What routing one delta burst produced: the per-shard local sub-batches
/// plus the shard/local-id assignments of hosts the burst adds.
struct RoutePlan {
    per_shard: Vec<Vec<NetworkDelta>>,
    /// For each shard, the position in the *original* batch of each routed
    /// delta — how a shard-local rejection maps back to the caller's
    /// indices.
    per_shard_indices: Vec<Vec<usize>>,
    /// `(shard, local id)` per added host, in global-id order starting at
    /// the pre-batch master host count.
    new_hosts: Vec<(usize, HostId)>,
}

impl ShardedEngine {
    /// Creates a sharded engine over `network`, one shard per distinct zone
    /// label (hosts without a label form one implicit shard). Construction
    /// is lazy like [`DiversityEngine::new`]: shard models are built at the
    /// first [`ShardedEngine::solve`] or [`ShardedEngine::apply_batch`].
    ///
    /// A single-zone network degenerates to one shard with an empty
    /// boundary — the coordination loop never runs and results match the
    /// unsharded engine exactly.
    pub fn new(network: Network, catalog: Catalog, similarity: ProductSimilarity) -> ShardedEngine {
        let partition = partition_by_zone(&network);
        let mut locator = vec![(usize::MAX, HostId(0)); network.host_count()];
        let mut shards = Vec::with_capacity(partition.shard_count());
        for (idx, zone_shard) in partition.shards().iter().enumerate() {
            let view = extract_shard(&network, &zone_shard.members);
            for (local, &global) in view.to_global.iter().enumerate() {
                locator[global.index()] = (idx, HostId(local as u32));
            }
            shards.push(Shard {
                engine: DiversityEngine::new(view.network, catalog.clone(), similarity.clone()),
                to_global: view.to_global,
            });
        }
        let shard_count = shards.len();
        let mut engine = ShardedEngine {
            master: network,
            catalog,
            similarity,
            partition,
            shards,
            locator,
            coordinator: Arc::new(Ils::new(IlsOptions {
                kicks: DEFAULT_COORDINATOR_KICKS,
                ..IlsOptions::default()
            })),
            max_rounds: DEFAULT_COORDINATION_ROUNDS,
            budget: None,
            last: None,
            shard_objectives: vec![0.0; shard_count],
        };
        engine.refresh_pinned();
        engine
    }

    /// Re-pins every shard's boundary hosts against local warm re-solves:
    /// a shard engine cannot value the cross-shard edges its boundary
    /// hosts sit on, so only the coordination loop may move them (see
    /// [`DiversityEngine::set_pinned_hosts`]). Called whenever the
    /// partition changes.
    fn refresh_pinned(&mut self) {
        for s in 0..self.shards.len() {
            let pinned: Vec<HostId> = self
                .partition
                .boundary_of_shard(s)
                .map(|g| self.locator[g.index()].1)
                .collect();
            self.shards[s].engine.set_pinned_hosts(pinned);
        }
    }

    /// Caps the boundary-coordination rounds per step (default
    /// [`DEFAULT_COORDINATION_ROUNDS`]). `0` disables coordination
    /// entirely — shards then ignore cross-shard links, trading objective
    /// quality for latency.
    pub fn with_max_rounds(mut self, rounds: usize) -> ShardedEngine {
        self.max_rounds = rounds;
        self
    }

    /// Sets a wall-clock budget for each shard (re-)solve and each
    /// coordination round's proposal solves.
    pub fn with_time_budget(mut self, budget: Duration) -> ShardedEngine {
        self.budget = Some(budget);
        self.map_engines(|e| e.with_time_budget(budget))
    }

    /// Replaces every shard's cold-start solver (see
    /// [`DiversityEngine::with_solver`]).
    pub fn with_solver(self, kind: SolverKind) -> ShardedEngine {
        self.map_engines(|e| e.with_solver(kind.clone()))
    }

    /// Sets the k-hop locality of every shard's warm re-solves (see
    /// [`DiversityEngine::with_locality`]).
    pub fn with_locality(self, k_hops: Option<usize>) -> ShardedEngine {
        self.map_engines(|e| e.with_locality(k_hops))
    }

    /// Replaces the solver that refines *Strong* coordination proposals
    /// (default: a bounded ILS, [`DEFAULT_COORDINATOR_KICKS`], whose
    /// refinement both responds to cross-shard costs and closes the primal
    /// gap the shards' TRW-S decodes leave). Light steady-state proposals
    /// always use a greedy boundary sweep — they sit on every burst's
    /// serving path.
    pub fn with_coordinator(mut self, coordinator: Box<dyn MapSolver>) -> ShardedEngine {
        self.coordinator = Arc::from(coordinator);
        self
    }

    fn map_engines(mut self, f: impl Fn(DiversityEngine) -> DiversityEngine) -> ShardedEngine {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| Shard {
                engine: f(s.engine),
                to_global: s.to_global,
            })
            .collect();
        self
    }

    /// The master network (all zones, cross-shard links included).
    pub fn network(&self) -> &Network {
        &self.master
    }

    /// The catalog backing delta validation.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The similarity matrix in use.
    pub fn similarity(&self) -> &ProductSimilarity {
        &self.similarity
    }

    /// The current zone partition (boundary set, cross links, ownership).
    pub fn partition(&self) -> &ZonePartition {
        &self.partition
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The master-network revision.
    pub fn revision(&self) -> u64 {
        self.master.revision()
    }

    /// The sub-network one shard serves (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_network(&self, shard: usize) -> &Network {
        self.shards[shard].engine.network()
    }

    /// The composed global MAP assignment, if any step has run. Indexed by
    /// master host ids.
    pub fn assignment(&self) -> Option<&Assignment> {
        self.last.as_ref()
    }

    /// Solves every shard (cold the first time, warm afterwards) — in
    /// parallel — and coordinates the boundary.
    ///
    /// # Errors
    ///
    /// Shard model construction errors (see [`DiversityEngine::solve`];
    /// with no constraints, none arise for validated networks).
    pub fn solve(&mut self) -> Result<ShardReport> {
        let start = Instant::now();
        let carried = self.last.clone();
        let cached_previous = self.shard_objectives.clone();
        let (reports, walls) = self.run_shards(None).map_err(|(_, e)| e)?;
        self.refresh_cached_objectives(&reports);
        let current = self.compose();
        let (coordinated, coordination_changed, telemetry) =
            self.coordinate(current, CoordinationMode::Strong, None);
        self.commit_assignment(coordinated, coordination_changed);
        let objective_before = carried
            .as_ref()
            .map(|c| self.carried_objective(&cached_previous, &reports, c));
        Ok(self.report(
            0,
            Vec::new(),
            reports,
            walls,
            telemetry,
            objective_before,
            carried,
            start,
        ))
    }

    /// Applies one delta end to end (routing, local re-solve, boundary
    /// coordination). Equivalent to a one-delta
    /// [`ShardedEngine::apply_batch`], except that validation errors
    /// surface unwrapped (no [`Error::ShardRejected`] envelope).
    ///
    /// # Errors
    ///
    /// See [`ShardedEngine::apply_batch`].
    pub fn apply(&mut self, delta: &NetworkDelta) -> Result<ShardReport> {
        self.apply_batch(std::slice::from_ref(delta))
            .map_err(|e| match e {
                Error::ShardRejected { cause, .. } => Error::Model(cause),
                Error::Model(m) => Error::Model(m.into_batch_cause()),
                other => other,
            })
    }

    /// Absorbs a delta burst: validates it against the master network
    /// (all-or-nothing), routes each delta to its owning shard (cross-shard
    /// link deltas update the master and the partition only), lets the
    /// touched shards absorb their sub-batches in parallel, and runs the
    /// boundary-coordination loop when the burst could have affected other
    /// shards (module docs).
    ///
    /// An empty batch degenerates to [`ShardedEngine::solve`].
    ///
    /// # Errors
    ///
    /// * [`Error::ShardRejected`] — a delta failed validation, reported
    ///   with its position in the caller's burst and the id of the shard
    ///   that owns it (`None` for cross-shard link deltas); the engine is
    ///   untouched.
    /// * [`Error::UnknownZone`] — an `AddHost` delta names a zone no shard
    ///   owns; the engine is untouched.
    pub fn apply_batch(&mut self, deltas: &[NetworkDelta]) -> Result<ShardReport> {
        if deltas.is_empty() {
            return self.solve();
        }
        if self.last.is_none() {
            // Establish per-shard models and a carried baseline first, so
            // the burst itself is measured as a warm absorption.
            self.solve()?;
        }
        let start = Instant::now();
        let slot_only = deltas.iter().all(|d| {
            matches!(
                d,
                NetworkDelta::FixSlot { .. }
                    | NetworkDelta::UnfixSlot { .. }
                    | NetworkDelta::ExtendCandidates { .. }
            )
        });
        let plan = self.route(deltas)?;
        let cached_previous = self.shard_objectives.clone();
        let old_cross = self.partition.cross_links().to_vec();
        let old_boundary_rows = self.boundary_rows();

        let shards_touched: Vec<usize> = plan
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(s, _)| s)
            .collect();
        let (reports, walls, effect) = if slot_only {
            // Fast path: slot deltas never change topology or zones, and
            // each one is validated transactionally by its owning shard —
            // the master applies in place afterwards, skipping the
            // full-network staging clone (the dominant fixed cost on the
            // burst serving path).
            if shards_touched.len() > 1 {
                // Pre-validate every sub-batch so a late shard rejection
                // cannot leave an earlier shard committed.
                for &s in &shards_touched {
                    let mut scratch = self.shards[s].engine.network().clone();
                    if let Err(e) = scratch.apply_all(&plan.per_shard[s], &self.catalog) {
                        return Err(remap_shard_error(&plan, s, Error::Model(e)));
                    }
                }
            }
            let (reports, walls) = self
                .run_shards(Some(&plan.per_shard))
                .map_err(|(s, e)| remap_shard_error(&plan, s, e))?;
            let effect = self
                .master
                .apply_all(deltas, &self.catalog)
                .expect("slot burst was validated by its owning shards");
            (reports, walls, effect)
        } else {
            let mut staged = self.master.clone();
            let effect = staged
                .apply_all(deltas, &self.catalog)
                .map_err(|e| attribute_master_error(&plan, e))?;
            let (reports, walls) = self
                .run_shards(Some(&plan.per_shard))
                .map_err(|(s, e)| remap_shard_error(&plan, s, e))?;
            self.master = staged;
            (reports, walls, effect)
        };
        // Every fallible step is behind us: from here on the burst commits.
        // Move the previous assignment out instead of cloning it — it
        // becomes the base of the carried composition, and `self.last` is
        // rewritten by `commit_assignment` at the end of the step. (Taking
        // it any earlier would leak it on a rejected burst, breaking the
        // engine-is-untouched error contract.)
        let carried_previous = self.last.take();
        self.refresh_cached_objectives(&reports);

        // Commit id mappings and the partition (the partition is a pure
        // function of links and zones — slot-only bursts reuse it).
        for (i, &(shard, local)) in plan.new_hosts.iter().enumerate() {
            debug_assert_eq!(self.shards[shard].to_global.len(), local.index());
            let global = HostId(self.locator.len() as u32);
            debug_assert_eq!(
                global.index(),
                self.master.host_count() - plan.new_hosts.len() + i
            );
            self.locator.push((shard, local));
            self.shards[shard].to_global.push(global);
        }
        if effect.topology_changed {
            self.partition = partition_by_zone(&self.master);
            self.refresh_pinned();
        }

        // Coordinate only when the burst could have leaked across shards —
        // and only as hard as the leak warrants: a rewired cross structure
        // gets the full-model Strong pass, while a mere boundary-label
        // wobble (a local re-solve moving a boundary host) gets the cheap
        // conditioned-region Light pass.
        let current = self.compose();
        let cross_changed = old_cross != self.partition.cross_links();
        let touched_boundary = effect
            .touched
            .iter()
            .any(|&h| self.partition.is_boundary(h));
        let boundary_label_changed = {
            let new_rows = self.boundary_rows_of(&current);
            new_rows != old_boundary_rows
        };
        // Boundary hosts are pinned against local re-solves, so their own
        // labels only move here — but a re-solve changing their *interior
        // neighbors* (or a structural touch at the boundary itself) shifts
        // what that shard's boundary best response is. `stale` flags
        // exactly those shards, per shard.
        let stale: Vec<bool> = {
            let mut changed = std::collections::HashSet::new();
            for (s, report) in reports.iter().enumerate() {
                let Some(report) = report else { continue };
                for &local in &report.changed_hosts {
                    changed.insert(self.shards[s].to_global[local.index()]);
                }
            }
            (0..self.shards.len())
                .map(|s| {
                    self.partition.boundary_of_shard(s).any(|b| {
                        effect.touched.contains(&b)
                            || self.master.neighbors(b).iter().any(|n| changed.contains(n))
                    })
                })
                .collect()
        };
        let mode = if cross_changed {
            CoordinationMode::Strong
        } else if touched_boundary || boundary_label_changed || stale.iter().any(|&s| s) {
            CoordinationMode::Light
        } else {
            CoordinationMode::Skip
        };
        // A trigger outside the per-shard stale flags (a boundary row that
        // moved structurally) re-opens every shard.
        let stale_filter = (!(touched_boundary || boundary_label_changed)
            && mode == CoordinationMode::Light)
            .then_some(stale.as_slice());
        let (coordinated, coordination_changed, telemetry) =
            self.coordinate(current, mode, stale_filter);
        self.commit_assignment(coordinated, coordination_changed);

        // The carried composition: touched shards contribute their
        // projected old assignment, untouched shards their (unchanged)
        // previous one.
        let carried = carried_previous.map(|previous| {
            let mut rows = previous.into_slots();
            rows.resize(self.master.host_count(), Vec::new());
            for (s, report) in reports.iter().enumerate() {
                let Some(report) = report else { continue };
                if let Some(shard_carried) = &report.carried {
                    for (local, &global) in self.shards[s].to_global.iter().enumerate() {
                        rows[global.index()] =
                            shard_carried.products_at(HostId(local as u32)).to_vec();
                    }
                }
            }
            Assignment::from_slots(rows)
        });
        let objective_before = carried
            .as_ref()
            .map(|c| self.carried_objective(&cached_previous, &reports, c));
        Ok(self.report(
            effect.applied,
            shards_touched,
            reports,
            walls,
            telemetry,
            objective_before,
            carried,
            start,
        ))
    }

    /// The global objective of any assignment over the master network:
    /// shard model energies plus the cross-link similarity residual
    /// (module docs). Meaningful once every shard has a model (i.e. after
    /// any step).
    pub fn global_objective(&self, assignment: &Assignment) -> f64 {
        let mut total = self.cross_residual(assignment);
        for (s, shard) in self.shards.iter().enumerate() {
            let energy = shard.engine.energy();
            let labels = self.encode_shard(s, assignment);
            total += energy.model().energy(&labels) + energy.base_energy();
        }
        total
    }

    fn control(&self) -> SolveControl {
        match self.budget {
            Some(budget) => SolveControl::new().with_budget(budget),
            None => SolveControl::new(),
        }
    }

    /// Syncs the cached per-shard objectives with the shards that just
    /// re-solved.
    fn refresh_cached_objectives(&mut self, reports: &[Option<ReassignmentReport>]) {
        for (s, report) in reports.iter().enumerate() {
            if let Some(report) = report {
                self.shard_objectives[s] = report.objective_after;
            }
        }
    }

    /// The global objective of the carried composition, from cached parts:
    /// shards that re-solved contribute the carried objective their own
    /// report measured; untouched shards contribute their pre-step cached
    /// objective (their model and labels did not move).
    fn carried_objective(
        &self,
        cached_previous: &[f64],
        reports: &[Option<ReassignmentReport>],
        carried: &Assignment,
    ) -> f64 {
        let mut total = self.cross_residual(carried);
        for s in 0..self.shards.len() {
            total += match &reports[s] {
                Some(report) => report.objective_before.unwrap_or(cached_previous[s]),
                None => cached_previous[s],
            };
        }
        total
    }

    /// Runs the shards' local steps in parallel: `solve()` on every shard
    /// when `batches` is `None`, `apply_batch(batch)` on shards with a
    /// non-empty sub-batch otherwise. An error is tagged with the shard it
    /// came from so the caller can map sub-batch indices back to the
    /// original burst.
    #[allow(clippy::type_complexity)]
    fn run_shards(
        &mut self,
        batches: Option<&[Vec<NetworkDelta>]>,
    ) -> std::result::Result<(Vec<Option<ReassignmentReport>>, Vec<Duration>), (usize, Error)> {
        // A burst confined to one shard needs no threads — spawn/join would
        // cost more than they buy on the serving path.
        if let Some(per_shard) = batches {
            let working: Vec<usize> = per_shard
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(s, _)| s)
                .collect();
            if let [only] = working[..] {
                let mut reports = vec![None; self.shards.len()];
                let mut walls = vec![Duration::ZERO; self.shards.len()];
                let t = Instant::now();
                let report = self.shards[only]
                    .engine
                    .apply_batch(&per_shard[only])
                    .map_err(|e| (only, e))?;
                walls[only] = t.elapsed();
                reports[only] = Some(report);
                return Ok((reports, walls));
            }
        }
        let mut outcomes: Vec<Option<(Result<ReassignmentReport>, Duration)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(s, shard)| {
                    let work: Option<Option<&[NetworkDelta]>> = match batches {
                        None => Some(None),
                        Some(per_shard) if !per_shard[s].is_empty() => {
                            Some(Some(per_shard[s].as_slice()))
                        }
                        Some(_) => None,
                    };
                    work.map(|batch| {
                        scope.spawn(move || {
                            let t = Instant::now();
                            let result = match batch {
                                None => shard.engine.solve(),
                                Some(deltas) => shard.engine.apply_batch(deltas),
                            };
                            (result, t.elapsed())
                        })
                    })
                })
                .collect();
            outcomes = handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard step does not panic")))
                .collect();
        });
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut walls = Vec::with_capacity(outcomes.len());
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some((result, wall)) => {
                    reports.push(Some(result.map_err(|e| (s, e))?));
                    walls.push(wall);
                }
                None => {
                    reports.push(None);
                    walls.push(Duration::ZERO);
                }
            }
        }
        Ok((reports, walls))
    }

    /// Splits a burst into per-shard local sub-batches (host ids
    /// remapped), leaving cross-shard link deltas to the master. Rejects
    /// unknown zones and out-of-range host references; everything else is
    /// validated by the shard (and, for structural bursts, master) apply.
    fn route(&self, deltas: &[NetworkDelta]) -> Result<RoutePlan> {
        let mut per_shard: Vec<Vec<NetworkDelta>> = vec![Vec::new(); self.shards.len()];
        let mut per_shard_indices: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut new_hosts: Vec<(usize, HostId)> = Vec::new();
        let mut next_local: Vec<u32> = self
            .shards
            .iter()
            .map(|s| s.engine.network().host_count() as u32)
            .collect();
        let base_global = self.master.host_count();
        let lookup = |h: HostId, new_hosts: &[(usize, HostId)]| -> Result<(usize, HostId)> {
            if h.index() < self.locator.len() {
                Ok(self.locator[h.index()])
            } else {
                // Hosts this very burst added, or a bogus reference.
                new_hosts
                    .get(h.index() - base_global)
                    .copied()
                    .ok_or(Error::Model(netmodel::Error::UnknownHost(h)))
            }
        };
        for (index, delta) in deltas.iter().enumerate() {
            let routed: Option<(usize, NetworkDelta)> = match delta {
                NetworkDelta::AddHost {
                    name,
                    zone,
                    services,
                    links,
                } => {
                    let shard = self
                        .partition
                        .shard_of_zone(zone.as_deref())
                        .ok_or_else(|| Error::UnknownZone { zone: zone.clone() })?;
                    // Same-shard links join the shard sub-network; links to
                    // other shards exist only in the master and surface as
                    // cross links (boundary promotion) after the commit.
                    let mut local_links = Vec::new();
                    for &peer in links {
                        let (s, local) = lookup(peer, &new_hosts)?;
                        if s == shard {
                            local_links.push(local);
                        }
                    }
                    new_hosts.push((shard, HostId(next_local[shard])));
                    next_local[shard] += 1;
                    Some((
                        shard,
                        NetworkDelta::AddHost {
                            name: name.clone(),
                            zone: zone.clone(),
                            services: services.clone(),
                            links: local_links,
                        },
                    ))
                }
                NetworkDelta::RemoveHost { host } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((s, NetworkDelta::remove_host(local)))
                }
                NetworkDelta::AddLink { a, b } | NetworkDelta::RemoveLink { a, b } => {
                    let (sa, la) = lookup(*a, &new_hosts)?;
                    let (sb, lb) = lookup(*b, &new_hosts)?;
                    if sa == sb {
                        Some((
                            sa,
                            match delta {
                                NetworkDelta::AddLink { .. } => NetworkDelta::add_link(la, lb),
                                _ => NetworkDelta::remove_link(la, lb),
                            },
                        ))
                    } else {
                        None
                    }
                }
                NetworkDelta::FixSlot {
                    host,
                    service,
                    product,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((s, NetworkDelta::fix_slot(local, *service, *product)))
                }
                NetworkDelta::UnfixSlot {
                    host,
                    service,
                    candidates,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((
                        s,
                        NetworkDelta::unfix_slot(local, *service, candidates.clone()),
                    ))
                }
                NetworkDelta::ExtendCandidates {
                    host,
                    service,
                    products,
                } => {
                    let (s, local) = lookup(*host, &new_hosts)?;
                    Some((
                        s,
                        NetworkDelta::extend_candidates(local, *service, products.clone()),
                    ))
                }
            };
            if let Some((s, local_delta)) = routed {
                per_shard[s].push(local_delta);
                per_shard_indices[s].push(index);
            }
        }
        Ok(RoutePlan {
            per_shard,
            per_shard_indices,
            new_hosts,
        })
    }

    /// Composes the global assignment from the shards' current ones.
    fn compose(&self) -> Assignment {
        let mut rows: Vec<Vec<netmodel::ProductId>> = vec![Vec::new(); self.master.host_count()];
        for shard in &self.shards {
            let assignment = shard
                .engine
                .assignment()
                .expect("compose runs only after every shard has solved");
            for (local, &global) in shard.to_global.iter().enumerate() {
                rows[global.index()] = assignment.products_at(HostId(local as u32)).to_vec();
            }
        }
        Assignment::from_slots(rows)
    }

    /// Writes the step's global assignment back: the whole into
    /// `self.last`, and — only when coordination actually changed labels —
    /// each shard's slice into its engine so the next warm start continues
    /// from the coordinated labeling (when nothing changed, the engines
    /// already hold exactly these labels).
    fn commit_assignment(&mut self, global: Assignment, coordination_changed: bool) {
        if coordination_changed {
            for shard in &mut self.shards {
                let rows: Vec<Vec<netmodel::ProductId>> = shard
                    .to_global
                    .iter()
                    .map(|&g| global.products_at(g).to_vec())
                    .collect();
                shard.engine.set_assignment(Assignment::from_slots(rows));
            }
        }
        self.last = Some(global);
    }

    /// The boundary hosts' current product rows (the state compared across
    /// a step to decide whether coordination is needed).
    fn boundary_rows(&self) -> Vec<(HostId, Vec<netmodel::ProductId>)> {
        match &self.last {
            Some(assignment) => self.boundary_rows_of(assignment),
            None => Vec::new(),
        }
    }

    fn boundary_rows_of(&self, assignment: &Assignment) -> Vec<(HostId, Vec<netmodel::ProductId>)> {
        self.partition
            .boundary()
            .iter()
            .map(|&h| (h, assignment.products_at(h).to_vec()))
            .collect()
    }

    /// Encodes `assignment`'s products at shard `s`'s hosts into that
    /// shard's model labels.
    fn encode_shard(&self, s: usize, assignment: &Assignment) -> Vec<usize> {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let mut labels = vec![0usize; energy.model().var_count()];
        for (local, host_slots) in energy.slots().iter().enumerate() {
            let global = shard.to_global[local];
            let row = assignment.products_at(global);
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    labels[var.0] = candidates
                        .iter()
                        .position(|p| Some(p) == row.get(slot))
                        .expect("assignment product is a current candidate");
                }
            }
        }
        labels
    }

    /// Σ over cross-shard links of the assignment-level similarity — the
    /// part of the objective no shard model sees.
    fn cross_residual(&self, assignment: &Assignment) -> f64 {
        self.partition
            .cross_links()
            .iter()
            .map(|&(a, b)| assignment.edge_similarity(&self.master, &self.similarity, a, b))
            .sum()
    }

    /// The shard's boundary slot variables with what the cross-cost fold
    /// needs to know about each: the owning (global) host, the slot's
    /// service, and its candidate list.
    #[allow(clippy::type_complexity)]
    fn boundary_entries(
        &self,
        s: usize,
    ) -> Vec<(
        VarId,
        HostId,
        netmodel::ServiceId,
        Arc<Vec<netmodel::ProductId>>,
    )> {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let mut entries = Vec::new();
        for global in self.partition.boundary_of_shard(s) {
            let (_, local) = self.locator[global.index()];
            let Ok(host) = shard.engine.network().host(local) else {
                continue;
            };
            let Some(host_slots) = energy.slots().get(local.index()) else {
                continue;
            };
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    entries.push((
                        *var,
                        global,
                        host.services()[slot].service(),
                        Arc::clone(candidates),
                    ));
                }
            }
        }
        entries
    }

    /// A Light coordination proposal: a greedy masked sweep *in place* on
    /// the shard model, seeded at the boundary variables, with the
    /// cross-shard edge costs against the neighbors' frozen labels added
    /// as per-variable cost addons. Flips activate intra-shard neighbors
    /// (which carry no addon — their cross cost is zero by definition of
    /// the boundary), so the sweep expands exactly as far as the response
    /// wave carries. No submodel, no allocation beyond the label vector:
    /// cheap enough to run on every burst.
    fn light_proposal(
        &self,
        s: usize,
        start: &[usize],
        global: &Assignment,
        boundary: &[(
            VarId,
            HostId,
            netmodel::ServiceId,
            Arc<Vec<netmodel::ProductId>>,
        )],
    ) -> Vec<usize> {
        let shard = &self.shards[s];
        let model = shard.engine.energy().model();
        let n = model.var_count();
        let addon = self.cross_addons(n, global, boundary);
        let mut labels = start.to_vec();
        let mut active = vec![false; n];
        for (var, ..) in boundary {
            if var.0 < n {
                active[var.0] = true;
            }
        }
        let mut cost = vec![0.0f64; model.max_labels()];
        const LIGHT_SWEEPS: usize = 8;
        for _ in 0..LIGHT_SWEEPS {
            let mut changed = false;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                let l = model.labels(VarId(i));
                cost[..l].copy_from_slice(model.unary(VarId(i)));
                for &eidx in model.incident_edges(VarId(i)) {
                    let edge = model.edges()[eidx as usize];
                    if edge.a().0 == i {
                        let xb = labels[edge.b().0];
                        for (xa, c) in cost[..l].iter_mut().enumerate() {
                            *c += model.edge_cost(&edge, xa, xb);
                        }
                    } else {
                        let xa = labels[edge.a().0];
                        for (xb, c) in cost[..l].iter_mut().enumerate() {
                            *c += model.edge_cost(&edge, xa, xb);
                        }
                    }
                }
                if let Some(extra) = &addon[i] {
                    for (x, c) in cost[..l].iter_mut().enumerate() {
                        *c += extra[x];
                    }
                }
                let best = cost[..l]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(x, _)| x)
                    .unwrap_or(0);
                if best != labels[i] && cost[best] < cost[labels[i]] {
                    labels[i] = best;
                    changed = true;
                    for &eidx in model.incident_edges(VarId(i)) {
                        let edge = model.edges()[eidx as usize];
                        let other = if edge.a().0 == i {
                            edge.b().0
                        } else {
                            edge.a().0
                        };
                        active[other] = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        labels
    }

    /// The cross-shard cost addon per variable of a shard, against the
    /// neighbors' current (frozen) labels in `global`: for each boundary
    /// variable, the extra unary cost each candidate pays over that host's
    /// cross links. The single source of truth for the residual fold — the
    /// Strong augmentation and the Light sweep must optimize the same
    /// objective or the accept-only-if-better invariant silently breaks.
    #[allow(clippy::type_complexity)]
    fn cross_addons(
        &self,
        var_count: usize,
        global: &Assignment,
        boundary: &[(
            VarId,
            HostId,
            netmodel::ServiceId,
            Arc<Vec<netmodel::ProductId>>,
        )],
    ) -> Vec<Option<Vec<f64>>> {
        let mut addon: Vec<Option<Vec<f64>>> = vec![None; var_count];
        for (var, ghost, service, candidates) in boundary {
            let mut extra = vec![0.0; candidates.len()];
            let mut any = false;
            for &(a, b) in self.partition.cross_links() {
                let peer = if a == *ghost {
                    b
                } else if b == *ghost {
                    a
                } else {
                    continue;
                };
                let Some(pb) = global.product_for(&self.master, peer, *service) else {
                    continue;
                };
                for (label, &candidate) in candidates.iter().enumerate() {
                    extra[label] += self.similarity.get(candidate, pb);
                }
                any = true;
            }
            if any {
                addon[var.0] = Some(extra);
            }
        }
        addon
    }

    /// Builds shard `s`'s *full* model with the cross-shard edge costs
    /// against the neighbors' current labels folded into the boundary
    /// variables' unaries — the Strong coordination path's model, on which
    /// [`MapSolver::refine_local`] is free to expand from the boundary as
    /// far as flips carry (up to a full shard sweep).
    fn augmented_full_model(&self, s: usize, global: &Assignment) -> MrfModel {
        let shard = &self.shards[s];
        let energy = shard.engine.energy();
        let model = energy.model();
        let addons = self.cross_addons(model.var_count(), global, &self.boundary_entries(s));
        let mut builder = MrfBuilder::new();
        // Mirror the shard model's slot layout so labelings transfer
        // verbatim; tombstoned slots become inert 1-label placeholders
        // (their label in any transferred labeling is ignored either way).
        for v in 0..model.var_count() {
            builder.add_variable(model.labels(VarId(v)).max(1));
        }
        for (v, addon) in addons.iter().enumerate() {
            if !model.is_live(VarId(v)) {
                continue;
            }
            let mut unary = model.unary(VarId(v)).to_vec();
            if let Some(extra) = addon {
                for (label, u) in unary.iter_mut().enumerate() {
                    *u += extra[label];
                }
            }
            builder
                .set_unary(VarId(v), unary)
                .expect("arity is copied from the shard model");
        }
        for (_, edge) in model.live_edges() {
            let (la, lb) = (model.labels(edge.a()), model.labels(edge.b()));
            let mut costs = Vec::with_capacity(la * lb);
            for xa in 0..la {
                for xb in 0..lb {
                    costs.push(model.edge_cost(edge, xa, xb));
                }
            }
            builder
                .add_edge_dense(edge.a(), edge.b(), costs)
                .expect("edges are copied from the shard model");
        }
        builder.build()
    }

    /// The boundary-coordination loop (module docs). Returns the (possibly
    /// improved) global assignment, whether any proposal was accepted, and
    /// `(rounds, boundary flips, wall, objective)`; syncs the cached
    /// per-shard objectives. With mode `Skip` (or no cross links, or a
    /// zero round cap) it only evaluates the objective from the cached
    /// parts. `stale`, when given, restricts the *first* round's proposals
    /// to the flagged shards — the only ones whose boundary best-response
    /// can have changed; an accepted proposal re-opens every shard for the
    /// following rounds.
    #[allow(clippy::type_complexity)]
    fn coordinate(
        &mut self,
        current: Assignment,
        mode: CoordinationMode,
        stale: Option<&[bool]>,
    ) -> (Assignment, bool, (usize, usize, Duration, f64)) {
        let wall = Instant::now();
        let mut global = current;
        if mode == CoordinationMode::Skip
            || self.partition.cross_links().is_empty()
            || self.max_rounds == 0
        {
            let objective =
                self.shard_objectives.iter().sum::<f64>() + self.cross_residual(&global);
            return (global, false, (0, 0, wall.elapsed(), objective));
        }
        let shard_count = self.shards.len();
        let mut labels: Vec<Option<Vec<usize>>> = vec![None; shard_count];
        let mut shard_energies = self.shard_objectives.clone();
        let mut residual = self.cross_residual(&global);
        let mut total: f64 = shard_energies.iter().sum::<f64>() + residual;
        let boundary_entries: Vec<_> = (0..shard_count).map(|s| self.boundary_entries(s)).collect();
        let mut rounds = 0usize;
        let mut flips = 0usize;
        let mut any_accepted = false;
        for round in 0..self.max_rounds {
            rounds += 1;
            // A fresh control per round: the configured wall-clock budget
            // bounds each round's proposal solves, not the whole loop.
            let ctl = self.control();
            let proposes = |s: usize| {
                !boundary_entries[s].is_empty() && (round > 0 || stale.is_none_or(|st| st[s]))
            };
            for s in (0..shard_count).filter(|&s| proposes(s)) {
                if labels[s].is_none() {
                    labels[s] = Some(self.encode_shard(s, &global));
                }
            }
            // Proposals: each boundary shard re-solves against its
            // neighbors' frozen labels. Strong mode refines the full
            // cross-augmented shard model on parallel threads (quality);
            // Light mode runs a greedy in-place boundary sweep inline —
            // it sits on every burst's serving path, and at that size
            // thread spawns would cost more than the work.
            let mut proposals: Vec<Option<Vec<usize>>> = vec![None; shard_count];
            match mode {
                CoordinationMode::Strong => {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..shard_count)
                            .map(|s| {
                                if !proposes(s) {
                                    return None;
                                }
                                let start_labels = labels[s].clone().expect("encoded above");
                                let global_ref = &global;
                                let coordinator = Arc::clone(&self.coordinator);
                                let ctl = ctl.clone();
                                let this = &*self;
                                let frontier: Vec<VarId> =
                                    boundary_entries[s].iter().map(|e| e.0).collect();
                                Some(scope.spawn(move || {
                                    let augmented = this.augmented_full_model(s, global_ref);
                                    coordinator
                                        .refine_local(&augmented, start_labels, &frontier, &ctl)
                                        .solution
                                        .labels()
                                        .to_vec()
                                }))
                            })
                            .collect();
                        for (s, handle) in handles.into_iter().enumerate() {
                            if let Some(handle) = handle {
                                proposals[s] =
                                    Some(handle.join().expect("proposal does not panic"));
                            }
                        }
                    });
                }
                _ => {
                    for s in 0..shard_count {
                        if !proposes(s) {
                            continue;
                        }
                        proposals[s] = Some(self.light_proposal(
                            s,
                            labels[s].as_ref().expect("encoded above"),
                            &global,
                            &boundary_entries[s],
                        ));
                    }
                }
            }
            // Sequential splice, accepted only on strict global
            // improvement — the monotonicity guarantee.
            let mut accepted = 0usize;
            for (s, proposal) in proposals.into_iter().enumerate() {
                let Some(proposal) = proposal else { continue };
                if Some(&proposal) == labels[s].as_ref() {
                    continue;
                }
                let energy = self.shards[s].engine.energy();
                let candidate_shard_energy =
                    energy.model().energy(&proposal) + energy.base_energy();
                let local_rows = energy.decode(&proposal);
                let mut candidate_rows = global.clone().into_slots();
                candidate_rows.resize(self.master.host_count(), Vec::new());
                for (local, &g) in self.shards[s].to_global.iter().enumerate() {
                    candidate_rows[g.index()] =
                        local_rows.products_at(HostId(local as u32)).to_vec();
                }
                let candidate = Assignment::from_slots(candidate_rows);
                let candidate_residual = self.cross_residual(&candidate);
                let candidate_total = total - shard_energies[s] - residual
                    + candidate_shard_energy
                    + candidate_residual;
                if candidate_total < total - 1e-12 {
                    flips += self
                        .partition
                        .boundary_of_shard(s)
                        .filter(|&h| global.products_at(h) != candidate.products_at(h))
                        .count();
                    labels[s] = Some(proposal);
                    shard_energies[s] = candidate_shard_energy;
                    residual = candidate_residual;
                    total = candidate_total;
                    global = candidate;
                    accepted += 1;
                }
            }
            if accepted == 0 {
                break;
            }
            any_accepted = true;
        }
        self.shard_objectives = shard_energies;
        (global, any_accepted, (rounds, flips, wall.elapsed(), total))
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        deltas_applied: usize,
        shards_touched: Vec<usize>,
        shard_reports: Vec<Option<ReassignmentReport>>,
        per_shard_solve: Vec<Duration>,
        telemetry: (usize, usize, Duration, f64),
        objective_before: Option<f64>,
        carried: Option<Assignment>,
        start: Instant,
    ) -> ShardReport {
        let (rounds, boundary_flips, coordination_wall, objective) = telemetry;
        ShardReport {
            revision: self.master.revision(),
            deltas_applied,
            shards_touched,
            shard_reports,
            per_shard_solve,
            rounds,
            boundary_flips,
            boundary_hosts: self.partition.boundary().len(),
            cross_links: self.partition.cross_links().len(),
            objective_before,
            objective,
            carried,
            coordination_wall,
            total_wall: start.elapsed(),
        }
    }
}

/// Maps a shard-local [`netmodel::Error::BatchRejected`] index back to the
/// caller's position in the original burst and attributes it to the
/// rejecting shard ([`Error::ShardRejected`]), so a serving queue can tell
/// *which* shard bounced a burst without replaying it.
fn remap_shard_error(plan: &RoutePlan, shard: usize, error: Error) -> Error {
    match error {
        Error::Model(netmodel::Error::BatchRejected { index, cause }) => Error::ShardRejected {
            shard: Some(shard),
            index: plan.per_shard_indices[shard]
                .get(index)
                .copied()
                .unwrap_or(index),
            cause: *cause,
        },
        other => other,
    }
}

/// Attributes a master-network staging rejection (already indexed by the
/// caller's burst positions) to the shard owning the failing delta —
/// `None` for cross-shard link deltas, which only the master applies.
fn attribute_master_error(plan: &RoutePlan, error: netmodel::Error) -> Error {
    match error {
        netmodel::Error::BatchRejected { index, cause } => Error::ShardRejected {
            shard: plan
                .per_shard_indices
                .iter()
                .position(|indices| indices.contains(&index)),
            index,
            cause: *cause,
        },
        other => Error::Model(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::catalog::Catalog;
    use netmodel::network::NetworkBuilder;
    use netmodel::topology::{generate_zoned, TopologyKind, ZonedNetworkConfig};

    fn zoned(zones: usize, hosts_per_zone: usize, seed: u64) -> ShardedEngine {
        let g = generate_zoned(
            &ZonedNetworkConfig {
                zones,
                hosts_per_zone,
                gateway_links: 2,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            seed,
        );
        ShardedEngine::new(g.network, g.catalog, g.similarity)
    }

    /// Two single-host zones joined by one cross link; one service with two
    /// products whose similarity strongly punishes agreement. Local solves
    /// cannot see the cross link, so both shards pick the (identical)
    /// unary-argmin product — only coordination can break the tie.
    fn two_host_gateway() -> ShardedEngine {
        let mut c = Catalog::new();
        let os = c.add_service("os");
        let p0 = c.add_product("p0", os).unwrap();
        let p1 = c.add_product("p1", os).unwrap();
        let mut b = NetworkBuilder::new();
        let a = b.add_host_in_zone("a", "A");
        let z = b.add_host_in_zone("z", "B");
        b.add_service(a, os, vec![p0, p1]).unwrap();
        b.add_service(z, os, vec![p0, p1]).unwrap();
        b.add_link(a, z).unwrap();
        let net = b.build(&c).unwrap();
        // sim(p,p) = 1, sim(p0,p1) = 0.1.
        let sim = netmodel::catalog::ProductSimilarity::from_dense(2, vec![1.0, 0.1, 0.1, 1.0]);
        ShardedEngine::new(net, c, sim)
    }

    fn single_engine_of(sharded: &ShardedEngine) -> DiversityEngine {
        DiversityEngine::new(
            sharded.network().clone(),
            sharded.catalog().clone(),
            sharded.similarity().clone(),
        )
    }

    /// The objective identity of the module docs: the sharded
    /// decomposition evaluated on the sharded assignment equals the full
    /// single-network model's energy on the same assignment.
    fn full_model_objective(sharded: &ShardedEngine, assignment: &Assignment) -> f64 {
        use crate::energy::build_energy;
        use netmodel::constraints::ConstraintSet;
        let energy = build_energy(
            sharded.network(),
            sharded.similarity(),
            &ConstraintSet::new(),
            crate::energy::EnergyParams::default(),
        )
        .unwrap();
        let mut labels = vec![0usize; energy.model().var_count()];
        for (host, host_slots) in energy.slots().iter().enumerate() {
            let row = assignment.products_at(HostId(host as u32));
            for (slot, binding) in host_slots.iter().enumerate() {
                if let SlotBinding::Variable { var, candidates } = binding {
                    labels[var.0] = candidates
                        .iter()
                        .position(|p| Some(p) == row.get(slot))
                        .expect("assignment product is a candidate");
                }
            }
        }
        energy.model().energy(&labels) + energy.base_energy()
    }

    #[test]
    fn coordination_breaks_the_gateway_tie() {
        let mut engine = two_host_gateway();
        let report = engine.solve().unwrap();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(report.cross_links, 1);
        assert_eq!(report.boundary_hosts, 2);
        assert!(report.rounds >= 1, "cross links must trigger coordination");
        assert!(
            report.boundary_flips >= 1,
            "one endpoint must flip away from the shared argmin"
        );
        let assignment = engine.assignment().unwrap();
        assert_ne!(
            assignment.products_at(HostId(0)),
            assignment.products_at(HostId(1)),
            "coordinated endpoints must diversify"
        );
        // Prconst × 2 + sim(p0, p1).
        assert!((report.objective - (0.02 + 0.1)).abs() < 1e-9);
        // And the decomposition matches the full single-network model.
        let full = full_model_objective(&engine, assignment);
        assert!((full - report.objective).abs() < 1e-9);
    }

    #[test]
    fn sharded_objective_matches_single_engine_within_tolerance() {
        for seed in [3u64, 7, 21] {
            let mut sharded = zoned(2, 20, seed);
            let mut single = single_engine_of(&sharded);
            let sharded_report = sharded.solve().unwrap();
            let single_report = single.solve().unwrap();
            // Identity: the reported objective is the true full-model
            // objective of the composed assignment.
            let full = full_model_objective(&sharded, sharded.assignment().unwrap());
            assert!(
                (full - sharded_report.objective).abs() < 1e-9,
                "decomposition identity broke: {} vs {}",
                full,
                sharded_report.objective
            );
            // Quality: close to the single-engine solve. At these tiny
            // 20-host zones the gap is dominated by decode variance, so
            // the bound is loose; the binding 1% acceptance check runs at
            // §VIII scale in `tests/tests/sharded.rs`, where the ILS
            // Strong pass typically lands *below* the single engine.
            let gap = (sharded_report.objective - single_report.objective_after)
                / single_report.objective_after.abs().max(1e-9);
            assert!(
                gap < 0.05,
                "seed {seed}: sharded {:.4} vs single {:.4} (gap {:.2}%)",
                sharded_report.objective,
                single_report.objective_after,
                100.0 * gap
            );
        }
    }

    #[test]
    fn interior_burst_routes_to_one_shard_and_leaves_the_other_untouched() {
        let mut engine = zoned(2, 20, 5);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        // Interior hosts of zone 0 (not boundary).
        let targets: Vec<HostId> = (0..20u32)
            .map(HostId)
            .filter(|&h| !engine.partition().is_boundary(h))
            .take(4)
            .collect();
        let deltas: Vec<NetworkDelta> = targets
            .iter()
            .map(|&h| {
                let p = engine
                    .network()
                    .host(h)
                    .unwrap()
                    .candidates_for(os)
                    .unwrap()[1];
                NetworkDelta::fix_slot(h, os, p)
            })
            .collect();
        let other_before = engine.shard_network(1).clone();
        let other_revision = engine.shard_network(1).revision();
        let report = engine.apply_batch(&deltas).unwrap();
        assert_eq!(report.deltas_applied, 4);
        assert_eq!(report.shards_touched, vec![0]);
        assert!(report.shard_reports[0].is_some());
        assert!(report.shard_reports[1].is_none(), "shard 1 did no work");
        assert_eq!(
            engine.shard_network(1).revision(),
            other_revision,
            "the burst must never reach shard 1's network"
        );
        assert_eq!(engine.shard_network(1), &other_before);
        assert!(report.improvement().unwrap() >= -1e-9);
        // Master and shard views stay consistent.
        assert_eq!(engine.revision(), 4);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
    }

    #[test]
    fn interior_burst_skips_coordination() {
        let mut engine = zoned(2, 20, 9);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let target = (0..20u32)
            .map(HostId)
            .find(|&h| {
                !engine.partition().is_boundary(h)
                    && engine
                        .partition()
                        .cross_links()
                        .iter()
                        .all(|&(a, b)| a != h && b != h)
            })
            .unwrap();
        // Re-mandating the host's current product changes no label at all.
        let current = engine.assignment().unwrap().products_at(target)[0];
        let report = engine
            .apply(&NetworkDelta::fix_slot(target, os, current))
            .unwrap();
        assert_eq!(
            report.rounds, 0,
            "an interior no-label-change burst must skip coordination"
        );
        assert_eq!(report.boundary_flips, 0);
    }

    #[test]
    fn cross_link_deltas_update_partition_and_objective() {
        let mut engine = two_host_gateway();
        engine.solve().unwrap();
        // Removing the only cross link empties the boundary...
        let report = engine
            .apply(&NetworkDelta::remove_link(HostId(0), HostId(1)))
            .unwrap();
        assert_eq!(report.cross_links, 0);
        assert_eq!(report.boundary_hosts, 0);
        assert_eq!(engine.shard_network(0).link_count(), 0);
        assert!((report.objective - 0.02).abs() < 1e-9, "residual vanished");
        // ...and re-adding it restores coordination pressure.
        let report = engine
            .apply(&NetworkDelta::add_link(HostId(0), HostId(1)))
            .unwrap();
        assert_eq!(report.cross_links, 1);
        assert_eq!(report.boundary_hosts, 2);
        assert!((report.objective - 0.12).abs() < 1e-9);
        let assignment = engine.assignment().unwrap();
        assert_ne!(
            assignment.products_at(HostId(0)),
            assignment.products_at(HostId(1))
        );
    }

    #[test]
    fn add_host_routes_by_zone_and_unknown_zone_is_rejected() {
        let mut engine = zoned(2, 6, 13);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let ps = engine.catalog().products_of(os).to_vec();
        // A new zone-1 host linked into both zones: shard 1 grows, the
        // zone-0 link becomes a cross link.
        let delta = NetworkDelta::AddHost {
            name: "newcomer".into(),
            zone: Some("zone1".into()),
            services: vec![(os, ps.clone())],
            links: vec![HostId(0), HostId(6)],
        };
        let shard0_hosts = engine.shard_network(0).host_count();
        let report = engine.apply(&delta).unwrap();
        let newcomer = HostId(12);
        assert_eq!(engine.partition().shard_of(newcomer), Some(1));
        assert_eq!(engine.shard_network(0).host_count(), shard0_hosts);
        assert_eq!(engine.shard_network(1).host_count(), 7);
        assert!(engine
            .partition()
            .cross_links()
            .contains(&(HostId(0), newcomer)));
        assert!(engine.partition().is_boundary(newcomer));
        assert!(report.shard_reports[1].is_some());
        // The newcomer got a product.
        assert_eq!(engine.assignment().unwrap().products_at(newcomer).len(), 1);
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();

        // Unknown zones are rejected before anything mutates.
        let revision = engine.revision();
        let err = engine
            .apply(&NetworkDelta::AddHost {
                name: "lost".into(),
                zone: Some("zone9".into()),
                services: vec![(os, ps)],
                links: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, Error::UnknownZone { .. }));
        assert_eq!(engine.revision(), revision);
    }

    #[test]
    fn rejected_batch_leaves_master_and_shards_untouched() {
        let mut engine = zoned(2, 6, 17);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let p = engine
            .network()
            .host(HostId(1))
            .unwrap()
            .candidates_for(os)
            .unwrap()[0];
        let revision = engine.revision();
        let shard0 = engine.shard_network(0).clone();
        let assignment_before = engine.assignment().unwrap().clone();
        let err = engine
            .apply_batch(&[
                NetworkDelta::fix_slot(HostId(1), os, p),
                NetworkDelta::add_link(HostId(2), HostId(2)), // self-loop
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: Some(0),
                index: 1,
                ..
            }
        ));
        assert_eq!(engine.revision(), revision);
        assert_eq!(engine.shard_network(0), &shard0, "no shard saw the batch");
        // Regression: the assignment must survive a rejected burst too — an
        // early `self.last.take()` used to leak it, degrading the next
        // apply into a cold solve.
        assert_eq!(engine.assignment(), Some(&assignment_before));

        // A slot-only burst rejected mid-batch exercises the fast path's
        // shard-side validation (no master staging); same contract, and
        // the reported index maps back to the original batch position.
        let other = engine
            .network()
            .host(HostId(1))
            .unwrap()
            .candidates_for(os)
            .unwrap()[1];
        let err = engine
            .apply_batch(&[
                NetworkDelta::fix_slot(HostId(1), os, p),
                // After the fix, `other` is no longer a candidate.
                NetworkDelta::fix_slot(HostId(1), os, other),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: Some(0),
                index: 1,
                cause: netmodel::Error::NotACandidate { .. },
            }
        ));
        assert_eq!(engine.revision(), revision);
        assert_eq!(engine.shard_network(0), &shard0);
        assert_eq!(engine.assignment(), Some(&assignment_before));

        // A failing cross-shard link delta is owned by the master, not any
        // shard: the attribution is `None`. (Whichever of the two add_links
        // is the duplicate depends on the generated gateways; the shape is
        // what matters.)
        let err = engine
            .apply_batch(&[
                NetworkDelta::add_link(HostId(1), HostId(7)),
                NetworkDelta::add_link(HostId(1), HostId(7)),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            Error::ShardRejected {
                shard: None,
                cause: netmodel::Error::DuplicateLink(..),
                ..
            }
        ));
        assert_eq!(engine.revision(), revision);
    }

    #[test]
    fn remove_host_tombstones_across_views() {
        let mut engine = zoned(2, 6, 23);
        engine.solve().unwrap();
        // Remove an interior zone-1 host.
        let victim = (6..12u32)
            .map(HostId)
            .find(|&h| !engine.partition().is_boundary(h))
            .unwrap();
        let report = engine.apply(&NetworkDelta::remove_host(victim)).unwrap();
        assert!(engine.network().host(victim).unwrap().is_removed());
        let (shard, local) = (
            1usize,
            engine.shards[1]
                .to_global
                .iter()
                .position(|&g| g == victim)
                .unwrap(),
        );
        assert!(engine
            .shard_network(shard)
            .host(HostId(local as u32))
            .unwrap()
            .is_removed());
        assert!(report.shard_reports[1].is_some());
        assert!(engine.assignment().unwrap().products_at(victim).is_empty());
        engine
            .assignment()
            .unwrap()
            .validate(engine.network())
            .unwrap();
    }

    #[test]
    fn single_zone_degenerates_to_the_unsharded_engine() {
        let g = netmodel::topology::generate(
            &netmodel::topology::RandomNetworkConfig {
                hosts: 18,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            31,
        );
        let mut sharded =
            ShardedEngine::new(g.network.clone(), g.catalog.clone(), g.similarity.clone());
        let mut single = DiversityEngine::new(g.network, g.catalog, g.similarity);
        let sr = sharded.solve().unwrap();
        let br = single.solve().unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sr.rounds, 0, "no cross links, no coordination");
        assert!((sr.objective - br.objective_after).abs() < 1e-9);
        assert_eq!(sharded.assignment(), single.assignment());
    }

    #[test]
    fn objective_is_monotone_across_a_coordinated_stream() {
        let mut engine = zoned(3, 8, 41);
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service1").unwrap();
        for h in [1u32, 9, 17, 3, 11] {
            let host = HostId(h);
            let p = engine
                .network()
                .host(host)
                .unwrap()
                .candidates_for(os)
                .unwrap()[0];
            let report = engine.apply(&NetworkDelta::fix_slot(host, os, p)).unwrap();
            assert!(
                report.improvement().unwrap() >= -1e-9,
                "step at {host} regressed on carrying forward"
            );
            let full = full_model_objective(&engine, engine.assignment().unwrap());
            assert!((full - report.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn report_display_is_total() {
        let mut engine = two_host_gateway();
        let report = engine.solve().unwrap();
        let text = report.to_string();
        assert!(text.contains("objective"));
        assert!(text.contains("rounds") || text.contains("boundary"));
    }
}
