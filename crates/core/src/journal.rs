//! Durable engines: the write-ahead delta journal and crash recovery.
//!
//! [`netmodel::journal`] owns the on-disk record codec (checksummed,
//! line-delimited JSON records); this module owns the *engine side* of
//! persistence:
//!
//! * [`Journal`] — the append-only writer an engine attaches via
//!   [`DiversityEngine::with_journal`] / [`ShardedEngine::with_journal`].
//!   Attaching writes the preamble (catalog, similarity, constraints) and a
//!   genesis snapshot; every committed `apply_batch` then appends one batch
//!   record *post-commit* (on the serving writer thread, off the read
//!   path), and every successful `solve` appends a snapshot so the
//!   post-solve assignment is recoverable.
//! * **Snapshot cadence and compaction** — every
//!   [`DEFAULT_SNAPSHOT_EVERY`] batches (configurable) the engine writes a
//!   full snapshot and the journal *compacts*: the file is atomically
//!   rewritten as preamble + latest snapshot (temp file + rename), dropping
//!   the replayed prefix so the log stays bounded under indefinite churn.
//!   A cadence of `None` disables periodic snapshots and compaction — the
//!   full history is kept, which is what the churn harness's record mode
//!   wants (a replayable artifact).
//! * [`recover`] — load the last snapshot, replay the journal tail's
//!   deltas at the network level, and restore the assignment the last
//!   batch committed. Replay is exact — batch records carry the committed
//!   assignment precisely so recovery never has to re-run a solver whose
//!   answer could drift. Damaged tails (torn writes, bit flips) are
//!   detected by the per-record checksums and truncated at the last valid
//!   record; recovery only fails when no valid preamble + snapshot prefix
//!   survives.
//! * [`recover_with`] — [`recover`] plus a reconfiguration hook for the
//!   returned engine; [`engine_at_snapshot`] — the time-travel primitive
//!   behind `churn --replay`, which *does* re-solve a recorded window
//!   (under any solver) and diffs its MTTC trajectory against the
//!   recorded one.
//!
//! Durability contract: each record is flushed to the OS after the append,
//! so state survives a process crash or kill; fsync-per-record is
//! deliberately not paid on the hot path. Compaction does sync the rewrite
//! before the atomic rename, so a crash mid-compaction leaves either the
//! old or the new file, never a mix.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use netmodel::assignment::Assignment;
use netmodel::delta::NetworkDelta;
use netmodel::journal::{
    read_tolerant, BatchRecord, JournalRead, MarkRecord, Preamble, Record, SnapshotRecord,
};

use crate::engine::DiversityEngine;
#[cfg(doc)]
use crate::shard::ShardedEngine;
use crate::{Error, Result};

/// Default number of committed batches between periodic snapshots (and the
/// log compaction each one triggers).
pub const DEFAULT_SNAPSHOT_EVERY: usize = 32;

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> netmodel::Error {
    netmodel::Error::Journal(format!("{what} {}: {e}", path.display()))
}

/// The append-only journal writer attached to an engine.
///
/// Created by the engine builders ([`DiversityEngine::with_journal`]),
/// which write the preamble and genesis snapshot; the engine then drives
/// [`Journal::append_batch`] / [`Journal::append_snapshot`] from its commit
/// points.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// The encoded preamble line, kept so compaction can rewrite the file
    /// head without re-borrowing the engine's catalog state.
    preamble_line: String,
    seq: u64,
    snapshot_every: Option<usize>,
    batches_since_snapshot: usize,
}

impl Journal {
    /// Creates (truncating) a journal at `path`, writing the preamble and a
    /// genesis snapshot. `snapshot_every` is the compaction cadence in
    /// batches; `None` keeps the full history (no periodic snapshots, no
    /// compaction).
    ///
    /// # Errors
    ///
    /// [`netmodel::Error::Journal`] on I/O failure.
    pub fn create(
        path: impl AsRef<Path>,
        preamble: &Preamble,
        snapshot: SnapshotRecord,
        snapshot_every: Option<usize>,
    ) -> netmodel::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let preamble_line = Record::Preamble(preamble.clone()).to_line();
        let mut file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
        file.write_all(preamble_line.as_bytes())
            .and_then(|()| file.write_all(Record::Snapshot(snapshot).to_line().as_bytes()))
            .and_then(|()| file.flush())
            .map_err(|e| io_err("write", &path, &e))?;
        Ok(Journal {
            path,
            file,
            preamble_line,
            seq: 0,
            snapshot_every,
            batches_since_snapshot: 0,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The next batch sequence number (monotone across compactions).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn append_line(&mut self, line: &str) -> netmodel::Result<()> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err("append to", &self.path, &e))
    }

    /// Appends one committed batch record and returns its sequence number.
    ///
    /// # Errors
    ///
    /// [`netmodel::Error::Journal`] on I/O failure.
    pub fn append_batch(
        &mut self,
        deltas: &[NetworkDelta],
        revision: u64,
        assignment: Option<&Assignment>,
    ) -> netmodel::Result<u64> {
        let seq = self.seq;
        let line = Record::Batch(BatchRecord {
            seq,
            revision,
            deltas: deltas.to_vec(),
            assignment: assignment.cloned(),
        })
        .to_line();
        self.append_line(&line)?;
        self.seq += 1;
        self.batches_since_snapshot += 1;
        Ok(seq)
    }

    /// Appends an application mark record (ignored by engine recovery).
    ///
    /// # Errors
    ///
    /// [`netmodel::Error::Journal`] on I/O failure.
    pub fn append_mark(&mut self, mark: MarkRecord) -> netmodel::Result<()> {
        let line = Record::Mark(mark).to_line();
        self.append_line(&line)
    }

    /// Whether the snapshot cadence says the next commit point should write
    /// a snapshot (and compact).
    pub fn snapshot_due(&self) -> bool {
        matches!(self.snapshot_every, Some(n) if n > 0 && self.batches_since_snapshot >= n)
    }

    /// Writes a full snapshot. With a periodic cadence configured this also
    /// *compacts*: the file is atomically rewritten as preamble + this
    /// snapshot (temp file, sync, rename), dropping the journal prefix the
    /// snapshot supersedes. Without a cadence the snapshot is appended in
    /// place and history is kept.
    ///
    /// # Errors
    ///
    /// [`netmodel::Error::Journal`] on I/O failure.
    pub fn append_snapshot(&mut self, snapshot: SnapshotRecord) -> netmodel::Result<()> {
        let line = Record::Snapshot(snapshot).to_line();
        self.batches_since_snapshot = 0;
        if self.snapshot_every.is_none() {
            return self.append_line(&line);
        }
        // Compact: rewrite head as preamble + snapshot, atomically.
        let tmp = self.path.with_extension("compact-tmp");
        let mut out = File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
        out.write_all(self.preamble_line.as_bytes())
            .and_then(|()| out.write_all(line.as_bytes()))
            .and_then(|()| out.sync_all())
            .map_err(|e| io_err("write", &tmp, &e))?;
        drop(out);
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("rename over", &self.path, &e))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen", &self.path, &e))?;
        Ok(())
    }
}

/// Reads a journal file tolerantly: the longest checksum-valid record
/// prefix plus where (and why) reading stopped, if it did.
///
/// # Errors
///
/// [`Error::Model`] wrapping [`netmodel::Error::Journal`] if the file
/// cannot be read at all. Damaged tails are *not* errors here — they are
/// reported via [`JournalRead::corruption`].
pub fn read_records(path: impl AsRef<Path>) -> Result<JournalRead> {
    let path = path.as_ref();
    let data = std::fs::read(path).map_err(|e| Error::Model(io_err("read", path, &e)))?;
    Ok(read_tolerant(&data))
}

/// How a recovery went: what was read, what was replayed, what was lost.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Checksum-valid records accepted from the file.
    pub records: usize,
    /// The revision of the snapshot recovery started from.
    pub snapshot_revision: u64,
    /// Batch records replayed after that snapshot.
    pub batches_replayed: usize,
    /// Why the valid prefix ended before the end of the file, if it did
    /// (torn tail, checksum mismatch, decode failure).
    pub corruption: Option<String>,
    /// Byte length of the valid prefix (the recoverable part of the file).
    pub valid_len: usize,
}

/// A recovered engine plus the [`RecoveryReport`] describing the recovery.
#[derive(Debug)]
pub struct Recovered {
    /// The engine, rebuilt from snapshot + journal-tail replay.
    pub engine: DiversityEngine,
    /// What the recovery read, replayed and (possibly) truncated.
    pub report: RecoveryReport,
}

/// Recovers a [`DiversityEngine`] from a journal: preamble + last snapshot,
/// then replay of the batch tail. Corrupt or torn trailing records are
/// truncated at the last checksum-valid record.
///
/// # Errors
///
/// See [`recover_with`].
pub fn recover(path: impl AsRef<Path>) -> Result<DiversityEngine> {
    recover_with(path, |e| e).map(|r| r.engine)
}

/// [`recover`], with a reconfiguration hook applied to the recovered
/// engine (different solver, budget, locality) before it is handed back.
///
/// Replay is *exact*, not a re-solve: each batch record carries both its
/// deltas and the assignment the re-solve committed, so recovery applies
/// the deltas at the network level and restores the recorded assignment.
/// (A re-solve could legitimately land in a different local optimum — the
/// warm refiner's sweep order depends on incremental cache layout the
/// journal does not capture.) Re-solving replay — running a recorded
/// window under a different solver and diffing the result — is the churn
/// harness's `--replay` mode, built on [`engine_at_snapshot`].
///
/// # Errors
///
/// * [`Error::Model`] wrapping [`netmodel::Error::Journal`] — unreadable
///   file, no valid preamble or snapshot in the valid prefix, or a replayed
///   revision that contradicts the recorded one.
/// * [`Error::Model`] for a recorded delta the network rejects.
pub fn recover_with(
    path: impl AsRef<Path>,
    configure: impl FnOnce(DiversityEngine) -> DiversityEngine,
) -> Result<Recovered> {
    let read = read_records(path)?;
    let records = &read.records;
    let Some(Record::Preamble(preamble)) = records.first() else {
        return Err(Error::Model(netmodel::Error::Journal(
            "journal has no valid preamble record".into(),
        )));
    };
    let Some(snap_idx) = last_snapshot_index(records) else {
        return Err(Error::Model(netmodel::Error::Journal(
            "journal has no valid snapshot record".into(),
        )));
    };
    let Record::Snapshot(snapshot) = &records[snap_idx] else {
        unreachable!("rposition matched a snapshot");
    };
    let mut network = snapshot.network.clone();
    let mut assignment = snapshot.assignment.clone();
    let snapshot_revision = snapshot.revision;
    let mut batches_replayed = 0;
    for record in &records[snap_idx + 1..] {
        let Record::Batch(batch) = record else {
            continue;
        };
        network
            .apply_all(&batch.deltas, &preamble.catalog)
            .map_err(Error::Model)?;
        if network.revision() != batch.revision {
            return Err(Error::Model(netmodel::Error::Journal(format!(
                "replay diverged: batch seq {} recorded revision {}, replay reached {}",
                batch.seq,
                batch.revision,
                network.revision()
            ))));
        }
        assignment = batch.assignment.clone();
        batches_replayed += 1;
    }
    let engine = DiversityEngine::new(
        network,
        preamble.catalog.clone(),
        preamble.similarity.clone(),
    )
    .with_constraints(preamble.constraints.clone());
    let mut engine = configure(engine);
    if let Some(assignment) = assignment {
        engine.set_assignment(assignment);
    }
    Ok(Recovered {
        engine,
        report: RecoveryReport {
            records: read.records.len(),
            snapshot_revision,
            batches_replayed,
            corruption: read.corruption,
            valid_len: read.valid_len,
        },
    })
}

fn last_snapshot_index(records: &[Record]) -> Option<usize> {
    records
        .iter()
        .rposition(|r| matches!(r, Record::Snapshot(_)))
}

/// Builds a configured engine positioned at the last snapshot of `records`
/// (no tail replay). Shared by [`recover_with`] and the churn replay
/// tooling, which drives the batch tail itself to interleave measurements.
///
/// # Errors
///
/// [`Error::Model`] wrapping [`netmodel::Error::Journal`] when the records
/// hold no valid preamble-first prefix or no snapshot.
pub fn engine_at_snapshot(
    records: &[Record],
    configure: impl FnOnce(DiversityEngine) -> DiversityEngine,
) -> Result<DiversityEngine> {
    let Some(Record::Preamble(preamble)) = records.first() else {
        return Err(Error::Model(netmodel::Error::Journal(
            "journal has no valid preamble record".into(),
        )));
    };
    let Some(idx) = last_snapshot_index(records) else {
        return Err(Error::Model(netmodel::Error::Journal(
            "journal has no valid snapshot record".into(),
        )));
    };
    let Record::Snapshot(snapshot) = &records[idx] else {
        unreachable!("rposition matched a snapshot");
    };
    let engine = DiversityEngine::new(
        snapshot.network.clone(),
        preamble.catalog.clone(),
        preamble.similarity.clone(),
    )
    .with_constraints(preamble.constraints.clone());
    let mut engine = configure(engine);
    if let Some(assignment) = &snapshot.assignment {
        engine.set_assignment(assignment.clone());
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};

    fn tmp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("ics-journal-{tag}-{}-{n}.log", std::process::id()))
    }

    fn small_engine() -> DiversityEngine {
        let g = generate(
            &RandomNetworkConfig {
                hosts: 8,
                mean_degree: 3,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            5,
        );
        DiversityEngine::new(g.network, g.catalog, g.similarity)
    }

    #[test]
    fn journaled_engine_recovers_exactly() {
        let path = tmp_path("recover");
        let mut engine = small_engine().with_journal(&path).unwrap();
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        let host = netmodel::HostId(2);
        let product = engine
            .network()
            .host(host)
            .unwrap()
            .candidates_for(os)
            .unwrap()[0];
        engine
            .apply(&netmodel::delta::NetworkDelta::fix_slot(host, os, product))
            .unwrap();
        engine
            .apply(&netmodel::delta::NetworkDelta::remove_host(
                netmodel::HostId(7),
            ))
            .unwrap();

        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.network(), engine.network());
        assert_eq!(recovered.revision(), engine.revision());
        let live = engine
            .assignment()
            .unwrap()
            .total_edge_similarity(engine.network(), engine.similarity());
        let back = recovered
            .assignment()
            .unwrap()
            .total_edge_similarity(recovered.network(), recovered.similarity());
        assert!(
            (live - back).abs() <= 1e-9,
            "objective drifted: {live} vs {back}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_bounds_the_log_and_preserves_state() {
        let path = tmp_path("compact");
        // Cadence 2: every other batch rewrites the file to preamble +
        // snapshot, so record count stays bounded while state accrues.
        let mut engine = small_engine().with_journal_cadence(&path, Some(2)).unwrap();
        engine.solve().unwrap();
        let os = engine.catalog().service_by_name("service0").unwrap();
        for step in 0..6 {
            let host = netmodel::HostId(step % 4);
            let product = engine
                .network()
                .host(host)
                .unwrap()
                .candidates_for(os)
                .unwrap()[0];
            engine
                .apply(&netmodel::delta::NetworkDelta::fix_slot(host, os, product))
                .unwrap();
        }
        let read = read_records(&path).unwrap();
        assert!(read.corruption.is_none());
        // Bounded: preamble + snapshot + at most (cadence) trailing batches.
        assert!(
            read.records.len() <= 2 + 2,
            "compaction left {} records",
            read.records.len()
        );
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.network(), engine.network());
        assert_eq!(recovered.revision(), engine.revision());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_without_preamble_is_an_error() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(recover(&path).is_err());
        std::fs::write(&path, b"garbage\n").unwrap();
        assert!(recover(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
