//! The optimization facade: network in, optimal assignment out.

use mrf::bp::{Bp, BpOptions};
use mrf::elimination::{Elimination, EliminationOptions};
use mrf::exhaustive::Exhaustive;
use mrf::icm::{Icm, IcmOptions};
use mrf::ils::{Ils, IlsOptions};
use mrf::trws::{Trws, TrwsOptions};
use mrf::Solution;

use netmodel::assignment::Assignment;
use netmodel::catalog::ProductSimilarity;
use netmodel::constraints::ConstraintSet;
use netmodel::network::Network;

use crate::energy::{build_energy, EnergyModel, EnergyParams};
use crate::{Error, Result};

/// Which MAP solver to run on the constructed energy.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverKind {
    /// Sequential tree-reweighted message passing (the paper's choice).
    Trws(TrwsOptions),
    /// Loopy min-sum belief propagation (the baseline TRW-S is compared to).
    Bp(BpOptions),
    /// Iterated conditional modes (fast greedy baseline).
    Icm(IcmOptions),
    /// Brute force (tiny instances / testing only).
    Exhaustive,
    /// Exact MAP by bucket elimination — globally optimal whenever the
    /// instance's treewidth fits the table cap, as the ICS case study does.
    /// Falls back to TRW-S (with default options) when it does not.
    Exact(EliminationOptions),
}

impl Default for SolverKind {
    fn default() -> SolverKind {
        SolverKind::Trws(TrwsOptions::default())
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizedAssignment {
    assignment: Assignment,
    objective: f64,
    lower_bound: Option<f64>,
    iterations: usize,
    converged: bool,
    variables: usize,
    edges: usize,
}

impl OptimizedAssignment {
    /// The optimal (or best-found) product assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Consumes the result, returning the assignment.
    pub fn into_assignment(self) -> Assignment {
        self.assignment
    }

    /// The full objective value (MRF energy plus the fixed-fixed constant).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// A certified lower bound on the optimal objective (TRW-S only).
    pub fn lower_bound(&self) -> Option<f64> {
        self.lower_bound
    }

    /// The optimality gap, if a bound is available.
    pub fn gap(&self) -> Option<f64> {
        self.lower_bound.map(|lb| self.objective - lb)
    }

    /// Solver iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the solver converged (vs. hitting its iteration cap).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of free MRF variables the problem had.
    pub fn variables(&self) -> usize {
        self.variables
    }

    /// Number of MRF edges the problem had.
    pub fn edges(&self) -> usize {
        self.edges
    }
}

/// Computes optimal diversification strategies (paper §V).
///
/// ```
/// use ics_diversity::optimizer::DiversityOptimizer;
/// use netmodel::topology::{generate, RandomNetworkConfig};
///
/// # fn main() -> Result<(), ics_diversity::Error> {
/// let g = generate(&RandomNetworkConfig { hosts: 30, ..Default::default() }, 1);
/// let result = DiversityOptimizer::new().optimize(&g.network, &g.similarity)?;
/// assert!(result.assignment().validate(&g.network).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiversityOptimizer {
    solver: SolverKind,
    params: EnergyParams,
    refine: Option<IlsOptions>,
}

impl Default for DiversityOptimizer {
    fn default() -> DiversityOptimizer {
        DiversityOptimizer {
            solver: SolverKind::default(),
            params: EnergyParams::default(),
            refine: Some(IlsOptions::default()),
        }
    }
}

impl DiversityOptimizer {
    /// Creates an optimizer with TRW-S, default energy parameters, and ILS
    /// refinement of the decoded solution.
    pub fn new() -> DiversityOptimizer {
        DiversityOptimizer::default()
    }

    /// Replaces the solver.
    pub fn with_solver(mut self, solver: SolverKind) -> DiversityOptimizer {
        self.solver = solver;
        self
    }

    /// Replaces (or disables, with `None`) the ILS refinement stage applied
    /// after the main solver.
    pub fn with_refinement(mut self, refine: Option<IlsOptions>) -> DiversityOptimizer {
        self.refine = refine;
        self
    }

    /// Replaces the energy parameters.
    pub fn with_params(mut self, params: EnergyParams) -> DiversityOptimizer {
        self.params = params;
        self
    }

    /// Computes the unconstrained optimal assignment `α̂`.
    ///
    /// # Errors
    ///
    /// See [`DiversityOptimizer::optimize_constrained`] (with an empty
    /// constraint set only [`Error::Mrf`] is possible, and only for
    /// malformed networks).
    pub fn optimize(
        &self,
        network: &Network,
        similarity: &ProductSimilarity,
    ) -> Result<OptimizedAssignment> {
        self.optimize_constrained(network, similarity, &ConstraintSet::new())
    }

    /// Computes the constrained optimal assignment `α̂_C`.
    ///
    /// # Errors
    ///
    /// * [`Error::Infeasible`] — constraints empty a slot's candidate set.
    /// * [`Error::UnsatisfiableConstraints`] — the solved assignment still
    ///   violates a constraint (jointly unsatisfiable constraint system).
    pub fn optimize_constrained(
        &self,
        network: &Network,
        similarity: &ProductSimilarity,
        constraints: &ConstraintSet,
    ) -> Result<OptimizedAssignment> {
        let energy = build_energy(network, similarity, constraints, self.params)?;
        let mut solution = self.run_solver(&energy);
        if let Some(ils) = &self.refine {
            let refined = Ils::new(ils.clone()).refine(energy.model(), solution.labels().to_vec());
            if refined.energy() < solution.energy() {
                solution = Solution::new(
                    refined.labels().to_vec(),
                    refined.energy(),
                    solution.lower_bound(),
                    solution.iterations(),
                    solution.converged(),
                );
            }
        }
        let assignment = energy.decode(solution.labels());
        debug_assert!(assignment.validate(network).is_ok());
        let violations = constraints.violations(network, &assignment);
        if !violations.is_empty() {
            return Err(Error::UnsatisfiableConstraints {
                violations: violations.len(),
            });
        }
        Ok(OptimizedAssignment {
            assignment,
            objective: solution.energy() + energy.base_energy(),
            lower_bound: solution.lower_bound().map(|lb| lb + energy.base_energy()),
            iterations: solution.iterations(),
            converged: solution.converged(),
            variables: energy.model().var_count(),
            edges: energy.model().edge_count(),
        })
    }

    fn run_solver(&self, energy: &EnergyModel) -> Solution {
        match &self.solver {
            SolverKind::Trws(opts) => Trws::new(opts.clone()).solve(energy.model()),
            SolverKind::Bp(opts) => Bp::new(opts.clone()).solve(energy.model()),
            SolverKind::Icm(opts) => Icm::new(opts.clone()).solve(energy.model()),
            SolverKind::Exhaustive => Exhaustive::new().solve(energy.model()),
            SolverKind::Exact(opts) => Elimination::new(opts.clone())
                .solve(energy.model())
                .unwrap_or_else(|_| Trws::default().solve(energy.model())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::casestudy::CaseStudy;
    use netmodel::strategies::{mono_assignment, random_assignment};
    use netmodel::topology::{generate, RandomNetworkConfig, TopologyKind};

    #[test]
    fn optimal_beats_baselines_on_random_networks() {
        for seed in 0..3 {
            let g = generate(
                &RandomNetworkConfig {
                    hosts: 40,
                    mean_degree: 6,
                    services: 3,
                    products_per_service: 4,
                    vendors_per_service: 2,
                    topology: TopologyKind::Random,
                },
                seed,
            );
            let opt = DiversityOptimizer::new().optimize(&g.network, &g.similarity).unwrap();
            let optimal_sim =
                opt.assignment().total_edge_similarity(&g.network, &g.similarity);
            let mono = mono_assignment(&g.network)
                .total_edge_similarity(&g.network, &g.similarity);
            let random = random_assignment(&g.network, seed)
                .total_edge_similarity(&g.network, &g.similarity);
            assert!(
                optimal_sim < random && random < mono,
                "seed {seed}: expected optimal {optimal_sim} < random {random} < mono {mono}"
            );
        }
    }

    #[test]
    fn trws_matches_exhaustive_on_tiny_instances() {
        for seed in 0..4 {
            let g = generate(
                &RandomNetworkConfig {
                    hosts: 6,
                    mean_degree: 2,
                    services: 2,
                    products_per_service: 2,
                    vendors_per_service: 2,
                    topology: TopologyKind::Random,
                },
                seed,
            );
            let trws = DiversityOptimizer::new().optimize(&g.network, &g.similarity).unwrap();
            let brute = DiversityOptimizer::new()
                .with_solver(SolverKind::Exhaustive)
                .optimize(&g.network, &g.similarity)
                .unwrap();
            assert!(
                (trws.objective() - brute.objective()).abs() < 1e-6,
                "seed {seed}: trws {} vs brute {}",
                trws.objective(),
                brute.objective()
            );
        }
    }

    #[test]
    fn bound_is_valid() {
        let g = generate(
            &RandomNetworkConfig {
                hosts: 30,
                mean_degree: 4,
                services: 2,
                products_per_service: 3,
                vendors_per_service: 2,
                topology: TopologyKind::Random,
            },
            9,
        );
        let opt = DiversityOptimizer::new().optimize(&g.network, &g.similarity).unwrap();
        let lb = opt.lower_bound().expect("trws provides a bound");
        assert!(lb <= opt.objective() + 1e-9);
        assert!(opt.gap().unwrap() >= -1e-9);
        assert!(opt.variables() > 0);
        assert!(opt.edges() > 0);
    }

    #[test]
    fn case_study_constrained_solves_respect_constraints() {
        let cs = CaseStudy::build();
        let optimizer = DiversityOptimizer::new();
        let unconstrained = optimizer.optimize(&cs.network, &cs.similarity).unwrap();
        let c1 = cs.constraints_c1();
        let constrained1 = optimizer
            .optimize_constrained(&cs.network, &cs.similarity, &c1)
            .unwrap();
        assert!(c1.is_satisfied(&cs.network, constrained1.assignment()));
        let c2 = cs.constraints_c2();
        let constrained2 = optimizer
            .optimize_constrained(&cs.network, &cs.similarity, &c2)
            .unwrap();
        assert!(c2.is_satisfied(&cs.network, constrained2.assignment()));
        // Constraints can only cost diversity (paper Table V ordering).
        let sim_of = |a: &netmodel::assignment::Assignment| {
            a.total_edge_similarity(&cs.network, &cs.similarity)
        };
        assert!(sim_of(unconstrained.assignment()) <= sim_of(constrained1.assignment()) + 1e-9);
    }

    #[test]
    fn solver_variants_all_produce_valid_assignments() {
        let cs = CaseStudy::build();
        for solver in [
            SolverKind::Trws(TrwsOptions::default()),
            SolverKind::Bp(BpOptions::default()),
            SolverKind::Icm(IcmOptions::default()),
        ] {
            let opt = DiversityOptimizer::new()
                .with_solver(solver.clone())
                .optimize(&cs.network, &cs.similarity)
                .unwrap();
            opt.assignment().validate(&cs.network).unwrap();
        }
    }

    #[test]
    fn trws_is_at_least_as_good_as_icm_on_case_study() {
        let cs = CaseStudy::build();
        let trws = DiversityOptimizer::new().optimize(&cs.network, &cs.similarity).unwrap();
        let icm = DiversityOptimizer::new()
            .with_solver(SolverKind::Icm(IcmOptions::default()))
            .optimize(&cs.network, &cs.similarity)
            .unwrap();
        assert!(trws.objective() <= icm.objective() + 1e-9);
    }

    #[test]
    fn infeasible_constraints_error() {
        use netmodel::constraints::Constraint;
        let cs = CaseStudy::build();
        let mut set = ConstraintSet::new();
        // t5 is legacy (MSSQL08 only); demanding MariaDB is infeasible.
        set.push(Constraint::fix(
            cs.host("t5"),
            cs.services.db,
            cs.product("MariaDB10"),
        ));
        let err = DiversityOptimizer::new()
            .optimize_constrained(&cs.network, &cs.similarity, &set)
            .unwrap_err();
        assert!(matches!(err, Error::Infeasible { .. }));
    }
}
